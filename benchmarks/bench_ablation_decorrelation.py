"""Ablation: subquery decorrelation in the backing warehouse.

DESIGN.md calls out decorrelation as the optimization that makes correlated
TPC-H queries feasible on the Python substrate. This ablation runs the same
correlated EXISTS query with the rewrite enabled and forcibly disabled and
reports the speedup (typically orders of magnitude once the outer side has a
few hundred rows).
"""

import pytest
from conftest import emit

from repro.backend import Database
from repro.backend import decorrelate
from repro.bench.reporting import format_table

ROWS = 400
QUERY = ("SELECT COUNT(*) FROM O WHERE EXISTS "
         "(SELECT 1 FROM I WHERE I.K = O.K AND I.V > 5)")


@pytest.fixture(scope="module")
def database():
    db = Database()
    session = db.create_session()
    session.execute("CREATE TABLE O (K INTEGER, V INTEGER)")
    session.execute("CREATE TABLE I (K INTEGER, V INTEGER)")
    outer = ", ".join(f"({i % 97}, {i % 11})" for i in range(ROWS))
    inner = ", ".join(f"({i % 89}, {i % 13})" for i in range(ROWS * 4))
    session.execute(f"INSERT INTO O VALUES {outer}")
    session.execute(f"INSERT INTO I VALUES {inner}")
    return db


def _expected(database):
    session = database.create_session()
    inner = session.execute("SELECT K FROM I WHERE V > 5").rows
    keys = {row[0] for row in inner}
    outer = session.execute("SELECT K FROM O").rows
    return sum(1 for (k,) in outer if k in keys)


def test_ablation_with_decorrelation(benchmark, database):
    session = database.create_session()
    result = benchmark(lambda: session.execute(QUERY).rows)
    assert result == [(_expected(database),)]


def test_ablation_without_decorrelation(benchmark, database, monkeypatch):
    monkeypatch.setattr(decorrelate, "build_index",
                        lambda executor, subq: None)
    session = database.create_session()
    result = benchmark(lambda: session.execute(QUERY).rows)
    assert result == [(_expected(database),)]
    emit(format_table(
        ["variant", "behaviour"],
        [("decorrelated", "inner side evaluated once, hash-probed per row"),
         ("naive", "inner plan re-executed per outer row")],
        title=f"Ablation — EXISTS decorrelation ({ROWS} outer rows); "
              "compare the two benchmark rows above"))
