"""Ablation: DML batching (Section 4.3's performance transformation).

ETL-style applications often submit long runs of single-row INSERTs. The
paper proposes grouping contiguous single-row DML into one large statement
when the target penalizes per-statement overhead. This ablation pushes the
same 300-insert script through Hyper-Q with batching on and off.
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.core.engine import HyperQ

INSERTS = 300


def _script() -> str:
    return "".join(
        f"INSERT INTO ETL_T VALUES ({i}, 'row-{i}');" for i in range(INSERTS))


@pytest.mark.parametrize("batching", [False, True],
                         ids=["per-statement", "batched"])
def test_ablation_dml_batching(benchmark, batching):
    script = _script()

    def run():
        engine = HyperQ(dml_batching=batching)
        session = engine.create_session()
        session.execute("CREATE TABLE ETL_T (A INTEGER, B VARCHAR(20))")
        results = session.execute_script(script)
        count = session.execute("SEL COUNT(*) FROM ETL_T").rows[0][0]
        return len(results), count

    statements, loaded = benchmark.pedantic(run, rounds=3, iterations=1)
    assert loaded == INSERTS
    if batching:
        assert statements == 1
        emit(format_table(
            ["variant", "target statements for 300 source inserts"],
            [("per-statement", INSERTS), ("batched", statements)],
            title="Ablation — DML batching (Section 4.3)"))
    else:
        assert statements == INSERTS
