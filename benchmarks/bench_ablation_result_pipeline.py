"""Ablation: result-conversion pipeline choices.

Section 4.6 describes parallel result conversion and spill-to-disk buffering.
This ablation measures (a) converter parallelism on a wide multi-batch
result and (b) the cost of the spill path relative to in-memory buffering.
"""

import datetime

import pytest

from repro import tdf
from repro.results.converter import ResultConverter
from repro.xtra import types as t

ROWS = 4000
BATCH = 250


@pytest.fixture(scope="module")
def batches():
    rows = [
        (i, f"value-{i:08d}" * 3, i * 1.5,
         datetime.date(1992, 1, 1) + datetime.timedelta(days=i % 2000))
        for i in range(ROWS)
    ]
    return list(tdf.batches_of(["N", "S", "F", "D"], rows, BATCH)), rows


TYPES = [t.INTEGER, t.varchar(64), t.FLOAT, t.DATE]


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "parallel-4"])
def test_ablation_converter_parallelism(benchmark, batches, workers):
    packets, rows = batches
    converter = ResultConverter(parallelism=workers)

    def convert():
        result = converter.convert(packets, TYPES)
        count = result.rowcount
        result.close()
        return count

    assert benchmark(convert) == ROWS


@pytest.mark.parametrize("memory_cap", [64 * 1024 * 1024, 4 * 1024],
                         ids=["in-memory", "spill-to-disk"])
def test_ablation_result_store_spill(benchmark, batches, memory_cap, tmp_path):
    packets, rows = batches
    converter = ResultConverter(max_memory_bytes=memory_cap,
                                spill_dir=str(tmp_path))

    def convert_and_replay():
        result = converter.convert(packets, TYPES)
        # Replaying the chunks is what the protocol handler does when the
        # count must be sent first.
        total = sum(len(chunk) for chunk in result.iter_chunks())
        spilled = result.store.spilled if result.store else False
        result.close()
        return total, spilled

    total, spilled = benchmark(convert_and_replay)
    assert total > 0
    assert spilled == (memory_cap < 1024 * 1024)
