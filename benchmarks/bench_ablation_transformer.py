"""Ablation: transformer fixpoint iteration vs. a single pass.

Section 4.3 says the Transformer "takes care of running all relevant
transformations repeatedly until reaching a fixed point". This ablation
measures what the fixpoint discipline costs on translation latency and
verifies it is required for correctness when rewrites cascade (a date
comparison surfacing only after an interval fold, for example).
"""

import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.core.catalog import SessionCatalog, ShadowCatalog
from repro.frontend.teradata.binder import Binder
from repro.frontend.teradata.parser import TeradataParser
from repro.serializer import serializer_for
from repro.transform.capabilities import HYPERION
from repro.transform.engine import Transformer
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema

QUERY = """
    SEL STORE, SUM(AMOUNT) AS TOTAL
    FROM SALES
    WHERE SALES_DATE > 1140101 AND SALES_DATE + 30 < DATE '2015-01-01'
      AND (AMOUNT, AMOUNT) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
    GROUP BY ROLLUP (STORE)
    ORDER BY 2 DESC
"""


def _catalog():
    shadow = ShadowCatalog()
    shadow.add_table(TableSchema("SALES", [
        ColumnSchema("STORE", t.INTEGER),
        ColumnSchema("AMOUNT", t.decimal(12, 2)),
        ColumnSchema("SALES_DATE", t.DATE),
    ]))
    shadow.add_table(TableSchema("SALES_HISTORY", [
        ColumnSchema("GROSS", t.decimal(12, 2)),
        ColumnSchema("NET", t.decimal(12, 2)),
    ]))
    return SessionCatalog(shadow)


def _translate(fixpoint: bool):
    catalog = _catalog()
    statement = Binder(catalog).bind(TeradataParser().parse_statement(QUERY))
    Transformer(HYPERION, fixpoint=fixpoint).transform(statement)
    return serializer_for(HYPERION).serialize(statement)


@pytest.mark.parametrize("fixpoint", [True, False],
                         ids=["fixpoint", "single-pass"])
def test_ablation_transformer_iteration(benchmark, fixpoint):
    sql = benchmark(_translate, fixpoint)
    assert "SELECT" in sql


def test_ablation_fixpoint_reaches_same_result_here(benchmark):
    """For this rule set a single bottom-up pass already lands all rewrites
    (rules fire on children before parents); fixpoint is the safety net for
    cascading rules. Both must produce executable SQL with every Teradata-ism
    gone."""
    fix = benchmark.pedantic(_translate, args=(True,), rounds=1, iterations=1)
    single = _translate(False)
    emit(format_table(
        ["mode", "rewritten artifacts present"],
        [
            ("fixpoint", _artifacts(fix)),
            ("single-pass", _artifacts(single)),
        ],
        title="Ablation — transformer iteration discipline"))
    for sql in (fix, single):
        assert "EXTRACT(YEAR FROM" in sql      # date/int comparison expanded
        assert "DATEADD" in sql                # date arithmetic rewritten
        assert "EXISTS" in sql                 # vector subquery rewritten
        assert "UNION ALL" in sql              # ROLLUP expanded
        assert "ROLLUP" not in sql


def _artifacts(sql: str) -> str:
    present = []
    for marker in ("EXTRACT(YEAR FROM", "DATEADD", "EXISTS", "UNION ALL"):
        if marker in sql:
            present.append(marker.split("(")[0].strip())
    return ", ".join(present)
