"""Ablation: translation cache on vs. off.

Section 6 argues Hyper-Q's per-request overhead must stay negligible even
though every statement passes through parse/bind/transform/serialize. The
translation cache short-circuits that pipeline for repeated statement
*shapes* (literals lifted into splice slots), which is what real report
workloads are made of. This ablation measures the warm-vs-cold latency gap
on a representative statement mix and replays the Table 1 Customer 1
workload to measure the achievable hit rate.
"""

import statistics
import threading
import time

import pytest
from conftest import emit

from repro.bench.reporting import format_table
from repro.core.engine import HyperQ
from repro.workloads import customer
from repro.workloads.tpch import queries as tpch_queries
from repro.workloads.tpch.schema import SCHEMA_DDL, TABLE_NAMES

STATEMENTS = [
    "SEL C_CUSTKEY, C_NAME FROM CUSTOMER WHERE C_CUSTKEY = 7",
    "SELECT O_ORDERKEY, O_TOTALPRICE FROM ORDERS "
    "WHERE O_ORDERDATE > DATE '1995-01-01' AND O_TOTALPRICE > 1000 "
    "QUALIFY RANK(O_TOTALPRICE DESC) <= 10",
    "SELECT L_ORDERKEY, SUM(L_EXTENDEDPRICE) FROM LINEITEM "
    "WHERE L_SHIPDATE > DATE '1996-03-15' GROUP BY L_ORDERKEY",
]


def _tpch_session(cache_size):
    engine = HyperQ(cache_size=cache_size)
    session = engine.create_session()
    for name in TABLE_NAMES:
        session.execute(SCHEMA_DDL[name])
    return engine, session


def _median_translate_latency(session, rounds=60):
    samples = []
    for i in range(rounds):
        sql = STATEMENTS[i % len(STATEMENTS)]
        start = time.perf_counter()
        session.translate(sql)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_ablation_cold_vs_warm_latency(benchmark):
    """Median translation latency, cache disabled vs. cache warm.

    The acceptance bar is a >= 5x gap: a cache hit must cost fingerprint +
    splice, not a full pipeline run.
    """
    __, cold_session = _tpch_session(cache_size=0)
    cold = _median_translate_latency(cold_session)

    engine, warm_session = _tpch_session(cache_size=32 * 1024 * 1024)
    for sql in STATEMENTS:           # prime
        warm_session.translate(sql)
    warm = benchmark.pedantic(_median_translate_latency, args=(warm_session,),
                              rounds=1, iterations=1)

    speedup = cold / warm
    emit(format_table(
        ["path", "median latency", "speedup"],
        [
            ("cold (cache off)", f"{cold * 1e6:8.1f} us", "1.0x"),
            ("warm (cache hit)", f"{warm * 1e6:8.1f} us", f"{speedup:.1f}x"),
        ],
        title="Ablation — translation cache, cold vs. warm"))
    assert engine.cache_stats().hit_rate > 0.9
    assert speedup >= 5.0, f"warm path only {speedup:.1f}x faster"


def test_ablation_customer1_replay_hit_rate(benchmark):
    """Replay the full Table 1 Customer 1 submission stream (every distinct
    query at its Zipf-shaped frequency) and measure the cache hit rate.

    Repeated submissions differ only in literals in real workloads; here the
    distinct texts repeat verbatim, and the acceptance bar is >= 80% hits.
    """
    profile = customer.PROFILES[1]
    schema, setup, distinct, freqs = customer.workload(profile)
    engine = HyperQ()
    session = engine.create_session()
    for ddl in schema + setup:
        session.execute(ddl)

    def replay():
        for sql, count in zip(distinct, freqs):
            for __ in range(count):
                try:
                    session.translate(sql)
                except Exception:
                    pass        # emulation-boundary errors count as bypasses
        return engine.cache_stats()

    stats = benchmark.pedantic(replay, rounds=1, iterations=1)
    total = stats.hits + stats.misses + stats.bypasses
    emit(format_table(
        ["metric", "value"],
        [
            ("statements replayed", f"{total}"),
            ("hits", f"{stats.hits}"),
            ("misses", f"{stats.misses}"),
            ("bypasses", f"{stats.bypasses}"),
            ("hit rate", f"{stats.hit_rate:.1%}"),
        ],
        title=f"Translation cache — Customer 1 replay "
              f"({profile.total_queries} submissions)"))
    assert total >= profile.total_queries
    assert stats.hit_rate >= 0.80


def test_ablation_concurrent_sessions_share_cache(benchmark):
    """N concurrent sessions replaying TPC-H against one engine: all but the
    first translation of each query should hit the shared cache, so total
    misses stay bounded by the number of distinct queries."""
    engine, setup = _tpch_session(cache_size=32 * 1024 * 1024)
    clients = 8

    def worker():
        session = engine.create_session()
        for sql in tpch_queries.QUERIES.values():
            session.translate(sql)

    def run():
        threads = [threading.Thread(target=worker) for __ in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return engine.cache_stats()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    total = stats.hits + stats.misses
    emit(format_table(
        ["metric", "value"],
        [
            ("clients", f"{clients}"),
            ("translations", f"{total}"),
            ("misses", f"{stats.misses}"),
            ("hit rate", f"{stats.hit_rate:.1%}"),
        ],
        title="Translation cache — concurrent TPC-H, shared cache"))
    assert total == clients * len(tpch_queries.QUERIES)
    # Every query is translated cold at most once per cache entry; allow a
    # small race window where two sessions miss the same query concurrently.
    assert stats.misses <= 2 * len(tpch_queries.QUERIES)


@pytest.mark.smoke
def test_smoke_warm_faster_than_cold():
    """Cheap CI guard (no benchmark fixture): a cache hit must beat a full
    pipeline run on the same statement."""
    __, cold_session = _tpch_session(cache_size=0)
    __, warm_session = _tpch_session(cache_size=1 << 20)
    sql = STATEMENTS[1]
    warm_session.translate(sql)     # prime

    def median(session):
        samples = []
        for __ in range(20):
            start = time.perf_counter()
            session.translate(sql)
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    warm = median(warm_session)
    cold = median(cold_session)
    assert warm < cold
