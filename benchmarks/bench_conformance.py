"""Conformance matrix smoke timing: the cost of checking every dialect.

The differential matrix re-executes each corpus statement once per profile,
so its wall-clock cost scales with profiles × statements. This bench times
matrix construction (engines + TPC-H load on every leg) and the per-profile
check throughput, and fails loudly if the matrix reports any disagreement —
a timing run on a red matrix would benchmark the reducer, not the harness.

Standalone (the matrix manages six live engines — not a microbench)::

    PYTHONPATH=src python benchmarks/bench_conformance.py --smoke \\
        --json BENCH_conformance.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests.conformance.generator import (  # noqa: E402
    GENERATOR_SETUP, generate_statements, load_tpch,
)
from tests.conformance.runner import Matrix, PROFILES  # noqa: E402
from tests.golden.corpus import CORPUS, SETUP  # noqa: E402

#: Statements per corpus in --smoke mode (full corpus otherwise).
SMOKE_STATEMENTS = 40


def run(smoke: bool) -> dict:
    report: dict = {"profiles": list(PROFILES), "smoke": smoke}

    t0 = time.perf_counter()
    matrix = Matrix()
    load_tpch(matrix)
    matrix.run_setup(SETUP)
    matrix.run_setup(GENERATOR_SETUP)
    report["setup_s"] = round(time.perf_counter() - t0, 3)

    golden = list(CORPUS)
    generated = generate_statements()
    if smoke:
        golden = golden[:SMOKE_STATEMENTS]
        generated = generated[:SMOKE_STATEMENTS]

    disagreements = 0
    t0 = time.perf_counter()
    for name, sql in golden + generated:
        disagreements += len(matrix.check(sql, name))
    elapsed = time.perf_counter() - t0
    matrix.close()

    checked = len(golden) + len(generated)
    cells = checked * (len(PROFILES) - 1)
    report.update({
        "statements": checked,
        "cells": cells,
        "disagreements": disagreements,
        "check_s": round(elapsed, 3),
        "statements_per_s": round(checked / elapsed, 1) if elapsed else None,
        "cells_per_s": round(cells / elapsed, 1) if elapsed else None,
    })
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"check only {SMOKE_STATEMENTS} statements "
                             "per corpus")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the timing report to PATH")
    args = parser.parse_args(argv)

    report = run(args.smoke)
    print(f"conformance matrix: {report['statements']} statements x "
          f"{len(report['profiles']) - 1} dialect legs "
          f"({report['cells']} cells)")
    print(f"  setup {report['setup_s']}s, checks {report['check_s']}s "
          f"({report['cells_per_s']} cells/s)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json}")
    if report["disagreements"]:
        print(f"  MATRIX RED: {report['disagreements']} disagreement(s) — "
              "timing numbers are not comparable", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
