"""Figure 2: support for selected Teradata features across cloud databases.

The paper plots, for each tracked Teradata feature, the percentage of the
four leading cloud data warehouses that support it natively. We regenerate
the matrix from the modeled capability profiles; the benchmarked operation
is the capability probe Hyper-Q performs when deciding whether a rewrite is
needed (it sits on the hot path of every transformation).
"""

from conftest import emit

from repro.bench.reporting import format_table, percent
from repro.transform.capabilities import cloud_profiles, support_fraction
from repro.transform.engine import Transformer
from repro.workloads.features import FEATURES, FeatureClass


def _matrix_rows():
    rows = []
    for feature in FEATURES:
        if feature.capability is None:
            continue
        fraction = support_fraction(feature.capability)
        rows.append((feature.description, feature.feature_class.value,
                     percent(fraction, 0)))
    return rows


def test_fig2_feature_support_matrix(benchmark):
    profiles = cloud_profiles()
    features = [f for f in FEATURES if f.capability is not None]

    def probe_all():
        return sum(
            profile.supports(feature.capability)
            for profile in profiles
            for feature in features
        )

    total = benchmark(probe_all)
    assert 0 < total < len(profiles) * len(features)

    emit(format_table(
        ["Teradata feature", "class", "cloud support"],
        _matrix_rows(),
        title="Figure 2 — share of 4 modeled cloud DWs supporting each feature"))

    # Shape assertions mirroring the paper's chart: the Teradata-only
    # constructs enjoy little to no cloud support...
    assert support_fraction("implicit_joins") == 0.0
    assert support_fraction("date_int_comparison") == 0.0
    assert support_fraction("macros") == 0.0
    assert support_fraction("qualify_clause") <= 0.25
    # ...while standard-but-optional features sit mid-range.
    assert 0.25 <= support_fraction("recursive_cte") <= 0.75
    assert 0.25 <= support_fraction("merge_statement") <= 0.75
    assert support_fraction("ordinal_group_by") >= 0.5


def test_fig2_transformer_rule_selection(benchmark):
    """Capability gating in action: constructing a Transformer for each cloud
    profile selects only the rules that target needs."""

    def build_all():
        return {profile.name: len(Transformer(profile).active_rules)
                for profile in cloud_profiles()}

    per_target = benchmark(build_all)
    emit(format_table(
        ["target", "active rewrite rules"],
        sorted(per_target.items()),
        title="Transformer rules selected per target (capability-driven)"))
    # Every modeled cloud target needs at least one rewrite; none needs all.
    from repro.transform.engine import default_rules

    assert all(0 < count <= len(default_rules()) for count in per_target.values())
