"""Figures 8a/8b: customer workload characteristics.

Every distinct query of both workloads is pushed through Hyper-Q's rewrite
engine with the feature tracker attached; the tracker's aggregates are the
reproduced figures. The benchmarked operation is full-workload translation —
the work a migration assessment actually performs.
"""

import pytest
from conftest import emit

from repro.bench.harness import run_workload_study
from repro.bench.reporting import format_table, percent
from repro.workloads import customer
from repro.workloads.features import FeatureClass

PAPER_8A = {
    1: {FeatureClass.TRANSLATION: 5 / 9, FeatureClass.TRANSFORMATION: 7 / 9,
        FeatureClass.EMULATION: 3 / 9},
    2: {FeatureClass.TRANSLATION: 2 / 9, FeatureClass.TRANSFORMATION: 6 / 9,
        FeatureClass.EMULATION: 3 / 9},
}
PAPER_8B = {
    1: {FeatureClass.TRANSLATION: 0.014, FeatureClass.TRANSFORMATION: 0.336,
        FeatureClass.EMULATION: 0.002},
    2: {FeatureClass.TRANSLATION: 0.002, FeatureClass.TRANSFORMATION: 0.040,
        FeatureClass.EMULATION: 0.791},
}


@pytest.mark.parametrize("number", [1, 2])
def test_fig8_workload_characteristics(benchmark, number):
    profile = customer.PROFILES[number]
    result = benchmark.pedantic(run_workload_study, args=(profile,),
                                rounds=1, iterations=1)

    rows_a = []
    rows_b = []
    for cls in FeatureClass:
        rows_a.append((cls.value,
                       percent(result.presence[cls]),
                       percent(PAPER_8A[number][cls])))
        rows_b.append((cls.value,
                       percent(result.affected[cls]),
                       percent(PAPER_8B[number][cls])))
    emit(format_table(
        ["class", "measured", "paper"], rows_a,
        title=f"Figure 8a — tracked features present, Workload {number} "
              f"({profile.sector})"))
    emit(format_table(
        ["class", "measured", "paper"], rows_b,
        title=f"Figure 8b — queries affected, Workload {number} "
              f"({profile.sector})"))

    assert result.translation_errors == 0
    for cls in FeatureClass:
        assert result.presence[cls] == pytest.approx(PAPER_8A[number][cls])
        assert result.affected[cls] == pytest.approx(PAPER_8B[number][cls],
                                                     abs=0.005)
