"""Figure 9a: Hyper-Q overhead on a single sequential TPC-H run.

The paper ran the 22 TPC-H queries on 1TB in a commercial cloud DW and found
Hyper-Q's total overhead (query translation + result transformation) below 2%
of end-to-end time. We run the same 22 queries (in Teradata dialect) through
the full pipeline against the in-memory warehouse and report the same split.
"""

from conftest import emit

from repro.bench.harness import prepare_tpch_engine, run_tpch_sequential
from repro.bench.reporting import format_table, percent


def test_fig9a_sequential_overhead(benchmark, tpch_scale):
    engine = prepare_tpch_engine(scale=tpch_scale)

    log = benchmark.pedantic(run_tpch_sequential, args=(engine,),
                             rounds=1, iterations=1)

    split = log.breakdown()
    emit(format_table(
        ["component", "share of end-to-end time", "paper"],
        [
            ("query translation", percent(split["translation"], 2), "~0.5%"),
            ("execution", percent(split["execution"], 2), "~98%"),
            ("result transformation", percent(split["result_conversion"], 2),
             "~1%"),
            ("cache lookup + probe", percent(split["cache_lookup"], 2), "—"),
            ("total Hyper-Q overhead", percent(log.overhead_fraction, 2),
             "< 2%"),
        ],
        title=f"Figure 9a — sequential TPC-H run (scale {tpch_scale})"))

    # Shape assertions: execution dominates; the virtualization layer's
    # share is a small fraction (generous bound at laptop scale).
    assert split["execution"] > 0.90
    assert log.overhead_fraction < 0.10
    assert len(log.requests) == 22
