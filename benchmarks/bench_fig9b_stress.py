"""Figure 9b: Hyper-Q overhead under concurrent load (stress test).

Section 7.3 mimics a Fortune 10 customer: ten simultaneous client sessions
continuously submit TPC-H queries through Hyper-Q over the wire protocol.
Overhead *drops* relative to the sequential run (paper: 0.1-0.3%) because
execution time grows with concurrency while Hyper-Q adds only a small
constant per query. We reproduce the setup with ten real socket clients.
"""

from conftest import emit

from repro.bench.harness import prepare_tpch_engine, run_tpch_stress
from repro.bench.reporting import format_table, percent

#: Queries with a healthy execution/translation ratio at laptop scale.
STRESS_QUERIES = [1, 3, 5, 6, 10, 12, 18]
CLIENTS = 10


def test_fig9b_concurrent_stress(benchmark, tpch_scale):
    engine = prepare_tpch_engine(scale=tpch_scale)

    log = benchmark.pedantic(
        run_tpch_stress, args=(engine,),
        kwargs={"clients": CLIENTS, "iterations_per_client": 1,
                "query_numbers": STRESS_QUERIES},
        rounds=1, iterations=1)

    split = log.breakdown()
    emit(format_table(
        ["component", "share of end-to-end time", "paper"],
        [
            ("query translation", percent(split["translation"], 2), "~0.1%"),
            ("execution", percent(split["execution"], 2), "~99.8%"),
            ("result transformation", percent(split["result_conversion"], 2),
             "~0.1%"),
            ("total Hyper-Q overhead", percent(log.overhead_fraction, 2),
             "0.1% - 0.3%"),
        ],
        title=f"Figure 9b — {CLIENTS} concurrent clients "
              f"(scale {tpch_scale}, queries {STRESS_QUERIES})"))

    assert len(log.requests) == CLIENTS * len(STRESS_QUERIES)
    # The paper's qualitative claim: overhead stays a tiny fraction under
    # concurrency (per-query translation cost is constant while execution
    # time inflates with queueing).
    assert log.overhead_fraction < 0.10
