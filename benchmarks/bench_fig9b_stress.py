"""Figure 9b: Hyper-Q overhead under concurrent load (stress test).

Section 7.3 mimics a Fortune 10 customer: ten simultaneous client sessions
continuously submit TPC-H queries through Hyper-Q over the wire protocol.
Overhead *drops* relative to the sequential run (paper: 0.1-0.3%) because
execution time grows with concurrency while Hyper-Q adds only a small
constant per query. We reproduce the setup with ten real socket clients.
"""

from conftest import emit

from repro.bench.harness import prepare_tpch_engine, run_tpch_stress
from repro.bench.reporting import format_table, percent

#: Queries with a healthy execution/translation ratio at laptop scale.
STRESS_QUERIES = [1, 3, 5, 6, 10, 12, 18]
CLIENTS = 10


def test_fig9b_concurrent_stress(benchmark, tpch_scale):
    engine = prepare_tpch_engine(scale=tpch_scale)

    log = benchmark.pedantic(
        run_tpch_stress, args=(engine,),
        kwargs={"clients": CLIENTS, "iterations_per_client": 1,
                "query_numbers": STRESS_QUERIES},
        rounds=1, iterations=1)

    split = log.breakdown()
    emit(format_table(
        ["component", "share of end-to-end time", "paper"],
        [
            ("query translation", percent(split["translation"], 2), "~0.1%"),
            ("execution", percent(split["execution"], 2), "~99.8%"),
            ("result transformation", percent(split["result_conversion"], 2),
             "~0.1%"),
            ("total Hyper-Q overhead", percent(log.overhead_fraction, 2),
             "0.1% - 0.3%"),
        ],
        title=f"Figure 9b — {CLIENTS} concurrent clients "
              f"(scale {tpch_scale}, queries {STRESS_QUERIES})"))

    assert len(log.requests) == CLIENTS * len(STRESS_QUERIES)
    # The paper's qualitative claim: overhead stays a tiny fraction under
    # concurrency (per-query translation cost is constant while execution
    # time inflates with queueing).
    assert log.overhead_fraction < 0.10


# -- wire-path stress harness ---------------------------------------------------------
#
# The Section 7.3 setup at protocol level: hundreds of concurrent wire
# sessions against one worker, run once per wire path (threaded vs async).
# The server runs in a forked child so its CPU seconds can be read
# independently of the client threads; clients drain raw frames without
# decoding rows, so the numbers isolate the server's wire + codec work.
#
# Reported per path: interactive p99/mean latency across the connection
# storm, and bulk-transfer rows/sec per server CPU second (rows/sec/core).
# On hosts with >= 4 CPUs the async path must not lose on p99 and must win
# on rows/sec/core; below that the loop and the clients share cores and
# the comparison is report-only.
#
# Standalone: ``python benchmarks/bench_fig9b_stress.py --mode both
# --smoke --json BENCH_wire.json`` (bench_streaming.py forwards here too).

import argparse
import json
import multiprocessing
import resource
import socket as socket_mod
import statistics
import struct as struct_mod
import sys
import threading
import time


def _wire_server_main(conn, wire: str, rows: int,
                      max_connections: int) -> None:
    """Child process: one engine + one wire server + a tiny control RPC."""
    from repro import HyperQ
    from repro.core.budget import BatchBudget
    from repro.protocol.aio_server import AioServerThread
    from repro.protocol.server import ServerThread

    engine = HyperQ(tracing=False,
                    batch_budget=BatchBudget(batch_rows=512))
    session = engine.create_session()
    session.execute("CREATE TABLE BIGSTREAM (N INTEGER, PAD VARCHAR(80))")
    session.close()
    engine.backend.catalog.table("BIGSTREAM").insert_rows(
        [(i, "p" * 40) for i in range(rows)])

    thread_cls = AioServerThread if wire == "async" else ServerThread
    thread = thread_cls(engine, max_connections=max_connections)
    host, port = thread.start()

    def cpu_seconds() -> float:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        return usage.ru_utime + usage.ru_stime

    conn.send(("ready", host, port))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message == "cpu":
            conn.send(cpu_seconds())
        elif message == "stop":
            break
    thread.stop()
    conn.close()


class WireServerProc:
    """A wire server in a forked child, with a CPU-seconds probe."""

    def __init__(self, wire: str, rows: int, max_connections: int = 256):
        ctx = multiprocessing.get_context("fork")
        self._conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_wire_server_main,
            args=(child, wire, rows, max_connections), daemon=True)
        self.process.start()
        child.close()
        tag, host, port = self._conn.recv()
        assert tag == "ready"
        self.address = (host, port)

    def cpu_seconds(self) -> float:
        self._conn.send("cpu")
        return self._conn.recv()

    def stop(self) -> None:
        try:
            self._conn.send("stop")
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        self._conn.close()


def _wire_connect(address):
    from repro.protocol.messages import HEADER, MAGIC, MessageKind

    sock = socket_mod.create_connection(address, timeout=120.0)
    sock.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
    logon = HEADER.pack(MAGIC, int(MessageKind.LOGON_REQUEST), 7) \
        + b"dbc\0dbc"
    sock.sendall(logon)
    _drain_reply_frames(sock, stop_at_logon=True)
    return sock


def _read_exact(sock, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            raise ConnectionError("server closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _drain_reply_frames(sock, stop_at_logon: bool = False):
    """Read frames to the end of one reply; count rows without decoding."""
    from repro.protocol.messages import HEADER, MAGIC, MessageKind

    rows = 0
    payload_bytes = 0
    while True:
        magic, kind, length = HEADER.unpack(_read_exact(sock, HEADER.size))
        assert magic == MAGIC
        payload = _read_exact(sock, length) if length else b""
        payload_bytes += length
        if stop_at_logon and kind == int(MessageKind.LOGON_RESPONSE):
            return 0, 0
        if kind == int(MessageKind.SUCCESS):
            (rows,) = struct_mod.unpack(">Q", payload)
            return rows, payload_bytes
        if kind == int(MessageKind.FAILURE):
            raise RuntimeError(payload.decode("utf-8", "replace"))


def _run_query_raw(sock, sql: str):
    from repro.protocol.messages import HEADER, MAGIC, MessageKind

    data = sql.encode("utf-8")
    sock.sendall(HEADER.pack(MAGIC, int(MessageKind.RUN_QUERY), len(data))
                 + data)
    return _drain_reply_frames(sock)


def _interactive_leg(address, clients: int, per_client: int):
    """The connection storm: every client holds a live session and fires
    small point queries; per-request wall latencies across the fleet."""
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)
    errors: list[BaseException] = []

    def worker():
        try:
            sock = _wire_connect(address)
            try:
                barrier.wait(timeout=120.0)
                mine = []
                for __ in range(per_client):
                    begin = time.perf_counter()
                    _run_query_raw(sock, "SEL N FROM BIGSTREAM WHERE N = 42")
                    mine.append(time.perf_counter() - begin)
                with lock:
                    latencies.extend(mine)
            finally:
                sock.close()
        except BaseException as error:  # noqa: BLE001 — surfaced below
            with lock:
                errors.append(error)

    threads = [threading.Thread(target=worker, daemon=True)
               for __ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    if errors:
        raise RuntimeError(f"{len(errors)} stress clients failed: "
                           f"{errors[0]!r}")
    return latencies


def _bulk_leg(address, streams: int):
    """Bulk transfer: N clients each drain a full scan, raw frames only."""
    totals = {"rows": 0, "bytes": 0}
    lock = threading.Lock()
    errors: list[BaseException] = []

    def worker():
        try:
            sock = _wire_connect(address)
            try:
                rows, payload_bytes = _run_query_raw(
                    sock, "SEL N, PAD FROM BIGSTREAM")
                with lock:
                    totals["rows"] += rows
                    totals["bytes"] += payload_bytes
            finally:
                sock.close()
        except BaseException as error:  # noqa: BLE001
            with lock:
                errors.append(error)

    begin = time.perf_counter()
    threads = [threading.Thread(target=worker, daemon=True)
               for __ in range(streams)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600.0)
    wall = time.perf_counter() - begin
    if errors:
        raise RuntimeError(f"{len(errors)} bulk clients failed: "
                           f"{errors[0]!r}")
    return totals["rows"], totals["bytes"], wall


def _p99(samples):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def run_wire_stress(wire: str, smoke: bool = False) -> dict:
    """One full stress run (interactive + bulk legs) against one path."""
    clients = 20 if smoke else 200
    per_client = 3 if smoke else 5
    streams = 2 if smoke else 8
    rows = 5_000 if smoke else 60_000

    server = WireServerProc(wire, rows, max_connections=max(256, clients))
    try:
        latencies = _interactive_leg(server.address, clients, per_client)
        cpu_before = server.cpu_seconds()
        bulk_rows, bulk_bytes, bulk_wall = _bulk_leg(server.address, streams)
        cpu_bulk = max(1e-9, server.cpu_seconds() - cpu_before)
    finally:
        server.stop()

    return {
        "wire": wire,
        "clients": clients,
        "requests": len(latencies),
        "p99_ms": _p99(latencies) * 1e3,
        "mean_ms": statistics.fmean(latencies) * 1e3,
        "bulk_rows": bulk_rows,
        "bulk_mib": bulk_bytes / (1024 * 1024),
        "bulk_wall_s": bulk_wall,
        "bulk_server_cpu_s": cpu_bulk,
        "rows_per_sec_per_core": bulk_rows / cpu_bulk,
    }


def wire_stress_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="wire-path stress: threaded vs async, "
                    "p99 + rows/sec/core")
    parser.add_argument("--mode", choices=("threaded", "async", "both"),
                        default="both")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (20 connections instead of 200)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write results as JSON")
    args = parser.parse_args(argv)

    modes = ("threaded", "async") if args.mode == "both" else (args.mode,)
    import os
    results = {}
    for wire in modes:
        print(f"running {wire} wire stress "
              f"({'smoke' if args.smoke else 'full'})...", flush=True)
        results[wire] = run_wire_stress(wire, smoke=args.smoke)

    header = (f"{'path':<10} {'p99 ms':>9} {'mean ms':>9} "
              f"{'bulk rows':>10} {'rows/s/core':>12}")
    print()
    print(header)
    print("-" * len(header))
    for wire, stats in results.items():
        print(f"{wire:<10} {stats['p99_ms']:>9.2f} {stats['mean_ms']:>9.2f} "
              f"{stats['bulk_rows']:>10} "
              f"{stats['rows_per_sec_per_core']:>12.0f}")

    cpus = os.cpu_count() or 1
    payload = {"cpus": cpus, "smoke": args.smoke, "results": results,
               "asserted": False}
    status = 0
    if args.mode == "both" and cpus >= 4:
        # Only meaningful when the event loop, the executor, and the
        # clients get their own cores; on smaller hosts it is report-only.
        payload["asserted"] = True
        threaded, asyncio_ = results["threaded"], results["async"]
        if asyncio_["p99_ms"] > threaded["p99_ms"]:
            print(f"FAIL: async p99 {asyncio_['p99_ms']:.2f}ms > "
                  f"threaded {threaded['p99_ms']:.2f}ms")
            status = 1
        ratio = (asyncio_["rows_per_sec_per_core"]
                 / max(1e-9, threaded["rows_per_sec_per_core"]))
        if ratio < 1.5:
            print(f"FAIL: async bulk rows/sec/core only {ratio:.2f}x "
                  f"threaded (need >= 1.5x)")
            status = 1
    elif args.mode == "both":
        print(f"(assertions skipped: {cpus} CPUs < 4 — report only)")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(wire_stress_main())
