"""Gateway scaling benchmark: warm-cache QPS, 1 worker vs a fleet.

One Python process tops out one core on translation, so the
process-per-core gateway should scale warm-cache throughput roughly
linearly with workers — on a machine that actually has the cores.
Clients are separate *processes* (not threads): a thread-based load
generator would serialize on the client's own GIL and measure itself.

Also cross-checks fleet observability: after the run quiesces, the sum
of the per-worker ``hyperq_requests_total`` counters must equal the
fleet-wide number any session sees via ``SHOW HYPERQ METRICS``.

Standalone (not pytest-benchmark — it forks process fleets)::

    PYTHONPATH=src python benchmarks/bench_gateway_scaling.py --smoke \\
        --json BENCH_gateway.json

The >=3x speedup assertion only arms on >= 4 usable CPUs and outside
``--smoke`` — a 1-core CI container cannot (and should not) show
multi-core scaling.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.gateway import Gateway, GatewayConfig  # noqa: E402
from repro.protocol.client import TdClient  # noqa: E402

SETUP_SQL = """
CREATE TABLE bench_t (a INTEGER, b VARCHAR(20), c INTEGER);
INSERT INTO bench_t VALUES (1, 'x', 10);
INSERT INTO bench_t VALUES (2, 'y', 20);
INSERT INTO bench_t VALUES (3, 'z', 30);
INSERT INTO bench_t VALUES (4, 'w', 40);
"""

QUERIES = [
    "SELECT a, b FROM bench_t WHERE a = 1",
    "SELECT COUNT(*) FROM bench_t WHERE c > 15",
    "SELECT b FROM bench_t WHERE a = 3 AND c = 30",
    "SELECT a + c FROM bench_t WHERE b = 'y'",
]


def _client_proc(host: str, port: int, requests: int,
                 ready, start, results) -> None:
    client = TdClient(host, port)
    ready.put(os.getpid())
    start.wait()
    begin = time.perf_counter()
    for index in range(requests):
        client.execute(QUERIES[index % len(QUERIES)])
    end = time.perf_counter()
    client.close()
    results.put((requests, begin, end))


def run_fleet(workers: int, clients: int, requests: int) -> dict:
    """QPS of *clients* concurrent sessions against a *workers*-wide
    gateway, plus the per-worker/fleet metrics cross-check."""
    gateway = Gateway(GatewayConfig(workers=workers, setup_sql=SETUP_SQL))
    try:
        host, port = gateway.start()
        # warm the shared cache tier: one pass translates every query
        # once; every worker's L1 then adopts from the tier
        with TdClient(host, port) as warm:
            for query in QUERIES:
                warm.execute(query)

        ctx = multiprocessing.get_context("fork")
        ready, results = ctx.Queue(), ctx.Queue()
        start = ctx.Event()
        procs = [ctx.Process(target=_client_proc,
                             args=(host, port, requests, ready, start,
                                   results), daemon=True)
                 for __ in range(clients)]
        for proc in procs:
            proc.start()
        for __ in procs:
            ready.get(timeout=60)
        start.set()
        spans = [results.get(timeout=600) for __ in procs]
        for proc in procs:
            proc.join(timeout=10)

        total = sum(count for count, __, __ in spans)
        wall = max(end for __, __, end in spans) \
            - min(begin for __, begin, __ in spans)
        qps = total / wall if wall > 0 else float("inf")

        # -- fleet metrics cross-check -------------------------------------------
        # quiesce: the request counter lands just after each reply
        def fleet_sum() -> int:
            return sum(state["counters"].get("hyperq_requests_total", 0)
                       for __, state in gateway.worker_metrics_states())

        expected = fleet_sum()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            time.sleep(0.05)
            current = fleet_sum()
            if current == expected:
                break
            expected = current
        with TdClient(host, port) as probe:
            counters = dict(
                line.split()[1:3]
                for line in probe.show_metrics().splitlines()
                if line.startswith("counter "))
        reported = int(counters["hyperq_requests_total"])
        if reported != expected:
            raise AssertionError(
                f"fleet metrics mismatch: SHOW HYPERQ METRICS says "
                f"{reported}, per-worker sum is {expected}")
        per_worker = {
            index: state["counters"].get("hyperq_requests_total", 0)
            for index, state in gateway.worker_metrics_states()}
        cache = gateway.cache_service_stats()
        return {"workers": workers, "clients": clients,
                "requests": total, "wall_s": round(wall, 4),
                "qps": round(qps, 1), "per_worker_requests": per_worker,
                "fleet_requests_total": reported,
                "cache_tier": cache}
    finally:
        gateway.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet and request counts; never "
                             "asserts the speedup ratio (CI containers "
                             "have one core)")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client")
    parser.add_argument("--fleets", default=None,
                        help="comma-separated worker counts (default: "
                             "1,2 smoke / 1,4 full)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the results as JSON to PATH")
    args = parser.parse_args(argv)

    fleets = [int(n) for n in args.fleets.split(",")] if args.fleets \
        else ([1, 2] if args.smoke else [1, 4])
    clients = args.clients or (4 if args.smoke else 8)
    requests = args.requests or (25 if args.smoke else 200)
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)

    print(f"gateway scaling: fleets={fleets} clients={clients} "
          f"requests/client={requests} cpus={cpus} smoke={args.smoke}")
    runs = []
    for workers in fleets:
        result = run_fleet(workers, clients, requests)
        runs.append(result)
        print(f"  workers={workers}: {result['qps']} qps "
              f"({result['requests']} requests in {result['wall_s']}s, "
              f"per-worker {result['per_worker_requests']}, "
              f"metrics cross-check ok)")

    report = {"cpus": cpus, "smoke": args.smoke, "runs": runs}
    if len(runs) >= 2 and runs[0]["workers"] == 1:
        speedup = runs[-1]["qps"] / runs[0]["qps"]
        report["speedup"] = round(speedup, 2)
        print(f"  speedup x{report['speedup']} "
              f"({runs[-1]['workers']} workers vs 1)")
        if not args.smoke and cpus >= 4 and runs[-1]["workers"] >= 4:
            assert speedup >= 3.0, \
                f"expected >=3x warm-cache QPS at {runs[-1]['workers']} " \
                f"workers on {cpus} cpus, got x{speedup:.2f}"
            print("  >=3x scaling assertion: PASS")
        else:
            print("  >=3x scaling assertion: skipped "
                  f"(cpus={cpus}, smoke={args.smoke})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
