"""Semantic-cache ablation: none vs translation-only vs + result cache.

A dashboard-style workload re-issues a fixed set of read queries against
a HOT table while single-table DML churns a separate CHURN table.  With
the whole-catalog invalidation the seed shipped with, every DML round
would wipe both caches; with semantic per-table invalidation, entries on
the untouched HOT table must survive every round.  The report captures:

* wall time and backend executor calls per configuration (a result-cache
  hit performs zero backend calls — the statements_executed delta is the
  direct evidence),
* translation- and result-cache hit rates,
* the **survival rate**: the fraction of HOT-table result-cache probes
  immediately after a disjoint-table DML that still hit.

Standalone (in-process engines, no fleet)::

    PYTHONPATH=src python benchmarks/bench_semantic_cache.py --smoke \\
        --json BENCH_semantic_cache.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import HyperQ  # noqa: E402

HOT_QUERIES = [
    "SELECT ID, VAL FROM HOT WHERE ID = 7",
    "SELECT COUNT(*) FROM HOT WHERE VAL > 50",
    "SELECT GRP, SUM(VAL) FROM HOT GROUP BY GRP",
    "SELECT ID FROM HOT WHERE GRP = 'a' ORDER BY ID",
    "SELECT MAX(VAL) - MIN(VAL) FROM HOT WHERE ID < 40",
]

CHURN_QUERIES = [
    "SELECT COUNT(*) FROM CHURN",
    "SELECT SUM(N) FROM CHURN WHERE N > 3",
]


def build_session(engine: HyperQ, rows: int):
    session = engine.create_session()
    session.execute("CREATE MULTISET TABLE HOT "
                    "(ID INTEGER, GRP VARCHAR(1), VAL INTEGER)")
    session.execute("CREATE MULTISET TABLE CHURN (N INTEGER)")
    values = ", ".join(
        f"({i}, '{'abc'[i % 3]}', {(i * 37) % 100})" for i in range(rows))
    session.execute(f"INSERT INTO HOT VALUES {values}")
    session.execute("INSERT INTO CHURN VALUES (1), (2), (3)")
    return session


def run_config(label: str, engine: HyperQ, rounds: int, rows: int) -> dict:
    session = build_session(engine, rows)
    rcache = engine.result_cache
    survival_probes = survival_hits = 0
    begin = time.perf_counter()
    for round_index in range(rounds):
        for sql in HOT_QUERIES + CHURN_QUERIES:
            session.execute(sql).rows
        # single-table DML: only CHURN-dependent entries may be dropped
        session.execute(f"INSERT INTO CHURN VALUES ({10 + round_index})")
        hits_before = rcache.stats().hits if rcache is not None else 0
        for sql in HOT_QUERIES:
            session.execute(sql).rows
        if rcache is not None:
            survival_probes += len(HOT_QUERIES)
            survival_hits += rcache.stats().hits - hits_before
    wall = time.perf_counter() - begin

    report = {
        "config": label,
        "rounds": rounds,
        "wall_s": round(wall, 4),
        "backend_statements": session.odbc.statements_executed,
    }
    tcache = engine.cache_stats()
    if tcache is not None:
        report["translation_cache"] = {
            "hits": tcache.hits, "misses": tcache.misses,
            "invalidations": tcache.invalidations}
    rstats = engine.result_cache_stats()
    if rstats is not None:
        report["result_cache"] = rstats.as_dict()
        report["survival_rate"] = (
            round(survival_hits / survival_probes, 4)
            if survival_probes else 0.0)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small round/row counts for CI")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--rows", type=int, default=None,
                        help="rows in the HOT table")
    parser.add_argument("--result-cache-bytes", type=int,
                        default=4 * 1024 * 1024)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the results as JSON to PATH")
    args = parser.parse_args(argv)

    rounds = args.rounds or (8 if args.smoke else 60)
    rows = args.rows or (50 if args.smoke else 400)
    configs = [
        ("none", HyperQ(cache_size=0)),
        ("translation-only", HyperQ()),
        ("translation+result", HyperQ(
            result_cache_bytes=args.result_cache_bytes)),
    ]

    print(f"semantic-cache ablation: rounds={rounds} rows={rows} "
          f"smoke={args.smoke}")
    runs = []
    for label, engine in configs:
        result = run_config(label, engine, rounds, rows)
        runs.append(result)
        line = (f"  {label}: {result['wall_s']}s, "
                f"{result['backend_statements']} backend statements")
        if "result_cache" in result:
            rc = result["result_cache"]
            line += (f", result-cache hit rate "
                     f"{rc['hit_rate']:.2f}, survival rate "
                     f"{result['survival_rate']:.2f} "
                     f"({rc['invalidations']:.0f} invalidations)")
        print(line)

    report = {"smoke": args.smoke, "rounds": rounds, "rows": rows, "runs": runs}
    cached = runs[-1]
    # acceptance evidence: disjoint-table DML left the HOT entries alive
    assert cached["survival_rate"] == 1.0, \
        f"HOT-table entries did not survive disjoint DML: {cached}"
    # and the result cache actually removed backend work
    assert cached["backend_statements"] < runs[1]["backend_statements"], \
        "result cache did not reduce backend executor calls"
    report["backend_statements_saved_vs_translation_only"] = \
        runs[1]["backend_statements"] - cached["backend_statements"]
    print(f"  survival assertion: PASS (rate "
          f"{cached['survival_rate']:.2f}); backend statements saved: "
          f"{report['backend_statements_saved_vs_translation_only']}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
