"""Streaming result pipeline: time-to-first-row and peak memory.

Section 4.5/4.6 describe a streaming data path — batches fetched into TDF
and re-encoded onto the source wire as they arrive. This benchmark compares
the two consumption modes of the refactored pipeline on a TPC-H scan-heavy
query (a full LINEITEM scan):

* *materializing* — drain ``HQResult.rows`` (the compatibility shim: every
  converted chunk is buffered through the Result Store before any row is
  seen);
* *streaming* — iterate ``HQResult.iter_chunks()`` and observe rows as each
  batch converts.

Reported per mode: time-to-first-row, total wall time, and peak traced
memory during consumption (tracemalloc; allocation peak, not RSS, so the
comparison is load-independent). The streaming mode must see its first row
earlier and allocate less at peak.
"""

import time
import tracemalloc

import pytest

from conftest import emit

from repro.bench.harness import prepare_tpch_engine
from repro.bench.reporting import format_table
from repro.core.budget import BatchBudget
from repro.protocol.encoding import decode_rows

QUERY = "SEL * FROM LINEITEM"
BUDGET = BatchBudget(batch_rows=512, max_memory_bytes=256 * 1024)


def _consume_materializing(result):
    """The shim path: no row visible until the full result has converted."""
    start = time.perf_counter()
    rows = result.rows
    first_row_at = time.perf_counter() - start  # first == last here
    return len(rows), first_row_at, time.perf_counter() - start


def _consume_streaming(result):
    """The pipeline path: decode rows chunk by chunk as they convert."""
    start = time.perf_counter()
    first_row_at = None
    count = 0
    for chunk in result.iter_chunks():
        rows = decode_rows(result.metas, chunk)
        if rows and first_row_at is None:
            first_row_at = time.perf_counter() - start
        count += len(rows)
    return count, first_row_at, time.perf_counter() - start


def _measure(engine, consume):
    session = engine.create_session()
    tracemalloc.start()
    result = session.execute(QUERY)
    count, first_row_at, total = consume(result)
    __, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    result.close()
    session.close()
    return count, first_row_at, total, peak


def test_streaming_vs_materializing(tpch_scale):
    engine = prepare_tpch_engine(scale=tpch_scale, batch_budget=BUDGET)
    mat_count, mat_first, mat_total, mat_peak = _measure(
        engine, _consume_materializing)
    str_count, str_first, str_total, str_peak = _measure(
        engine, _consume_streaming)

    emit(format_table(
        ["path", "first row (ms)", "total (ms)", "peak alloc (KiB)"],
        [
            ("materializing (shim)", f"{mat_first * 1e3:.1f}",
             f"{mat_total * 1e3:.1f}", f"{mat_peak / 1024:.0f}"),
            ("streaming", f"{str_first * 1e3:.1f}",
             f"{str_total * 1e3:.1f}", f"{str_peak / 1024:.0f}"),
        ],
        title=f"Streaming result pipeline — {QUERY} (scale {tpch_scale}, "
              f"batch {BUDGET.batch_rows} rows)"))

    assert mat_count == str_count > 0
    # The whole point of the refactor: the first row arrives while the rest
    # of the result is still being produced, and nothing holds the full
    # converted result in memory.
    assert str_first < mat_first
    assert str_peak < mat_peak


@pytest.mark.smoke
def test_smoke_memory_ceiling_holds():
    """CI guard: under a hard (tiny) BatchBudget, the streaming path stays
    within the ceiling per layer and the shim path still returns every row
    (spilling instead of blowing the budget)."""
    budget = BatchBudget(batch_rows=64, max_memory_bytes=16 * 1024)
    engine = prepare_tpch_engine(scale=0.001, batch_budget=budget)
    session = engine.create_session()

    # Streaming path: every converted chunk stays under the ceiling and no
    # Result Store is ever instantiated.
    result = session.execute(QUERY)
    chunks = 0
    for chunk in result.iter_chunks():
        assert len(chunk) <= budget.max_memory_bytes
        chunks += 1
    assert chunks > 1
    assert result.converted._store is None
    assert result.converted.peak_chunk_bytes <= budget.max_memory_bytes
    assert result.timing.first_row > 0.0
    streamed = result.rowcount
    result.close()

    # Shim path: materializing drains through the bounded store, which
    # spills rather than exceed the budget, and loses no rows.
    result = session.execute(QUERY)
    rows = result.rows
    assert len(rows) == streamed > 0
    store = result.converted.store
    assert store.high_water <= budget.max_memory_bytes
    assert store.spilled
    result.close()
    session.close()


if __name__ == "__main__":
    # Standalone wire-path mode axis: the streaming benchmark's stress
    # flavor is the shared harness in bench_fig9b_stress (same directory),
    # so ``python benchmarks/bench_streaming.py --mode both --smoke
    # --json BENCH_wire.json`` and the fig9b entry point report the same
    # numbers from the same code.
    import sys

    from bench_fig9b_stress import wire_stress_main

    sys.exit(wire_stress_main())
