"""Table 1: overview of customers and workloads.

Regenerates the two customer workloads and reports total/distinct query
counts; the benchmarked operation is distinct-query generation (the cost of
materializing a 10k-query workload).
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.workloads import customer


def test_table1_workload_overview(benchmark):
    def generate_both():
        return {
            profile.number: (customer.distinct_queries(profile),
                             customer.frequencies(profile))
            for profile in (customer.HEALTH, customer.TELCO)
        }

    generated = benchmark(generate_both)

    rows = []
    for number, (queries, freqs) in sorted(generated.items()):
        profile = customer.PROFILES[number]
        rows.append((number, profile.sector,
                     f"{sum(freqs)} ({len(queries)})"))
    emit(format_table(
        ["Customer", "Sector", "Total (Distinct) Number of Queries"],
        rows, title="Table 1 — overview of customers and workloads"))

    # Exact reproduction of the paper's counts.
    health_queries, health_freqs = generated[1]
    telco_queries, telco_freqs = generated[2]
    assert (sum(health_freqs), len(health_queries)) == (39_731, 3_778)
    assert (sum(telco_freqs), len(telco_queries)) == (192_753, 10_446)
