"""Table 2: implementation component for each tracked feature.

For every tracked feature a probe query exercises the rewrite; the tracker
records which pipeline stage actually performed it. The regenerated table
pairs each feature with its observed component, and the assertions pin the
observed stage to the component the registry declares — if a rewrite ever
moves stages silently, this bench fails. The benchmarked operation is the
full probe sweep (one translation per feature).
"""

from conftest import emit

from repro.bench.reporting import format_table
from repro.core.engine import HyperQ
from repro.core.tracker import FeatureTracker
from repro.workloads.features import FEATURES_BY_NAME

_STAGE_OF_COMPONENT = {
    "Parser": "parser",
    "Binder": "binder",
    "Transformer": "transformer",
    "Serializer": "serializer",
    "Emulator": "emulator",
}

SETUP = [
    """CREATE MULTISET TABLE SALES (
        PRODUCT_NAME VARCHAR(40), STORE INTEGER,
        AMOUNT DECIMAL(12,2), SALES_DATE DATE)""",
    "CREATE TABLE SALES_HISTORY (GROSS DECIMAL(12,2), NET DECIMAL(12,2))",
    "CREATE SET TABLE UNIQ_T (A INTEGER)",
    "CREATE TABLE CP_T (N VARCHAR(10) NOT CASESPECIFIC)",
    "CREATE VIEW SALES_V AS SELECT PRODUCT_NAME, AMOUNT FROM SALES",
    "CREATE MACRO PROBE_M AS (SELECT COUNT(*) FROM SALES;)",
    """CREATE PROCEDURE PROBE_P (IN X INTEGER)
       BEGIN DECLARE V INTEGER; SET V = X; END""",
    "INSERT INTO SALES VALUES ('a', 1, 10.00, DATE '2014-02-02')",
    "INSERT INTO SALES_HISTORY VALUES (5.00, 4.00)",
]

PROBES = {
    "sel_shortcut": "SEL 1 FROM SALES",
    "ins_shortcut": "INS SALES ('b', 2, 1.00, DATE '2014-01-01')",
    "upd_shortcut": "UPD SALES SET STORE = STORE WHERE 1 = 0",
    "del_shortcut": "DEL FROM SALES WHERE 1 = 0",
    "ne_operator": "SELECT 1 FROM SALES WHERE STORE ^= 0",
    "zeroifnull": "SELECT ZEROIFNULL(AMOUNT) FROM SALES",
    "chars_function": "SELECT CHARS(PRODUCT_NAME) FROM SALES",
    "index_function": "SELECT INDEX(PRODUCT_NAME, 'a') FROM SALES",
    "mod_operator": "SELECT STORE MOD 2 FROM SALES",
    "qualify": "SELECT STORE FROM SALES QUALIFY RANK(AMOUNT DESC) <= 1",
    "implicit_join": ("SELECT S.STORE, SALES_HISTORY.GROSS FROM SALES S "
                      "WHERE S.AMOUNT = SALES_HISTORY.GROSS"),
    "named_expression": "SELECT AMOUNT AS X, X + 1 FROM SALES",
    "ordinal_group_by": "SELECT STORE, COUNT(*) FROM SALES GROUP BY 1",
    "grouping_extensions": ("SELECT STORE, COUNT(*) FROM SALES "
                            "GROUP BY ROLLUP (STORE)"),
    "date_arithmetic": "SELECT SALES_DATE + 7 FROM SALES",
    "date_int_comparison": "SELECT 1 FROM SALES WHERE SALES_DATE > 1140101",
    "vector_subquery": ("SELECT 1 FROM SALES WHERE (AMOUNT, AMOUNT) > "
                        "ANY (SELECT GROSS, NET FROM SALES_HISTORY)"),
    "null_ordering": "SELECT STORE FROM SALES ORDER BY STORE",
    "macro": "EXEC PROBE_M",
    "stored_procedure": "CALL PROBE_P(1)",
    "recursive_query": ("WITH RECURSIVE R (N) AS ("
                        "SELECT STORE FROM SALES UNION ALL "
                        "SELECT N FROM R WHERE N < 0) SELECT N FROM R"),
    "merge_statement": ("MERGE INTO SALES USING SALES_HISTORY H "
                        "ON SALES.AMOUNT = H.GROSS "
                        "WHEN MATCHED THEN UPDATE SET AMOUNT = H.NET"),
    "dml_on_view": "UPD SALES_V SET AMOUNT = AMOUNT WHERE 1 = 0",
    "help_command": "HELP SESSION",
    "set_table": "INSERT INTO UNIQ_T VALUES (1)",
    # Probes the primary (binder) compensation: case-insensitive comparison.
    # The secondary paths (non-constant default fill, PERIOD split) run in
    # the emulator; Table 2 itself lists this feature as multi-component.
    "column_properties": "SELECT 1 FROM CP_T WHERE N = 'x'",
    "volatile_table": "CREATE VOLATILE TABLE VP_T (X INTEGER)",
}


def _run_probe_sweep():
    tracker = FeatureTracker()
    engine = HyperQ(tracker=tracker)
    session = engine.create_session()
    for ddl in SETUP:
        session.execute(ddl)
    observed = {}
    for feature_name, probe in PROBES.items():
        session.execute(probe)
        observed[feature_name] = tracker.observed_stages.get(feature_name)
    return observed


def test_table2_component_attribution(benchmark):
    observed = benchmark.pedantic(_run_probe_sweep, rounds=1, iterations=1)

    rows = []
    mismatches = []
    for feature_name, stage in sorted(observed.items()):
        declared = FEATURES_BY_NAME[feature_name].component.value
        expected = _STAGE_OF_COMPONENT[declared]
        ok = stage == expected
        rows.append((feature_name,
                     FEATURES_BY_NAME[feature_name].feature_class.value,
                     declared, stage or "(not fired)",
                     "ok" if ok else "MISMATCH"))
        if not ok:
            mismatches.append(feature_name)
    emit(format_table(
        ["feature", "class", "declared component", "observed stage", ""],
        rows, title="Table 2 — feature -> implementing component"))
    assert not mismatches, mismatches
