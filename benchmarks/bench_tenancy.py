"""Noisy-neighbor isolation benchmark: per-tenant p99 under an ETL storm.

Three phases against the same wire server and TPC-H schema:

* *solo*      — tenant ``dash`` replays a generated BI dashboard session
  (:mod:`repro.workloads.sessions`) alone: the baseline p50/p99.
* *untenanted* — the same replay while ``storm`` floods the shared
  worker pool with no tenancy control plane: the degradation everyone
  gets when one tenant misbehaves on pooled infrastructure.
* *tenanted*  — the storm again, but with per-tenant quotas (one
  concurrency slot, a two-deep queue, a QPS bucket) and a 4x fair-share
  weight for ``dash``: the storm is shed at admission and the dashboard
  keeps its latency.

Reported: per-tenant p50/p99 per phase, storm shed/served counts, and
the isolation factor (tenanted dash p99 / solo p99). Full runs assert
the acceptance bar — tenanted p99 within 2x of solo (plus a small
absolute floor for timer noise on sub-millisecond queries); ``--smoke``
only reports, a one-core CI container's numbers being what they are.

Standalone (it starts servers and thread fleets, not pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_tenancy.py --smoke \\
        --json BENCH_tenancy.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import HyperQ, ServerThread, TdClient  # noqa: E402
from repro.core.tenancy import TenancyConfig, TenantRegistry  # noqa: E402
from repro.core.workload import WorkloadConfig, WorkloadManager  # noqa: E402
from repro.errors import BackendError  # noqa: E402
from repro.workloads.sessions import SessionConfig, generate  # noqa: E402
from repro.workloads.tpch.schema import SCHEMA_DDL  # noqa: E402

TENANCY = {
    "tenants": {
        "storm": {"weight": 1.0, "max_concurrency": 1, "queue_depth": 2,
                  "rate": 100.0, "burst": 8},
        "dash": {"weight": 4.0},
    },
}

STORM_SQL = "SEL COUNT(*) FROM ORDERS CROSS JOIN NATION CROSS JOIN REGION"


def _percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _start_server(tenanted: bool):
    registry = TenantRegistry(TenancyConfig.from_dict(TENANCY)) \
        if tenanted else None
    manager = WorkloadManager(WorkloadConfig(workers=2), tenancy=registry)
    engine = HyperQ(workload=manager)
    boot = engine.create_session()
    for ddl in SCHEMA_DDL.values():
        boot.execute(ddl)
    thread = ServerThread(engine)
    host, port = thread.start()
    return thread, manager, host, port


def _dash_latencies(host, port, tenant, statements) -> list[float]:
    samples = []
    with TdClient(host, port, tenant=tenant) as client:
        for sql in statements:
            begin = time.monotonic()
            client.execute(sql)
            samples.append(time.monotonic() - begin)
    return samples


def _run_phase(tenanted: bool, storm_threads: int, statements) -> dict:
    """One server lifecycle: optional storm + the dash replay, measured."""
    thread, manager, host, port = _start_server(tenanted)
    dash = "dash" if tenanted else None
    storm = "storm" if tenanted else None
    try:
        # Warm translation paths so the first measured query is not an
        # outlier of parse/bind/transform work the steady state skips.
        with TdClient(host, port, tenant=dash) as warm:
            for sql in set(statements):
                warm.execute(sql)
            warm.execute(STORM_SQL)

        stop = threading.Event()
        counts = {"served": 0, "shed": 0}
        lock = threading.Lock()

        def flood():
            with TdClient(host, port, tenant=storm) as client:
                while not stop.is_set():
                    try:
                        client.execute(STORM_SQL)
                        with lock:
                            counts["served"] += 1
                    except BackendError:
                        with lock:
                            counts["shed"] += 1

        workers = [threading.Thread(target=flood)
                   for __ in range(storm_threads)]
        for worker in workers:
            worker.start()
        if workers:
            time.sleep(0.2)  # let the storm ramp before measuring
        try:
            samples = _dash_latencies(host, port, dash, statements)
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=30)
        return {
            "tenanted": tenanted,
            "storm_threads": storm_threads,
            "dash_p50_ms": round(_percentile(samples, 0.50) * 1e3, 3),
            "dash_p99_ms": round(_percentile(samples, 0.99) * 1e3, 3),
            "storm_served": counts["served"],
            "storm_sheds": counts["shed"],
        }
    finally:
        thread.stop()
        manager.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="shorter session, fewer storm threads, no "
                             "isolation assertion")
    parser.add_argument("--storm-threads", type=int, default=None)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the results as JSON to PATH")
    args = parser.parse_args(argv)

    storm_threads = args.storm_threads or (2 if args.smoke else 4)
    steps = 10 if args.smoke else 30
    statements = [event.sql for event in generate(SessionConfig(
        tenants=("dash",), sessions_per_tenant=1, steps_per_session=steps,
        seed=20260808))]

    print(f"tenancy isolation: {len(statements)} dashboard statements, "
          f"{storm_threads} storm threads, smoke={args.smoke}")
    solo = _run_phase(tenanted=True, storm_threads=0,
                      statements=statements)
    untenanted = _run_phase(tenanted=False, storm_threads=storm_threads,
                            statements=statements)
    tenanted = _run_phase(tenanted=True, storm_threads=storm_threads,
                          statements=statements)

    for label, phase in (("solo", solo), ("untenanted storm", untenanted),
                         ("tenanted storm", tenanted)):
        print(f"  {label}: dash p50 {phase['dash_p50_ms']}ms "
              f"p99 {phase['dash_p99_ms']}ms, storm served "
              f"{phase['storm_served']} shed {phase['storm_sheds']}")

    isolation = tenanted["dash_p99_ms"] / solo["dash_p99_ms"] \
        if solo["dash_p99_ms"] else float("inf")
    degradation = untenanted["dash_p99_ms"] / solo["dash_p99_ms"] \
        if solo["dash_p99_ms"] else float("inf")
    print(f"  isolation factor x{isolation:.2f} (tenanted p99 / solo p99); "
          f"untenanted degradation x{degradation:.2f}")

    report = {"smoke": args.smoke, "statements": len(statements),
              "solo": solo, "untenanted_storm": untenanted,
              "tenanted_storm": tenanted,
              "isolation_factor": round(isolation, 3),
              "untenanted_degradation": round(degradation, 3)}

    if not args.smoke:
        # The acceptance bar: within 2x of solo, with a small absolute
        # floor so a sub-millisecond baseline doesn't fail on timer noise.
        bound_ms = max(2.0 * solo["dash_p99_ms"],
                       solo["dash_p99_ms"] + 50.0)
        assert tenanted["dash_p99_ms"] <= bound_ms, (
            f"tenanted dash p99 {tenanted['dash_p99_ms']}ms exceeded "
            f"{bound_ms}ms (solo {solo['dash_p99_ms']}ms)")
        assert tenanted["storm_sheds"] > 0, \
            "the storm tenant was never shed — quotas did not engage"
        print("  <=2x isolation assertion: PASS")
    else:
        print("  <=2x isolation assertion: skipped (smoke)")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"  wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
