"""Observability tax: the request tracer on the warm-cache hot path.

ISSUE 5's acceptance bar: full request tracing — a span per pipeline stage,
metrics counters, the trace ring buffer — must cost at most 5% of end-to-end
latency on the warm-cache path, where the fixed per-request overhead is
largest relative to the work done. Two identical engines, tracing on vs.
off, run the same repeated statement in interleaved batches; the comparison
uses the minimum of the per-batch means, which strips scheduler noise that
a single long run folds in.
"""

import time

from conftest import emit

from repro.bench.reporting import format_table
from repro.core.engine import HyperQ

STATEMENT = "SEL N, V FROM HOT WHERE N > 10"
BATCHES = 12
BATCH_ROUNDS = 50
MAX_OVERHEAD = 0.05


def _session(tracing: bool):
    engine = HyperQ(tracing=tracing)
    session = engine.create_session()
    session.execute("CREATE TABLE HOT (N INTEGER, V VARCHAR(20))")
    session.execute("INSERT INTO HOT VALUES " +
                    ", ".join(f"({i}, 'v{i}')" for i in range(200)))
    return engine, session


def _batch_mean(session, rounds=BATCH_ROUNDS) -> float:
    start = time.perf_counter()
    for __ in range(rounds):
        result = session.execute(STATEMENT)
        __ = result.rows
        result.close()
    return (time.perf_counter() - start) / rounds


def _interleaved(traced_session, plain_session):
    traced, plain = [], []
    for __ in range(BATCHES):
        traced.append(_batch_mean(traced_session))
        plain.append(_batch_mean(plain_session))
    return min(traced), min(plain)


def test_trace_overhead_on_warm_cache_path(benchmark):
    traced_engine, traced_session = _session(tracing=True)
    __, plain_session = _session(tracing=False)
    for session in (traced_session, plain_session):  # warm the cache
        _batch_mean(session, rounds=20)

    traced, plain = benchmark.pedantic(
        _interleaved, args=(traced_session, plain_session),
        rounds=1, iterations=1)

    overhead = traced / plain - 1
    emit(format_table(
        ["path", "per-request latency", "overhead"],
        [
            ("tracing off", f"{plain * 1e6:8.1f} us", "—"),
            ("tracing on", f"{traced * 1e6:8.1f} us", f"{overhead:+.2%}"),
        ],
        title="Observability overhead — warm-cache hot path"))

    # The traced engine really did trace every request (no silent off-switch
    # making the comparison vacuous).
    metrics = traced_engine.tracing.metrics
    assert metrics.counter("hyperq_requests_total").value \
        >= BATCHES * BATCH_ROUNDS
    assert traced_engine.tracing.last_trace() is not None
    assert overhead <= MAX_OVERHEAD, \
        f"tracing adds {overhead:.2%}, above the {MAX_OVERHEAD:.0%} budget"
