"""Microbenchmarks: per-stage translation cost (parse / bind / transform /
serialize) for the paper's Example 2.

Figure 9a folds all four stages into "query translation"; this bench breaks
the ~0.5% down so the expensive stage is visible. All four must stay in the
sub-millisecond range for the Figure 9 overhead claim to hold at scale.
"""

import copy

import pytest

from repro.core.catalog import SessionCatalog, ShadowCatalog
from repro.frontend.teradata.binder import Binder
from repro.frontend.teradata.parser import TeradataParser
from repro.serializer import serializer_for
from repro.transform.capabilities import HYPERION
from repro.transform.engine import Transformer
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema

EXAMPLE_2 = """
    SEL * FROM SALES
    WHERE SALES_DATE > 1140101
      AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
    QUALIFY RANK(AMOUNT DESC) <= 10
"""


@pytest.fixture(scope="module")
def stack():
    shadow = ShadowCatalog()
    shadow.add_table(TableSchema("SALES", [
        ColumnSchema("PRODUCT_NAME", t.varchar(40)),
        ColumnSchema("STORE", t.INTEGER),
        ColumnSchema("AMOUNT", t.decimal(12, 2)),
        ColumnSchema("SALES_DATE", t.DATE),
    ]))
    shadow.add_table(TableSchema("SALES_HISTORY", [
        ColumnSchema("GROSS", t.decimal(12, 2)),
        ColumnSchema("NET", t.decimal(12, 2)),
    ]))
    catalog = SessionCatalog(shadow)
    parser = TeradataParser()
    binder = Binder(catalog)
    return parser, binder


def test_micro_parse(benchmark, stack):
    parser, __ = stack
    ast = benchmark(parser.parse_statement, EXAMPLE_2)
    assert ast is not None


def test_micro_bind(benchmark, stack):
    parser, binder = stack
    ast = parser.parse_statement(EXAMPLE_2)

    def bind():
        return binder.bind(copy.deepcopy(ast))

    statement = benchmark(bind)
    assert statement is not None


def test_micro_transform(benchmark, stack):
    parser, binder = stack
    bound = binder.bind(parser.parse_statement(EXAMPLE_2))
    transformer = Transformer(HYPERION)

    def transform():
        return transformer.transform(copy.deepcopy(bound))

    assert benchmark(transform) is not None


def test_micro_serialize(benchmark, stack):
    parser, binder = stack
    bound = binder.bind(parser.parse_statement(EXAMPLE_2))
    Transformer(HYPERION).transform(bound)
    serializer = serializer_for(HYPERION)

    sql = benchmark(serializer.serialize, bound)
    assert sql.startswith("SELECT")


def test_micro_full_translation(benchmark, stack):
    parser, binder = stack
    transformer = Transformer(HYPERION)
    serializer = serializer_for(HYPERION)

    def translate():
        bound = binder.bind(parser.parse_statement(EXAMPLE_2))
        transformer.transform(bound)
        return serializer.serialize(bound)

    sql = benchmark(translate)
    assert "EXISTS" in sql
