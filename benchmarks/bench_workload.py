"""Workload management under mixed load: interactive latency vs ETL cost.

An open-loop experiment in the spirit of the paper's Section 7.3 stress
argument: a burst of long ETL jobs lands at t=0 while short interactive
requests keep arriving on a fixed schedule, all contending for the same
bounded worker pool.

* *fifo* — a plain FIFO thread pool (the pre-workload-manager shape):
  interactive arrivals queue behind the entire ETL backlog.
* *managed* — the :class:`~repro.core.workload.WorkloadManager` with
  deficit-round-robin across classes: interactive (weight 8) overtakes the
  ETL backlog (weight 1) without hard-capping it.

Reported per mode: interactive p50/p99 latency (arrival to completion, so
queueing counts), ETL makespan, and shed counts. The acceptance bar:
managed interactive p99 at least 3x lower, ETL makespan degraded by at
most 20% (the DRR tax while interactive work trickles through).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import pytest

from conftest import emit

from repro.bench.reporting import format_table
from repro.core.workload import (
    ADMIN, ETL, INTERACTIVE, REPORTING,
    WorkloadClassConfig, WorkloadConfig, WorkloadDecision, WorkloadManager,
)

WORKERS = 4
ETL_JOBS = 24
ETL_SECONDS = 0.04
INTERACTIVE_JOBS = 40
INTERACTIVE_SECONDS = 0.001
INTERACTIVE_PERIOD = 0.01


def _config() -> WorkloadConfig:
    classes = {
        INTERACTIVE: WorkloadClassConfig(INTERACTIVE, weight=8.0,
                                         queue_depth=256),
        REPORTING: WorkloadClassConfig(REPORTING, weight=2.0),
        ETL: WorkloadClassConfig(ETL, weight=1.0, queue_depth=256,
                                 deadline=300.0),
        ADMIN: WorkloadClassConfig(ADMIN),
    }
    return WorkloadConfig(classes=classes, workers=WORKERS)


def _job(arrival: float, seconds: float) -> float:
    """Sleep for the job's service time; return arrival-to-completion."""
    time.sleep(seconds)
    return time.monotonic() - arrival


def _drive(submit, etl_jobs: int, interactive_jobs: int):
    """Open-loop load: the ETL burst at t=0, interactive on a fixed clock
    regardless of completions. Returns (interactive latencies, etl
    latencies, etl makespan)."""
    start = time.monotonic()
    etl_waits = [submit(ETL, start, ETL_SECONDS)
                 for __ in range(etl_jobs)]
    interactive_waits = []
    for index in range(interactive_jobs):
        arrival = start + index * INTERACTIVE_PERIOD
        now = time.monotonic()
        if arrival > now:
            time.sleep(arrival - now)
        interactive_waits.append(
            submit(INTERACTIVE, arrival, INTERACTIVE_SECONDS))
    interactive = [wait() for wait in interactive_waits]
    etl = [wait() for wait in etl_waits]
    makespan = time.monotonic() - start
    return interactive, etl, makespan


def _run_fifo(etl_jobs: int, interactive_jobs: int):
    pool = ThreadPoolExecutor(max_workers=WORKERS)
    try:
        def submit(__wl_class, arrival, seconds):
            future = pool.submit(_job, arrival, seconds)
            return future.result
        return _drive(submit, etl_jobs, interactive_jobs)
    finally:
        pool.shutdown(wait=True)


def _run_managed(manager: WorkloadManager, etl_jobs: int,
                 interactive_jobs: int):
    session = SimpleNamespace(catalog=SimpleNamespace(uid=1),
                              session_params={})

    def submit(wl_class, arrival, seconds):
        ticket = manager.submit(session, f"bench-{wl_class}",
                                lambda: _job(arrival, seconds),
                                WorkloadDecision(wl_class, "bench"))
        return lambda: manager.wait(ticket)
    return _drive(submit, etl_jobs, interactive_jobs)


def _percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _report(title, fifo, managed, sheds):
    rows = []
    for mode, (interactive, etl, makespan) in (("fifo", fifo),
                                               ("managed", managed)):
        rows.append((
            mode,
            f"{_percentile(interactive, 0.50) * 1e3:.1f}",
            f"{_percentile(interactive, 0.99) * 1e3:.1f}",
            f"{makespan * 1e3:.0f}",
            str(sheds if mode == "managed" else 0),
        ))
    emit(format_table(
        ["mode", "interactive p50 (ms)", "interactive p99 (ms)",
         "etl makespan (ms)", "sheds"],
        rows, title=title))


def _contrast(etl_jobs: int, interactive_jobs: int, title: str):
    fifo = _run_fifo(etl_jobs, interactive_jobs)
    manager = WorkloadManager(_config())
    try:
        managed = _run_managed(manager, etl_jobs, interactive_jobs)
        sheds = manager.stats.total("shed")
    finally:
        manager.close()
    _report(title, fifo, managed, sheds)
    return fifo, managed, sheds


def test_interactive_latency_with_and_without_manager():
    fifo, managed, sheds = _contrast(
        ETL_JOBS, INTERACTIVE_JOBS,
        f"Mixed open-loop load — {ETL_JOBS}x{ETL_SECONDS * 1e3:.0f}ms ETL "
        f"burst + {INTERACTIVE_JOBS} interactive arrivals every "
        f"{INTERACTIVE_PERIOD * 1e3:.0f}ms, {WORKERS} workers")
    fifo_p99 = _percentile(fifo[0], 0.99)
    managed_p99 = _percentile(managed[0], 0.99)
    # The tentpole's acceptance bar: interactive p99 at least 3x lower
    # under management, ETL throughput degraded at most 20%.
    assert managed_p99 * 3 <= fifo_p99, \
        f"managed p99 {managed_p99:.4f}s vs fifo {fifo_p99:.4f}s"
    assert managed[2] <= fifo[2] * 1.25, \
        f"ETL makespan {managed[2]:.3f}s vs fifo {fifo[2]:.3f}s"
    assert sheds == 0  # queues were provisioned for the whole burst
    assert len(managed[0]) == len(fifo[0]) == INTERACTIVE_JOBS


@pytest.mark.smoke
def test_smoke_managed_beats_fifo_on_small_burst():
    """CI guard: a quarter-size burst, a looser (2x) latency bar."""
    fifo, managed, sheds = _contrast(
        8, 12, "Mixed open-loop load (smoke) — 8 ETL + 12 interactive")
    assert _percentile(managed[0], 0.99) * 2 \
        <= _percentile(fifo[0], 0.99)
    assert managed[2] <= fifo[2] * 1.35
    assert sheds == 0
