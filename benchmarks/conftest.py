"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and prints
the reproduced rows/series (captured with ``pytest benchmarks/
--benchmark-only -s``). Scale factors are deliberately laptop-sized; the
*shape* of each result — who wins, by what factor — is what reproduces, not
the absolute numbers from the authors' 1TB/64-core testbed.
"""

import os

import pytest

#: TPC-H scale factor used by the overhead benchmarks (paper: 1TB ~ SF 1000).
TPCH_SCALE = float(os.environ.get("REPRO_TPCH_SCALE", "0.002"))


@pytest.fixture(scope="session")
def tpch_scale():
    return TPCH_SCALE


def emit(text: str) -> None:
    """Print a reproduced table/figure block."""
    print()
    print(text)
