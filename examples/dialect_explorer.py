"""Dialect explorer: see how one Teradata query serializes per cloud target.

Every modeled cloud archetype has its own Serializer plugin and capability
profile, so the same XTRA tree comes out as different SQL — and features the
target lacks are routed to rewrites or emulation. This is the paper's
"support a new backend by adding a serializer" claim made tangible. Run::

    python examples/dialect_explorer.py
"""

from repro import HyperQ
from repro.transform.capabilities import cloud_profiles
from repro.workloads.features import FEATURES, FeatureClass

_DEMO_QUERY = """
SEL STORE, SUM(AMOUNT) AS TOTAL
FROM SALES
WHERE SALES_DATE > DATE '2014-01-01' - 30
GROUP BY 1
QUALIFY RANK(TOTAL DESC) <= 5
ORDER BY 2 DESC
"""

def _register_schema(engine: HyperQ) -> None:
    """Register the demo table in the shadow catalog (translation needs the
    schema for binding, but no target execution is involved here)."""
    from repro.xtra import types as t
    from repro.xtra.schema import ColumnSchema, TableSchema

    engine.shadow.add_table(TableSchema("SALES", [
        ColumnSchema("STORE", t.INTEGER),
        ColumnSchema("AMOUNT", t.decimal(12, 2)),
        ColumnSchema("SALES_DATE", t.DATE),
    ]))


def main() -> None:
    targets = ["hyperion"] + [profile.name for profile in cloud_profiles()]
    for target in targets:
        engine = HyperQ(target=target)
        _register_schema(engine)
        session = engine.create_session()
        translation = session.translate(_DEMO_QUERY)
        print(f"== {target} " + "=" * (60 - len(target)))
        if translation.kind == "sql":
            print(translation.statements[0])
        else:
            print(f"(requires emulation: {translation.emulated_feature})")
        print()

    print("== tracked feature catalog (Table 2) " + "=" * 25)
    for cls in FeatureClass:
        names = [f.name for f in FEATURES if f.feature_class is cls]
        print(f"{cls.value:15s}: {', '.join(names)}")


if __name__ == "__main__":
    main()
