"""Disaster-recovery use case (paper Appendix B.2).

One unchanged application, two database stacks: the same Teradata-dialect
statements are fanned out to a primary and a stand-by warehouse through two
Hyper-Q engines. When the primary "fails", the application keeps running
against the stand-by — no second application codebase, exactly the scenario
the paper describes. Run with::

    python examples/disaster_recovery.py
"""

import repro


class MirroredStack:
    """Routes application requests to the primary, mirrors writes to the
    stand-by, and fails over transparently."""

    def __init__(self):
        self.primary = repro.virtualize()
        self.standby = repro.virtualize()
        self._primary_session = self.primary.create_session()
        self._standby_session = self.standby.create_session()
        self.failed_over = False

    def execute(self, sql: str):
        standby_result = self._standby_session.execute(sql)
        if self.failed_over:
            return standby_result
        return self._primary_session.execute(sql)

    def query(self, sql: str):
        session = (self._standby_session if self.failed_over
                   else self._primary_session)
        return session.execute(sql)

    def failover(self) -> None:
        self.failed_over = True


def main() -> None:
    stack = MirroredStack()

    stack.execute("CREATE MULTISET TABLE ACCOUNTS "
                  "(ID INTEGER NOT NULL, OWNER VARCHAR(30), BAL DECIMAL(12,2))")
    stack.execute("INSERT INTO ACCOUNTS VALUES "
                  "(1, 'ada', 1200.00), (2, 'grace', 300.00), (3, 'alan', 910.00)")
    stack.execute("UPD ACCOUNTS SET BAL = BAL + 50 WHERE ID = 2")

    report = "SEL OWNER, BAL FROM ACCOUNTS QUALIFY RANK(BAL DESC) <= 2"
    print("report from primary: ", stack.query(report).rows)

    print("... primary goes down; failing over to the stand-by stack ...")
    stack.failover()

    print("report from stand-by:", stack.query(report).rows)
    stack.execute("INSERT INTO ACCOUNTS VALUES (4, 'edsger', 2000.00)")
    print("after failover write:", stack.query(report).rows)


if __name__ == "__main__":
    main()
