"""Quickstart: run Teradata SQL against a completely different warehouse.

Creates a Hyper-Q engine in front of the bundled in-memory cloud data
warehouse, then executes queries full of Teradata-only constructs — SEL,
QUALIFY, named expressions, date/integer comparisons — that the target could
never parse natively. Run with::

    python examples/quickstart.py
"""

import repro

def main() -> None:
    hyperq = repro.virtualize()
    session = hyperq.create_session()

    # DDL in the source dialect: MULTISET / PRIMARY INDEX are Teradata-isms
    # the serializer strips for the target.
    session.execute("""
        CREATE MULTISET TABLE SALES (
            PRODUCT_NAME VARCHAR(40) NOT NULL,
            STORE INTEGER,
            AMOUNT DECIMAL(12,2),
            SALES_DATE DATE
        ) PRIMARY INDEX (STORE)
    """)

    session.execute("""
        INSERT INTO SALES VALUES
            ('keyboard', 1, 120.00, DATE '2014-02-01'),
            ('mouse',    1,  40.00, DATE '2014-03-15'),
            ('monitor',  2, 310.00, DATE '2013-11-02'),
            ('desk',     2, 260.00, DATE '2014-06-21'),
            ('lamp',     3,  35.00, DATE '2014-01-05')
    """)

    # The paper's Example 1 flavour: SEL shortcut, named expression reuse,
    # QUALIFY over a windowed aggregate, non-standard clause order.
    result = session.execute("""
        SEL PRODUCT_NAME,
            AMOUNT AS SALES_BASE,
            SALES_BASE + 100 AS SALES_OFFSET
        FROM SALES
        QUALIFY 10 < SUM(AMOUNT) OVER (PARTITION BY STORE)
        ORDER BY STORE, PRODUCT_NAME
        WHERE CHARS(PRODUCT_NAME) > 4
    """)
    print("translated to:", result.target_sql[0][:120], "...")
    print()
    print("rows:")
    for row in result.rows:
        print("   ", row)

    # Teradata internal DATE encoding: 1140101 means 2014-01-01.
    result = session.execute(
        "SEL PRODUCT_NAME FROM SALES WHERE SALES_DATE > 1140101 "
        "QUALIFY RANK(AMOUNT DESC) <= 2")
    print()
    print("top-2 sales in 2014+:", [row[0] for row in result.rows])


if __name__ == "__main__":
    main()
