"""The paper's Example 4: recursive query emulation, step by step.

The EMP relation holds the hierarchical employee/manager sample data of
Figure 7. The target warehouse has no WITH RECURSIVE, so Hyper-Q drives the
fixpoint itself through WorkTable/TempTable temporary tables — this script
prints every SQL request Hyper-Q actually sent to the target so the
Section 6 walk-through is visible. Run with::

    python examples/recursive_reports.py
"""

import repro


def main() -> None:
    hyperq = repro.virtualize()
    session = hyperq.create_session()

    session.execute("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)")
    # Figure 7 sample data: {(e1,e7), (e7,e8), (e8,e10), (e9,e10), (e10,e11)}
    session.execute("""
        INSERT INTO EMP VALUES (1, 7), (7, 8), (8, 10), (9, 10), (10, 11)
    """)

    result = session.execute("""
        WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
            SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
            UNION ALL
            SELECT EMP.EMPNO, EMP.MGRNO
            FROM EMP, REPORTS
            WHERE REPORTS.EMPNO = EMP.MGRNO
        )
        SELECT EMPNO FROM REPORTS ORDER BY EMPNO
    """)

    print("everyone reporting (directly or indirectly) to e10:")
    print("  ", [row[0] for row in result.rows])
    print()
    print(f"the one source request became {len(result.target_sql)} target "
          "requests:")
    for index, sql in enumerate(result.target_sql, start=1):
        print(f"  {index:2d}. {sql[:110]}")


if __name__ == "__main__":
    main()
