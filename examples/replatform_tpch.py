"""Re-platforming demo: an unchanged BI application runs TPC-H over the wire.

Recreates Figure 1(b): a bteq-like client speaks the Teradata wire protocol
to Hyper-Q, which translates each query, executes it on the in-memory cloud
warehouse, converts the binary results back, and reports the Figure 9-style
overhead split at the end. Run with::

    python examples/replatform_tpch.py [scale]
"""

import sys
import time

from repro import HyperQ, ServerThread, TdClient
from repro.bench.harness import prepare_tpch_engine
from repro.bench.reporting import format_table, percent
from repro.workloads.tpch import queries


def main(scale: float = 0.001) -> None:
    print(f"Preparing TPC-H at scale factor {scale} ...")
    engine = prepare_tpch_engine(scale=scale)

    rows = []
    with ServerThread(engine) as (host, port):
        with TdClient(host, port, user="bi_app") as client:
            for number in range(1, 23):
                started = time.perf_counter()
                result = client.execute(queries.query(number))
                elapsed = time.perf_counter() - started
                rows.append((f"Q{number}", result.rowcount,
                             f"{elapsed * 1000:.1f} ms"))

    print(format_table(["query", "rows", "end-to-end"], rows,
                       title="TPC-H through the wire protocol"))
    log = engine.timing_log
    split = log.breakdown()
    print()
    print("Hyper-Q overhead (Figure 9a):")
    print(f"  query translation     {percent(split['translation'], 2)}")
    print(f"  execution             {percent(split['execution'], 2)}")
    print(f"  result transformation {percent(split['result_conversion'], 2)}")
    print(f"  total overhead        {percent(log.overhead_fraction, 2)}"
          f"  (paper: below 2%)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.001)
