"""Scale-out use case (paper Appendix B.3, implemented future work).

A customer whose throughput exceeds the largest available instance keeps
multiple warehouse replicas and lets the virtualization layer balance
queries across them — "without sacrificing consistency, and without
requiring changes to the application logic." Run with::

    python examples/scale_out.py
"""

from repro.core.scaleout import ScaledHyperQ


def main() -> None:
    fleet = ScaledHyperQ(replicas=3)
    session = fleet.create_session()

    # Writes fan out to every replica; the application sees one database.
    session.execute("CREATE MULTISET TABLE EVENTS "
                    "(ID INTEGER, KIND VARCHAR(10), AMOUNT DECIMAL(10,2))")
    session.execute("INSERT INTO EVENTS VALUES "
                    "(1, 'click', 0.01), (2, 'buy', 19.99), (3, 'click', 0.01), "
                    "(4, 'buy', 5.00), (5, 'refund', -5.00)")

    # Reads rotate across replicas (round robin by default).
    for query_number in range(6):
        result = session.execute(
            "SEL KIND, SUM(AMOUNT) FROM EVENTS GROUP BY 1 ORDER BY 2 DESC")
        top_kind = result.rows[0][0]
        print(f"report {query_number}: top revenue kind = {top_kind!r}")

    print()
    print("reads served per replica:", fleet.reads_per_replica)

    # Consistency check: a write after reads is visible everywhere.
    session.execute("UPD EVENTS SET AMOUNT = AMOUNT * 2 WHERE KIND = 'buy'")
    totals = {
        engine_index: fleet.engines[engine_index].create_session().execute(
            "SEL SUM(AMOUNT) FROM EVENTS").rows[0][0]
        for engine_index in range(fleet.replica_count)
    }
    print("per-replica totals after write:", totals)
    assert len(set(totals.values())) == 1, "replicas diverged!"


if __name__ == "__main__":
    main()
