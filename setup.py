"""Setup shim for environments without the `wheel` package (offline CI).

`pip install -e .` requires bdist_wheel with this setuptools; `python
setup.py develop` provides an equivalent editable install without it.
"""
from setuptools import setup

setup()
