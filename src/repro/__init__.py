"""repro — a reproduction of Datometry Hyper-Q (SIGMOD 2018).

Adaptive Data Virtualization: run unmodified Teradata-dialect applications
against a different data warehouse by intercepting the wire protocol and
translating queries and results on the fly.

Quickstart::

    import repro

    hq = repro.virtualize()                # engine + in-memory cloud target
    session = hq.create_session()
    session.execute("CREATE TABLE T (A INTEGER, B VARCHAR(10))")
    session.execute("INS T (1, 'x')")      # Teradata shortcut syntax
    result = session.execute("SEL A FROM T QUALIFY RANK(A DESC) <= 1")
    print(result.rows)

Or over the wire, exactly like an unchanged application would::

    from repro import HyperQ, ServerThread, TdClient

    with ServerThread(HyperQ()) as (host, port):
        with TdClient(host, port) as client:
            client.execute("SEL * FROM T")
"""

from repro.backend.engine import Database
from repro.core.engine import (
    HQResult,
    HyperQ,
    HyperQSession,
    TranslationResult,
)
from repro.core.gateway import Gateway, GatewayConfig
from repro.core.tenancy import TenancyConfig, TenantRegistry
from repro.core.tracker import FeatureTracker
from repro.core.timing import RequestTiming, TimingLog
from repro.core.workload import WorkloadConfig, WorkloadManager
from repro.protocol.aio_server import AioHyperQServer, AioServerThread
from repro.protocol.client import TdClient
from repro.protocol.server import HyperQServer, ServerThread
from repro.transform.capabilities import PROFILES, CapabilityProfile

__version__ = "1.0.0"

__all__ = [
    "Database",
    "HyperQ",
    "HyperQSession",
    "HQResult",
    "TranslationResult",
    "FeatureTracker",
    "RequestTiming",
    "TimingLog",
    "TdClient",
    "HyperQServer",
    "ServerThread",
    "AioHyperQServer",
    "AioServerThread",
    "Gateway",
    "GatewayConfig",
    "CapabilityProfile",
    "PROFILES",
    "WorkloadConfig",
    "WorkloadManager",
    "TenancyConfig",
    "TenantRegistry",
    "virtualize",
]


def virtualize(target: str = "hyperion",
               tracker: FeatureTracker | None = None,
               converter_parallelism: int = 1,
               cache_size: int = 32 * 1024 * 1024) -> HyperQ:
    """Create a Hyper-Q engine virtualizing Teradata onto *target*.

    ``target`` names a capability profile from
    :data:`repro.transform.capabilities.PROFILES`; ``hyperion`` is the
    bundled executing in-memory cloud data warehouse. ``cache_size`` caps
    the shared translation cache in bytes (0 disables it).
    """
    return HyperQ(target=target, tracker=tracker,
                  converter_parallelism=converter_parallelism,
                  cache_size=cache_size)
