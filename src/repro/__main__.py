"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``shell``  — interactive Teradata-dialect SQL shell against a fresh
  in-memory target (a single-user bteq).
* ``run``    — execute a ';'-separated SQL script file through the pipeline.
* ``serve``  — start the wire-protocol server so real client processes
  (``repro.TdClient``, `examples/replatform_tpch.py`) can connect.
* ``tpch``   — load TPC-H at a given scale and run the 22 queries, printing
  the Figure 9a overhead split.
"""

from __future__ import annotations

import argparse
import sys

from repro import HyperQ, ServerThread
from repro.errors import HyperQError


def _print_result(result) -> None:
    if result.kind == "rows":
        print("\t".join(result.columns))
        for row in result.rows:
            print("\t".join("NULL" if value is None else str(value)
                            for value in row))
        print(f"({result.rowcount} rows)")
    elif result.kind == "count":
        print(f"({result.rowcount} rows affected)")
    else:
        print("ok")


def cmd_shell(args: argparse.Namespace) -> int:
    engine = HyperQ(target=args.target, source=args.source)
    session = engine.create_session()
    print(f"repro shell — source={args.source}, target={args.target}; "
          "end statements with ';', exit with \\q")
    buffer: list[str] = []
    while True:
        try:
            prompt = "sql> " if not buffer else "...> "
            line = input(prompt)
        except EOFError:
            print()
            return 0
        if line.strip() in ("\\q", "exit", "quit"):
            return 0
        buffer.append(line)
        if not line.rstrip().endswith(";"):
            continue
        text = "\n".join(buffer)
        buffer = []
        try:
            for result in session.execute_script(text):
                _print_result(result)
        except HyperQError as error:
            print(f"error: {error}")


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core.trace import render_trace

    engine = HyperQ(target=args.target, source=args.source,
                    dml_batching=args.batch_dml)
    session = engine.create_session()
    with open(args.script, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        for result in session.execute_script(text):
            _print_result(result)
    except HyperQError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if args.trace:
            hub = engine.tracing
            for trace_id in hub.trace_ids():
                trace = hub.get_trace(trace_id)
                if trace is not None:
                    print("\n".join(render_trace(trace)), file=sys.stderr)
    if args.metrics:
        print(engine.tracing.render_metrics(), file=sys.stderr)
    return 0


def _tenancy_config(args: argparse.Namespace):
    """The multi-tenant control-plane config from ``--tenants`` (inline
    JSON or ``@path``) or ``HQ_TENANCY_CONFIG``; None when unset."""
    from repro.core.tenancy import TenancyConfig

    if args.tenants:
        return TenancyConfig.parse(args.tenants)
    return TenancyConfig.from_env()


def cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    if args.workers > 1:
        return _serve_gateway(args)
    tenancy = _tenancy_config(args)
    registry = None
    if tenancy is not None:
        from repro.core.tenancy import TenantRegistry

        registry = TenantRegistry(tenancy)
    workload = None
    if args.workload or tenancy is not None \
            or os.environ.get("HQ_WORKLOAD_CONFIG"):
        from repro.core.workload import WorkloadConfig, WorkloadManager

        workload = WorkloadManager(WorkloadConfig.from_env(),
                                   tenancy=registry)
    engine = HyperQ(target=args.target, source=args.source, workload=workload,
                    tracing=not args.no_trace, trace_ring=args.trace_ring,
                    trace_log=args.trace_log,
                    slow_query_log=args.slow_query_log,
                    result_cache_bytes=args.result_cache_bytes,
                    tenancy=registry)
    if args.wire == "async":
        from repro.protocol.aio_server import AioServerThread

        thread = AioServerThread(engine, host=args.host, port=args.port,
                                 max_connections=args.max_connections)
    else:
        thread = ServerThread(engine, host=args.host, port=args.port,
                              max_connections=args.max_connections)
    host, port = thread.start()
    managed = "on" if workload is not None else "off"
    traced = "off" if args.no_trace else "on"
    tenanted = (f"{len(registry.tenant_names)} tenants"
                if registry is not None else "tenancy off")
    print(f"Hyper-Q listening on {host}:{port} "
          f"(wire={args.wire}, source={args.source}, target={args.target}, "
          f"workload management {managed}, tracing {traced}, {tenanted}) "
          "— Ctrl-C to stop, SIGTERM to drain")
    done = threading.Event()
    # SIGTERM drains: in-flight requests finish, idle connections close,
    # then the server stops — no reply is ever cut mid-stream.
    signal.signal(signal.SIGTERM, lambda signum, frame: done.set())
    try:
        done.wait()
        thread.server.begin_drain()
        deadline = args.drain_deadline
        import time as time_mod

        until = time_mod.monotonic() + deadline
        while not thread.server.drained() \
                and time_mod.monotonic() < until:
            time_mod.sleep(0.05)
    except KeyboardInterrupt:
        pass
    finally:
        thread.stop()
    return 0


def _serve_gateway(args: argparse.Namespace) -> int:
    """``serve --workers N``: the multi-process sharded gateway — one
    acceptor process routing sessions to N engine workers, a shared
    translation-cache tier, and fleet-wide SHOW HYPERQ aggregation."""
    import os
    import signal
    import threading

    from repro.core.gateway import Gateway, GatewayConfig

    tenancy = _tenancy_config(args)
    workload = None
    if args.workload or tenancy is not None \
            or os.environ.get("HQ_WORKLOAD_CONFIG"):
        from repro.core.workload import WorkloadConfig

        workload = WorkloadConfig.from_env()
    setup_sql = ""
    if args.setup_script:
        with open(args.setup_script, "r", encoding="utf-8") as handle:
            setup_sql = handle.read()
    gateway = Gateway(GatewayConfig(
        workers=args.workers, host=args.host, port=args.port,
        target=args.target, source=args.source, setup_sql=setup_sql,
        max_connections=args.max_connections, workload=workload,
        tenancy=tenancy, tracing=not args.no_trace,
        result_cache_bytes=args.result_cache_bytes,
        engine_options={"trace_ring": args.trace_ring},
        wire=args.wire))
    host, port = gateway.start()
    managed = "on" if workload is not None else "off"
    traced = "off" if args.no_trace else "on"
    tenanted = (f"{len(tenancy.tenants)} tenants" if tenancy is not None
                else "tenancy off")
    print(f"Hyper-Q gateway listening on {host}:{port} "
          f"({args.workers} workers, wire={args.wire}, source={args.source}, "
          f"target={args.target}, workload management {managed}, "
          f"tracing {traced}, {tenanted}) — Ctrl-C to stop, "
          "SIGTERM to drain")
    done = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: done.set())
    drained = False
    try:
        done.wait()
        # Graceful fleet drain: every worker finishes its in-flight
        # requests (deadline, then SIGKILL) before the supervisor exits.
        outcomes = gateway.drain(deadline=args.drain_deadline)
        drained = True
        print(f"gateway drained: {outcomes}")
    except KeyboardInterrupt:
        pass
    finally:
        if not drained:
            gateway.stop()
    return 0


def cmd_tpch(args: argparse.Namespace) -> int:
    from repro.bench.harness import prepare_tpch_engine, run_tpch_sequential
    from repro.bench.reporting import percent

    print(f"loading TPC-H at scale {args.scale} ...")
    engine = prepare_tpch_engine(scale=args.scale)
    log = run_tpch_sequential(engine)
    split = log.breakdown()
    print(f"22 queries in {log.total:.2f}s")
    print(f"  query translation     {percent(split['translation'], 2)}")
    print(f"  execution             {percent(split['execution'], 2)}")
    print(f"  result transformation {percent(split['result_conversion'], 2)}")
    print(f"  cache lookup + probe  {percent(split['cache_lookup'], 2)}")
    print(f"  total overhead        {percent(log.overhead_fraction, 2)} "
          "(paper: < 2%)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Hyper-Q reproduction CLI")
    parser.add_argument("--target", default="hyperion",
                        help="target capability profile (default: hyperion)")
    parser.add_argument("--source", default="teradata",
                        choices=["teradata", "ansi"],
                        help="source dialect the frontend speaks")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("shell", help="interactive SQL shell")

    run_cmd = commands.add_parser("run", help="execute a SQL script file")
    run_cmd.add_argument("script")
    run_cmd.add_argument("--batch-dml", action="store_true",
                         help="merge contiguous single-row inserts")
    run_cmd.add_argument("--trace", action="store_true",
                         help="print each statement's span tree to stderr")
    run_cmd.add_argument("--metrics", action="store_true",
                         help="print the metrics dump to stderr at the end")

    serve_cmd = commands.add_parser("serve", help="start the wire server")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=10250)
    serve_cmd.add_argument("--max-connections", type=int, default=64,
                           help="bound on concurrently served connections "
                                "(fleet-wide with --workers)")
    serve_cmd.add_argument("--wire", choices=("threaded", "async"),
                           default="threaded",
                           help="wire path: one thread per connection, or "
                                "all sessions multiplexed on one asyncio "
                                "event loop per worker (default: threaded)")
    serve_cmd.add_argument("--workers", type=int, default=1,
                           help="worker processes; >1 starts the sharded "
                                "gateway (process-per-core engines behind "
                                "one acceptor, shared translation-cache "
                                "tier, fleet-wide SHOW HYPERQ METRICS)")
    serve_cmd.add_argument("--setup-script", default=None, metavar="PATH",
                           help="SQL script each gateway worker runs at "
                                "boot (DDL/data for its backend)")
    serve_cmd.add_argument("--workload", action="store_true",
                           help="enable the workload manager (classification"
                                ", admission control, fair scheduling); "
                                "configure via HQ_WORKLOAD_CONFIG")
    serve_cmd.add_argument("--tenants", default=None, metavar="CONFIG",
                           help="enable the multi-tenant control plane: "
                                "inline JSON or @path to a config file "
                                "({\"tenants\": {name: {weight, rate, "
                                "max_concurrency, ...}}}); implies the "
                                "workload manager; also read from "
                                "HQ_TENANCY_CONFIG")
    serve_cmd.add_argument("--drain-deadline", type=float, default=10.0,
                           metavar="SECONDS",
                           help="on SIGTERM, seconds each gateway worker "
                                "gets to finish in-flight requests before "
                                "SIGKILL (default: 10)")
    serve_cmd.add_argument("--result-cache-bytes", type=int, default=0,
                           metavar="N",
                           help="semantic result cache budget in bytes "
                                "(0 disables; hits replay stored result "
                                "batches with zero backend calls, "
                                "invalidated per table on DML)")
    serve_cmd.add_argument("--no-trace", action="store_true",
                           help="disable request-scoped tracing (metrics "
                                "and SHOW HYPERQ commands return empty)")
    serve_cmd.add_argument("--trace-ring", type=int, default=256,
                           help="finished traces kept in memory for "
                                "SHOW HYPERQ TRACE <id> (default: 256)")
    serve_cmd.add_argument("--trace-log", default=None, metavar="PATH",
                           help="append every finished trace to PATH as "
                                "JSONL (one trace per line)")
    serve_cmd.add_argument("--slow-query-log", default=None, metavar="PATH",
                           help="append requests exceeding their workload "
                                "class's latency threshold to PATH as JSONL")

    tpch_cmd = commands.add_parser("tpch", help="load + run TPC-H")
    tpch_cmd.add_argument("--scale", type=float, default=0.001)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"shell": cmd_shell, "run": cmd_run, "serve": cmd_serve,
                "tpch": cmd_tpch}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
