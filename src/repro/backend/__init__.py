"""The cloud data warehouse substrate.

An executing in-memory SQL database with its own ANSI parser, planner and
executor. It stands in for the commercial cloud targets of the paper: it
deliberately lacks the Teradata-only surface (QUALIFY, vector subqueries,
implicit joins, macros, ...) so that every Hyper-Q rewrite and emulation is
exercised for real, end to end.
"""

from repro.backend.engine import Database, BackendSession, QueryResult

__all__ = ["Database", "BackendSession", "QueryResult"]
