"""Backend catalog: tables, views, and session-temporary namespaces."""

from __future__ import annotations

from typing import Optional

from repro.errors import CatalogError
from repro.backend.storage import Table
from repro.xtra.schema import TableSchema


class Catalog:
    """Name -> object mapping with an optional per-session temp overlay.

    Temporary tables shadow permanent ones of the same name, mirroring how
    the paper's emulation layer creates WorkTable/TempTable scratch objects
    without disturbing user schemas.
    """

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._views: dict[str, TableSchema] = {}

    # -- tables --------------------------------------------------------------

    def create_table(self, schema: TableSchema, if_not_exists: bool = False) -> Table:
        name = schema.name.upper()
        if name in self._tables or name in self._views:
            if if_not_exists:
                return self._tables[name]
            raise CatalogError(f"object {name} already exists")
        table = Table(schema)
        self._tables[name] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        key = name.upper()
        if key not in self._tables:
            if if_exists:
                return False
            raise CatalogError(f"table {name} does not exist")
        del self._tables[key]
        return True

    def table(self, name: str) -> Table:
        key = name.upper()
        table = self._tables.get(key)
        if table is None:
            raise CatalogError(f"table {name} does not exist")
        return table

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- views ----------------------------------------------------------------

    def create_view(self, schema: TableSchema, replace: bool = False) -> None:
        name = schema.name.upper()
        if name in self._tables:
            raise CatalogError(f"object {name} already exists as a table")
        if name in self._views and not replace:
            raise CatalogError(f"view {name} already exists")
        self._views[name] = schema

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        key = name.upper()
        if key not in self._views:
            if if_exists:
                return False
            raise CatalogError(f"view {name} does not exist")
        del self._views[key]
        return True

    def view(self, name: str) -> Optional[TableSchema]:
        return self._views.get(name.upper())

    def has_view(self, name: str) -> bool:
        return name.upper() in self._views

    def view_names(self) -> list[str]:
        return sorted(self._views)

    def resolve(self, name: str) -> TableSchema:
        """Resolve a name to table or view schema (tables win)."""
        key = name.upper()
        if key in self._tables:
            return self._tables[key].schema
        if key in self._views:
            return self._views[key]
        raise CatalogError(f"object {name} does not exist")
