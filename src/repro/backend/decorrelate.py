"""Subquery decorrelation for the backend executor.

Naive correlated-subquery evaluation re-executes the inner plan per outer
row — O(outer x inner). Real engines unnest; this module implements the two
rewrites analytical workloads live on:

* **EXISTS / NOT EXISTS** with conjunctive equality correlation becomes a
  hash **semi/anti join**: the inner side is evaluated once, keyed by the
  correlated columns, and each outer row probes the hash set.
* **Scalar aggregate** subqueries (``= (SELECT MIN(x) ... WHERE inner.k =
  outer.k)``) become a **group-by**: the global aggregate is re-grouped by
  the correlation keys and outer rows probe the per-key aggregate, with the
  empty-input aggregate value (NULL, or 0 for COUNT) served on misses.

Anything that doesn't match the shape falls back to per-row evaluation, so
the rewrite is purely an optimization with identical semantics.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.backend import functions as fl
from repro.backend.expressions import Env, EvalContext, UnresolvedColumnError
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra.relational import OutputColumn, RelNode
from repro.xtra.scalars import ScalarExpr
from repro.xtra.visitor import walk_scalars


def _resolves_fully(expr: ScalarExpr, env: Env) -> bool:
    """True if every column reference (outside nested subqueries) resolves in
    *env* and the expression contains no nested subquery."""
    for node in walk_scalars(expr):
        if isinstance(node, s.SubqueryExpr):
            return False
        if isinstance(node, s.ColumnRef):
            try:
                if env.try_resolve(node.name, node.table) is None:
                    return False
            except Exception:
                return False
    return True


def _has_column_refs(expr: ScalarExpr) -> bool:
    return any(isinstance(node, s.ColumnRef) for node in walk_scalars(expr))


def _contains_subquery(expr: ScalarExpr) -> bool:
    return any(isinstance(node, s.SubqueryExpr) for node in walk_scalars(expr))


def _conjuncts(expr: ScalarExpr) -> list[ScalarExpr]:
    if isinstance(expr, s.BoolOp) and expr.op is s.BoolOpKind.AND:
        out: list[ScalarExpr] = []
        for arg in expr.args:
            out.extend(_conjuncts(arg))
        return out
    return [expr]


class SubqueryIndex:
    """A decorrelated subquery: evaluate-once inner side + per-row probe."""

    def __init__(self, probe: Callable[[EvalContext], object]):
        self.probe = probe


def build_index(executor, subq: s.SubqueryExpr) -> Optional[SubqueryIndex]:
    """Try to decorrelate *subq*; returns None when the shape doesn't fit."""
    if subq.kind not in (s.SubqueryKind.EXISTS, s.SubqueryKind.SCALAR):
        return None
    plan = subq.plan
    projection: Optional[r.Project] = None
    node: RelNode = plan
    if isinstance(node, r.Project):
        projection = node
        node = node.child
    aggregate: Optional[r.Aggregate] = None
    if isinstance(node, r.Aggregate) and not node.group_by \
            and node.kind is r.GroupingKind.SIMPLE:
        aggregate = node
        node = node.child
    if not isinstance(node, r.Filter):
        return None
    predicate = node.predicate
    source = node.child
    if any(isinstance(n, r.CTERef) for n in _walk(source)):
        return None  # CTE contents change across recursion rounds

    try:
        inner_env = Env(source.output_columns())
    except Exception:
        return None

    pairs: list[tuple[ScalarExpr, ScalarExpr]] = []  # (inner, outer)
    residual: list[ScalarExpr] = []
    correlated_residual: list[ScalarExpr] = []
    for conjunct in _conjuncts(predicate):
        if isinstance(conjunct, s.Comp) and conjunct.op is s.CompOp.EQ:
            left_in = _resolves_fully(conjunct.left, inner_env)
            right_in = _resolves_fully(conjunct.right, inner_env)
            if left_in and not right_in and _has_column_refs(conjunct.right):
                pairs.append((conjunct.left, conjunct.right))
                continue
            if right_in and not left_in and _has_column_refs(conjunct.left):
                pairs.append((conjunct.right, conjunct.left))
                continue
        if _resolves_fully(conjunct, inner_env):
            residual.append(conjunct)
            continue
        if _contains_subquery(conjunct):
            return None
        # Mixed inner/outer predicate: checked per bucket row at probe time
        # (EXISTS only; the scalar-aggregate path needs clean grouping).
        correlated_residual.append(conjunct)
    if not pairs:
        return None
    if correlated_residual and subq.kind is not s.SubqueryKind.EXISTS:
        return None

    filtered: RelNode = source
    residual_pred = s.conjoin(residual)
    if residual_pred is not None:
        filtered = r.Filter(source, residual_pred)

    key_names = [f"_K{i}" for i in range(len(pairs))]
    inner_exprs = [inner for inner, __ in pairs]
    outer_exprs = [outer for __, outer in pairs]

    if subq.kind is s.SubqueryKind.EXISTS and aggregate is None:
        negated = subq.negated
        if not correlated_residual:
            keyed = r.Project(filtered, list(inner_exprs), key_names)
            try:
                __, rows = executor.run(keyed, None)
            except UnresolvedColumnError:
                return None
            key_set = {_key(row) for row in rows if None not in row}

            def probe_exists(ctx: EvalContext) -> object:
                key = _key(tuple(executor.evaluator.eval(expr, ctx)
                                 for expr in outer_exprs))
                hit = None not in key and key in key_set
                return (not hit) if negated else hit

            return SubqueryIndex(probe_exists)

        # Residual correlation: bucket full inner rows by key, evaluate the
        # residual per candidate against the outer context (semi join with
        # residual predicate).
        try:
            inner_cols, inner_rows = executor.run(filtered, None)
        except UnresolvedColumnError:
            return None
        bucket_env = Env(inner_cols)
        key_row_env = Env(inner_cols)
        buckets: dict[tuple, list[tuple]] = {}
        for row in inner_rows:
            ctx0 = EvalContext(row, key_row_env, None)
            key = _key(tuple(executor.evaluator.eval(expr, ctx0)
                             for expr in inner_exprs))
            if None in key:
                continue
            buckets.setdefault(key, []).append(row)
        residual_pred2 = s.conjoin(list(correlated_residual))

        def probe_exists_residual(ctx: EvalContext) -> object:
            key = _key(tuple(executor.evaluator.eval(expr, ctx)
                             for expr in outer_exprs))
            hit = False
            if None not in key:
                for row in buckets.get(key, ()):
                    inner_ctx = EvalContext(row, bucket_env, ctx)
                    if executor.evaluator.eval_bool(residual_pred2, inner_ctx):
                        hit = True
                        break
            return (not hit) if negated else hit

        return SubqueryIndex(probe_exists_residual)

    if subq.kind is s.SubqueryKind.SCALAR and aggregate is not None \
            and projection is not None:
        if len(projection.exprs) != 1:
            return None
        grouped = r.Aggregate(filtered, list(inner_exprs), key_names,
                              aggregate.aggs, aggregate.agg_names)
        try:
            columns, rows = executor.run(grouped, None)
        except UnresolvedColumnError:
            return None
        out_env = Env(columns)
        table: dict[tuple, object] = {}
        for row in rows:
            key = _key(row[:len(pairs)])
            if None in key:
                continue
            ctx = EvalContext(row, out_env, None)
            table[key] = executor.evaluator.eval(projection.exprs[0], ctx)
        # Aggregate-over-empty-input default (NULL, or 0 for COUNT).
        defaults = tuple([None] * len(pairs) + [
            fl.make_accumulator(agg.name, agg.distinct, agg.star).result()
            for agg in aggregate.aggs
        ])
        default_ctx = EvalContext(defaults, out_env, None)
        default_value = executor.evaluator.eval(projection.exprs[0], default_ctx)

        def probe_scalar(ctx: EvalContext) -> object:
            key = _key(tuple(executor.evaluator.eval(expr, ctx)
                             for expr in outer_exprs))
            if None in key:
                return default_value
            return table.get(key, default_value)

        return SubqueryIndex(probe_scalar)

    return None


def collect_subqueries(expr: ScalarExpr) -> list[s.SubqueryExpr]:
    """Subquery nodes of a predicate (without descending into their plans)."""
    return [node for node in walk_scalars(expr)
            if isinstance(node, s.SubqueryExpr)]


def _walk(node: RelNode):
    yield node
    for child in node.children():
        yield from _walk(child)


def _key(row: tuple) -> tuple:
    return tuple(
        int(value) if isinstance(value, float) and value.is_integer() else
        value.rstrip() if isinstance(value, str) else value
        for value in row
    )
