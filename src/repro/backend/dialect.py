"""Surface-syntax dialects of the executing backend.

The in-memory backend models each cloud target as one ANSI engine behind a
capability profile, but the *texts* the per-target serializers emit differ in
spelling: BigQuery-style targets write ``INT64``/``STRING`` and backtick
quoting, T-SQL-style targets write ``DATETIME2``, ``LEN()`` and bracket
quoting, Snowflake-style targets write ``NUMBER(p,s)``. For the differential
conformance matrix the backend must accept its own profile's spellings — and
continue to reject every other dialect's — so those differences live here as
data consumed by :class:`repro.backend.parser.BackendParser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping


def _frozen(mapping: dict[str, str]) -> Mapping[str, str]:
    return MappingProxyType(dict(mapping))


@dataclass(frozen=True)
class BackendDialect:
    """Lexical/spelling knobs of one backend parser instance.

    Attributes:
        type_synonyms: dialect type name -> canonical ANSI type name. Applied
            before the parser's type table, so ``INT64`` parses as ``BIGINT``.
        function_aliases: dialect function spelling -> canonical function name
            (e.g. T-SQL ``LEN`` -> ``LENGTH``), applied at parse time so the
            evaluator keeps a single implementation per function.
        backquote_idents: accept `` `name` `` quoted identifiers.
        bracket_idents: accept ``[name]`` quoted identifiers.
    """

    type_synonyms: Mapping[str, str] = field(default_factory=lambda: _frozen({}))
    function_aliases: Mapping[str, str] = field(default_factory=lambda: _frozen({}))
    backquote_idents: bool = False
    bracket_idents: bool = False


ANSI = BackendDialect()

_DIALECTS: dict[str, BackendDialect] = {
    # BigQuery-like: backtick quoting, INT64/FLOAT64/STRING/BOOL/NUMERIC.
    "skyquery": BackendDialect(
        type_synonyms=_frozen({
            "INT64": "BIGINT",
            "FLOAT64": "FLOAT",
            "STRING": "VARCHAR",
            "BOOL": "BOOLEAN",
        }),
        backquote_idents=True,
    ),
    # T-SQL-like: bracket quoting, DATETIME2, LEN().
    "azuresynth": BackendDialect(
        type_synonyms=_frozen({"DATETIME2": "TIMESTAMP"}),
        function_aliases=_frozen({"LEN": "LENGTH"}),
        bracket_idents=True,
    ),
    # Snowflake-like: NUMBER(p,s) for decimals.
    "snowfield": BackendDialect(
        type_synonyms=_frozen({"NUMBER": "DECIMAL"}),
    ),
}


def dialect_for(profile_name: str) -> BackendDialect:
    """The backend dialect matching a capability profile name."""
    return _DIALECTS.get(profile_name, ANSI)
