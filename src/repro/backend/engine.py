"""The backend database facade.

:class:`Database` is the "cloud data warehouse" of the reproduction: it
accepts SQL text in its own ANSI dialect, parses, plans, and executes it.
:class:`BackendSession` adds a per-session temporary-table namespace, which
the Hyper-Q emulation layer uses for WorkTable/TempTable scratch objects
(Section 6) and volatile-table emulation.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, Optional

from repro.core.budget import DEFAULT_BATCH_ROWS
from repro.errors import BackendError, CatalogError
from repro.transform.capabilities import CapabilityProfile, HYPERION
from repro.backend.catalog import Catalog
from repro.backend.executor import Executor
from repro.backend.expressions import Env, EvalContext
from repro.backend.parser import BackendParser
from repro.backend import planner as p
from repro.backend.storage import Table, default_value_for
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.relational import OutputColumn
from repro.xtra.schema import ColumnSchema, TableSchema
from repro.xtra.visitor import rewrite_scalars, walk_scalars


class QueryResult:
    """Outcome of one backend statement.

    ``kind`` is "rows" for result sets, "count" for DML, "ok" for DDL and
    transaction control.

    Result sets may arrive as a lazy *batch source* instead of a
    materialized list. :meth:`iter_batches` streams the rows exactly once
    in bounded batches; the :attr:`rows` / :attr:`rowcount` accessors are
    compatibility shims that drain the stream into memory on first use.
    """

    def __init__(self, kind: str,
                 columns: Optional[list[str]] = None,
                 column_types: Optional[list[t.SQLType]] = None,
                 rows: Optional[list[tuple]] = None,
                 rowcount: int = 0,
                 batch_source: Optional[Iterator[list[tuple]]] = None):
        self.kind = kind
        self.columns = list(columns) if columns else []
        self.column_types = list(column_types) if column_types else []
        if rows is not None or batch_source is None:
            self._rows: Optional[list[tuple]] = list(rows) if rows else []
        else:
            self._rows = None
        self._batch_source = batch_source if self._rows is None else None
        self._rowcount = rowcount if self._rows is None or rowcount \
            else len(self._rows)
        self._consumed = False

    @property
    def is_rows(self) -> bool:
        return self.kind == "rows"

    @property
    def streaming(self) -> bool:
        """True while rows are still a lazy, unconsumed batch source."""
        return self._batch_source is not None

    @property
    def rows(self) -> list[tuple]:
        """Materialized row list (drains and caches a pending stream)."""
        if self._rows is None:
            self._drain()
        return self._rows

    @property
    def rowcount(self) -> int:
        if self._rows is None and not self._consumed and self.kind == "rows":
            self._drain()
        return self._rowcount

    def _drain(self) -> None:
        if self._batch_source is None:
            if self._rows is None:
                raise BackendError("result stream was already consumed")
            return
        source, self._batch_source = self._batch_source, None
        self._rows = [row for batch in source for row in batch]
        self._rowcount = len(self._rows)
        self._consumed = True

    def iter_batches(self, batch_rows: int = 1024) -> Iterator[list[tuple]]:
        """Yield the rows once, re-chunked into *batch_rows*-row batches.

        Streams straight off the batch source when one is pending (single
        use, bounded memory); falls back to slicing the materialized list.
        """
        if self._rows is not None:
            for start in range(0, len(self._rows), batch_rows):
                yield self._rows[start:start + batch_rows]
            return
        if self._batch_source is None:
            raise BackendError("result stream was already consumed")
        source, self._batch_source = self._batch_source, None
        count = 0
        pending: list[tuple] = []
        for batch in source:
            if not pending and len(batch) <= batch_rows:
                count += len(batch)
                yield batch
                continue
            pending.extend(batch)
            while len(pending) >= batch_rows:
                count += batch_rows
                yield pending[:batch_rows]
                pending = pending[batch_rows:]
        if pending:
            count += len(pending)
            yield pending
        self._rowcount = count
        self._consumed = True

    def wrap_batch_source(
            self, wrap: Callable[[Iterator[list[tuple]]],
                                 Iterator[list[tuple]]]) -> None:
        """Instrumentation hook: interpose on a pending batch source."""
        if self._batch_source is not None:
            self._batch_source = wrap(self._batch_source)


class _SessionCatalog:
    """Catalog view layering session-temporary objects over the shared ones."""

    def __init__(self, shared: Catalog):
        self._shared = shared
        self._temp = Catalog()

    # Reads: temp shadows shared. -------------------------------------------------

    def table(self, name: str) -> Table:
        if self._temp.has_table(name):
            return self._temp.table(name)
        return self._shared.table(name)

    def has_table(self, name: str) -> bool:
        return self._temp.has_table(name) or self._shared.has_table(name)

    def has_view(self, name: str) -> bool:
        return self._shared.has_view(name)

    def view(self, name: str):
        return self._shared.view(name)

    def resolve(self, name: str) -> TableSchema:
        if self._temp.has_table(name):
            return self._temp.table(name).schema
        return self._shared.resolve(name)

    def table_names(self) -> list[str]:
        return sorted(set(self._shared.table_names()) | set(self._temp.table_names()))

    def view_names(self) -> list[str]:
        return self._shared.view_names()

    # Writes ------------------------------------------------------------------------

    def create_table(self, schema: TableSchema, if_not_exists: bool = False,
                     temporary: bool = False) -> Table:
        if temporary:
            return self._temp.create_table(schema, if_not_exists)
        return self._shared.create_table(schema, if_not_exists)

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        if self._temp.has_table(name):
            return self._temp.drop_table(name)
        return self._shared.drop_table(name, if_exists)

    def create_view(self, schema: TableSchema, replace: bool = False) -> None:
        self._shared.create_view(schema, replace)

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        return self._shared.drop_view(name, if_exists)

    def drop_all_temp(self) -> None:
        for name in list(self._temp.table_names()):
            self._temp.drop_table(name)


class BackendSession:
    """One client session: executes SQL, owns temporary tables."""

    def __init__(self, database: "Database"):
        self._database = database
        self._catalog = _SessionCatalog(database.catalog)
        self._parser = BackendParser(database.profile)
        self._planner = p.Planner(self._catalog, database.profile)

    @property
    def profile(self) -> CapabilityProfile:
        return self._database.profile

    def _make_executor(self) -> Executor:
        return Executor(self._catalog, self.profile,
                        faults=self._database.faults,
                        replica=self._database.replica)

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute a single SQL statement."""
        statement = self._parser.parse_statement(sql)
        with self._database.lock:
            return self._execute_spec(statement)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Parse and execute a ';'-separated statement sequence."""
        statements = self._parser.parse_script(sql)
        with self._database.lock:
            return [self._execute_spec(statement) for statement in statements]

    def close(self) -> None:
        self._catalog.drop_all_temp()

    # -- statement dispatch -----------------------------------------------------------

    def _execute_spec(self, statement: p.StatementSpec) -> QueryResult:
        if isinstance(statement, p.QueryStatementSpec):
            return self._run_query(statement.query)
        if isinstance(statement, p.InsertSpec):
            return self._run_insert(self._resolve_dml_target(statement))
        if isinstance(statement, p.UpdateSpec):
            return self._run_update(self._resolve_dml_target(statement))
        if isinstance(statement, p.DeleteSpec):
            return self._run_delete(self._resolve_dml_target(statement))
        if isinstance(statement, p.CreateTableSpec):
            return self._run_create_table(statement)
        if isinstance(statement, p.DropTableSpec):
            self._catalog.drop_table(statement.name, statement.if_exists)
            return QueryResult("ok")
        if isinstance(statement, p.CreateViewSpec):
            return self._run_create_view(statement)
        if isinstance(statement, p.DropViewSpec):
            self._catalog.drop_view(statement.name, statement.if_exists)
            return QueryResult("ok")
        if isinstance(statement, p.TruncateSpec):
            removed = self._catalog.table(statement.name).truncate()
            return QueryResult("count", rowcount=removed)
        if isinstance(statement, p.TransactionSpec):
            return QueryResult("ok")
        if isinstance(statement, p.MergeSpec):
            return self._run_merge(statement)
        raise BackendError(f"unsupported statement {type(statement).__name__}")

    # -- queries --------------------------------------------------------------------------

    def _run_query(self, spec: p.QuerySpec) -> QueryResult:
        plan = self._planner.plan_query(spec)
        executor = self._make_executor()
        columns, batches = executor.run_stream(
            plan, batch_rows=self._database.batch_rows)
        # Prime the first batch while the statement lock is held so per-row
        # evaluation errors surface at execute time, not at first fetch.
        first = next(batches, None)
        return QueryResult(
            "rows",
            columns=[col.name for col in columns],
            column_types=[col.type for col in columns],
            batch_source=self._locked_batches(first, batches),
        )

    def _locked_batches(
            self, first: Optional[list[tuple]],
            batches: Iterator[list[tuple]]) -> Iterator[list[tuple]]:
        """Re-acquire the database lock around each lazy batch pull.

        The statement lock is released before a streaming result is
        consumed; pulling a batch still evaluates expressions inside the
        executor, so each step is taken back under the shared lock.
        """
        if first is not None:
            yield first
        lock = self._database.lock
        while True:
            with lock:
                try:
                    batch = next(batches)
                except StopIteration:
                    return
            yield batch

    def _plan_and_run(self, spec: p.QuerySpec):
        plan = self._planner.plan_query(spec)
        executor = self._make_executor()
        return executor.run(plan)

    # -- DML ------------------------------------------------------------------------------

    def _resolve_dml_target(self, spec):
        """Route DML aimed at an updatable view to its base table.

        Supported on profiles with ``updatable_views``: the view must be a
        simple projection (plain column list or ``*``) over a single table,
        optionally filtered by a subquery-free WHERE. Column references are
        remapped through the view's select list and the view predicate is
        conjoined onto UPDATE/DELETE predicates (INSERT takes no predicate —
        the backend models views without CHECK OPTION).
        """
        while not self._catalog.has_table(spec.table) \
                and self._catalog.has_view(spec.table):
            if not self.profile.updatable_views:
                raise BackendError(
                    f"view {spec.table} is not updatable on this system")
            spec = self._rewrite_view_dml(spec)
        return spec

    def _rewrite_view_dml(self, spec):
        view = self._catalog.view(spec.table)
        core = self._updatable_view_core(spec.table, view)
        base = core.from_refs[0]
        base_schema = self._catalog.resolve(base.name)
        column_map: dict[str, str] = {}
        item_names: list[str] = []
        for item in core.items:
            if item.star:
                item_names.extend(col.name for col in base_schema.columns)
            else:
                expr = item.expr
                if not isinstance(expr, s.ColumnRef):
                    raise BackendError(
                        f"view {spec.table} is not updatable "
                        "(computed select items)")
                item_names.append(expr.name.upper())
        view_columns = [col.name for col in view.columns]
        if len(view_columns) != len(item_names):
            raise BackendError(
                f"view {spec.table} is not updatable (column-count mismatch)")
        column_map = dict(zip(view_columns, item_names))

        view_qualifiers = {spec.table.upper()}
        if getattr(spec, "alias", None):
            view_qualifiers.add(spec.alias.upper())

        def remap(expr: s.ScalarExpr) -> s.ScalarExpr:
            if isinstance(expr, s.ColumnRef):
                if expr.table is not None \
                        and expr.table.upper() not in view_qualifiers:
                    raise BackendError(
                        f"unknown qualifier {expr.table} in DML against "
                        f"view {spec.table}")
                mapped = column_map.get(expr.name.upper())
                if mapped is None:
                    raise BackendError(
                        f"view {spec.table} has no column {expr.name}")
                return s.ColumnRef(mapped)
            return expr

        def strip_qualifier(expr: s.ScalarExpr) -> s.ScalarExpr:
            if isinstance(expr, s.ColumnRef) and expr.table is not None:
                return s.ColumnRef(expr.name)
            return expr

        view_predicate = None
        if core.where is not None:
            if any(isinstance(node, s.SubqueryExpr)
                   for node in walk_scalars(core.where)):
                raise BackendError(
                    f"view {spec.table} is not updatable "
                    "(subquery in view predicate)")
            view_predicate = rewrite_scalars(core.where, strip_qualifier)

        if isinstance(spec, p.InsertSpec):
            source_columns = spec.columns or view_columns
            mapped_columns = []
            for name in source_columns:
                mapped = column_map.get(name.upper())
                if mapped is None:
                    raise BackendError(
                        f"view {spec.table} has no column {name}")
                mapped_columns.append(mapped)
            return p.InsertSpec(base.name, mapped_columns, spec.rows, spec.query)

        predicate = (rewrite_scalars(spec.predicate, remap)
                     if spec.predicate is not None else None)
        combined = s.conjoin(
            [part for part in (view_predicate, predicate) if part is not None])
        if isinstance(spec, p.UpdateSpec):
            assignments = []
            for name, expr in spec.assignments:
                mapped = column_map.get(name.upper())
                if mapped is None:
                    raise BackendError(
                        f"view {spec.table} has no column {name}")
                assignments.append((mapped, rewrite_scalars(expr, remap)))
            return p.UpdateSpec(base.name, None, assignments, combined)
        return p.DeleteSpec(base.name, None, combined)

    def _updatable_view_core(self, name: str, view: TableSchema) -> p.CoreSpec:
        statement = self._parser.parse_statement(view.view_sql or "")
        not_updatable = BackendError(
            f"view {name} is not updatable "
            "(simple single-table projections only)")
        if not isinstance(statement, p.QueryStatementSpec):
            raise not_updatable
        query = statement.query
        core = query.first
        if query.ctes or query.branches or query.order_by \
                or query.limit is not None or query.offset \
                or not isinstance(core, p.CoreSpec) \
                or core.distinct or core.top or core.group_by or core.having \
                or len(core.from_refs) != 1 \
                or not isinstance(core.from_refs[0], p.TableNameSpec) \
                or core.from_refs[0].column_names:
            raise not_updatable
        return core

    def _run_insert(self, spec: p.InsertSpec) -> QueryResult:
        table = self._catalog.table(spec.table)
        schema = table.schema
        target_columns = spec.columns or schema.column_names()
        positions = [table.column_index(name) for name in target_columns]
        if spec.query is not None:
            __, rows = self._plan_and_run(spec.query)
        else:
            executor = self._make_executor()
            ctx = EvalContext((), Env([]), None)
            rows = []
            for row_exprs in spec.rows or []:
                scope = p._Scope()
                planned = [self._planner._plan_scalar_subqueries(expr, scope)
                           for expr in row_exprs]
                rows.append(tuple(executor.evaluator.eval(expr, ctx)
                                  for expr in planned))
        inserted = 0
        for row in rows:
            if len(row) != len(positions):
                raise BackendError(
                    f"INSERT supplies {len(row)} values for {len(positions)} columns")
            full_row: list[object] = [None] * len(schema.columns)
            provided = set(positions)
            for position, value in zip(positions, row):
                full_row[position] = value
            for index, column in enumerate(schema.columns):
                if index not in provided and column.default_sql is not None:
                    full_row[index] = default_value_for(column)
            table.insert_row(full_row)
            inserted += 1
        return QueryResult("count", rowcount=inserted)

    def _table_env(self, schema: TableSchema, alias: Optional[str]) -> Env:
        qualifier = (alias or schema.name).upper()
        return Env([OutputColumn(col.name, col.type, qualifier)
                    for col in schema.columns])

    def _run_update(self, spec: p.UpdateSpec) -> QueryResult:
        table = self._catalog.table(spec.table)
        env = self._table_env(table.schema, spec.alias)
        executor = self._make_executor()
        scope = p._Scope()
        predicate = (self._planner._plan_scalar_subqueries(spec.predicate, scope)
                     if spec.predicate is not None else None)
        assignments = [
            (name, self._planner._plan_scalar_subqueries(expr, scope))
            for name, expr in spec.assignments
        ]
        positions = [table.column_index(name) for name, __ in assignments]
        updated = 0
        new_rows: list[tuple] = []
        for row in table.rows:
            ctx = EvalContext(row, env, None)
            hit = predicate is None or executor.evaluator.eval_bool(predicate, ctx)
            if not hit:
                new_rows.append(row)
                continue
            values = list(row)
            for position, (__, expr) in zip(positions, assignments):
                values[position] = executor.evaluator.eval(expr, ctx)
            new_rows.append(tuple(values))
            updated += 1
        # Re-validate through a scratch table to enforce types/NOT NULL.
        table.rows = []
        table.insert_rows(new_rows)
        return QueryResult("count", rowcount=updated)

    def _run_delete(self, spec: p.DeleteSpec) -> QueryResult:
        table = self._catalog.table(spec.table)
        env = self._table_env(table.schema, spec.alias)
        executor = self._make_executor()
        scope = p._Scope()
        predicate = (self._planner._plan_scalar_subqueries(spec.predicate, scope)
                     if spec.predicate is not None else None)
        kept: list[tuple] = []
        deleted = 0
        for row in table.rows:
            ctx = EvalContext(row, env, None)
            if predicate is None or executor.evaluator.eval_bool(predicate, ctx):
                deleted += 1
            else:
                kept.append(row)
        table.rows = kept
        return QueryResult("count", rowcount=deleted)

    # -- DDL --------------------------------------------------------------------------------

    def _run_create_table(self, spec: p.CreateTableSpec) -> QueryResult:
        if spec.as_query is not None:
            columns_meta, rows = self._plan_and_run(spec.as_query)
            columns = [ColumnSchema(col.name, _storable_type(col.type))
                       for col in columns_meta]
            schema = TableSchema(spec.name.upper(), columns, volatile=spec.temporary)
            table = self._catalog.create_table(schema, spec.if_not_exists,
                                               spec.temporary)
            table.insert_rows(rows)
            return QueryResult("count", rowcount=len(rows))
        schema = TableSchema(spec.name.upper(), list(spec.columns or []),
                             volatile=spec.temporary)
        self._catalog.create_table(schema, spec.if_not_exists, spec.temporary)
        return QueryResult("ok")

    def _run_create_view(self, spec: p.CreateViewSpec) -> QueryResult:
        plan = self._planner.plan_query(spec.query)
        inner = plan.output_columns()
        names = spec.column_names or [col.name for col in inner]
        if len(names) != len(inner):
            raise BackendError(
                f"view {spec.name}: {len(names)} names for {len(inner)} columns")
        columns = [ColumnSchema(name.upper(), col.type)
                   for name, col in zip(names, inner)]
        schema = TableSchema(spec.name.upper(), columns, is_view=True,
                             view_sql=spec.source_sql)
        self._catalog.create_view(schema, spec.replace)
        return QueryResult("ok")

    # -- MERGE -------------------------------------------------------------------------------

    def _run_merge(self, spec: p.MergeSpec) -> QueryResult:
        if not self.profile.merge_statement:
            raise BackendError("MERGE is not supported by this system")
        table = self._catalog.table(spec.target)
        target_env_cols = self._table_env(table.schema, spec.target_alias).columns
        source_plan = self._planner._plan_table_ref(spec.source, p._Scope())
        executor = self._make_executor()
        source_cols, source_rows = executor.run(source_plan)
        combined_env = Env(list(target_env_cols) + list(source_cols))
        scope = p._Scope()
        condition = self._planner._plan_scalar_subqueries(spec.condition, scope)
        affected = 0
        new_rows: list[tuple] = []
        matched_sources: set[int] = set()
        for target_row in table.rows:
            match_row = None
            for index, source_row in enumerate(source_rows):
                ctx = EvalContext(target_row + source_row, combined_env, None)
                if executor.evaluator.eval_bool(condition, ctx):
                    match_row = source_row
                    matched_sources.add(index)
                    break
            if match_row is not None and spec.matched_assignments:
                ctx = EvalContext(target_row + match_row, combined_env, None)
                values = list(target_row)
                for name, expr in spec.matched_assignments:
                    values[table.column_index(name)] = executor.evaluator.eval(expr, ctx)
                new_rows.append(tuple(values))
                affected += 1
            else:
                new_rows.append(target_row)
        table.rows = []
        table.insert_rows(new_rows)
        if spec.insert_columns and spec.insert_values is not None:
            positions = [table.column_index(name) for name in spec.insert_columns]
            null_target = (None,) * len(table.schema.columns)
            for index, source_row in enumerate(source_rows):
                if index in matched_sources:
                    continue
                ctx = EvalContext(null_target + source_row, combined_env, None)
                full_row: list[object] = [None] * len(table.schema.columns)
                for position, expr in zip(positions, spec.insert_values):
                    full_row[position] = executor.evaluator.eval(expr, ctx)
                table.insert_row(full_row)
                affected += 1
        return QueryResult("count", rowcount=affected)


class Database:
    """A shared backend instance; create one session per client connection."""

    def __init__(self, profile: CapabilityProfile = HYPERION,
                 faults=None, replica: Optional[int] = None,
                 batch_rows: int = DEFAULT_BATCH_ROWS):
        self.profile = profile
        self.catalog = Catalog()
        self.lock = threading.RLock()
        #: Rows per batch yielded by streaming query results.
        self.batch_rows = batch_rows
        #: Optional :class:`repro.core.faults.FaultSchedule` consulted by the
        #: plan executor (injection site ``"executor"``).
        self.faults = faults
        #: Replica index when this backend is one member of a scaled fleet.
        self.replica = replica

    def create_session(self) -> BackendSession:
        return BackendSession(self)

    def execute(self, sql: str) -> QueryResult:
        """One-shot convenience: execute in a throwaway session."""
        return self.create_session().execute(sql)

    def execute_script(self, sql: str) -> list[QueryResult]:
        return self.create_session().execute_script(sql)


def _storable_type(declared: t.SQLType) -> t.SQLType:
    """CTAS columns with unknown types degrade to untyped storage."""
    return declared
