"""Plan execution for the backend database.

Executes XTRA relational plans directly: scans, filters, projections, hash and
nested-loop joins, hash aggregation (with grouping-set expansion when the
capability profile enables it), window functions, sorting with explicit NULL
placement, set operations, LIMIT/TOP, and (when enabled) recursive CTE
iteration. Rows are plain tuples.

Operators follow a pull-based Volcano discipline: every handler returns
``(output columns, row iterable)`` where the iterable is a generator for
pipelined operators (scan, filter, project, distinct, limit, join probe,
streaming set ops) and a list for pipeline breakers (sort, aggregate,
window, join build side). The plan *tree* is instantiated eagerly — catalog
lookups, CTE binding, and table snapshots all happen at call time — but row
flow is lazy, so :meth:`Executor.run_stream` delivers the first batch before
the last one is produced and never materializes a pipelined result.
:meth:`Executor.run` is the materializing wrapper used by DML, subquery
evaluation, and every pre-streaming caller.

Any operator whose expressions contain subqueries falls back to eager
materialization: correlated subqueries may reference CTE frames that are
only guaranteed alive while the enclosing ``WITH`` executes.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Optional

from repro.errors import BackendError
from repro.transform.capabilities import CapabilityProfile, NullOrdering
from repro.backend.catalog import Catalog
from repro.backend.expressions import Env, EvalContext, Evaluator, UnresolvedColumnError
from repro.backend import functions as fl
from repro.xtra.relational import (
    Aggregate, CTERef, DerivedTable, Distinct, Filter, Get, GroupingKind,
    Join, JoinKind, Limit, OutputColumn, Project, RelNode, SetOp, SetOpKind,
    Sort, Values, Window, With,
)
from repro.xtra.scalars import (
    BoolOp, BoolOpKind, ColumnRef, Comp, CompOp, ScalarExpr, SortKey,
    WindowFunc, conjoin,
)

_MAX_RECURSION_ROUNDS = 10_000

_CORRELATED = object()  # sentinel: plan observed to need outer context


def walk_rel_nodes(node: RelNode):
    yield node
    for child in node.children():
        yield from walk_rel_nodes(child)


class Executor:
    """Executes relational plans against a catalog."""

    def __init__(self, catalog: Catalog, profile: CapabilityProfile,
                 faults=None, replica: Optional[int] = None):
        self._catalog = catalog
        self._profile = profile
        self._faults = faults
        self._replica = replica
        self._evaluator = Evaluator(profile, self._run_subquery)
        self._evaluator.subquery_overrides = {}
        self._cte_frames: list[dict[str, tuple[list[OutputColumn], list[tuple]]]] = []
        # id(plan) -> cached uncorrelated result, or _CORRELATED sentinel.
        self._subquery_cache: dict[int, object] = {}

    # -- public API ------------------------------------------------------------

    @property
    def evaluator(self) -> Evaluator:
        """The executor's scalar evaluator (used by the DML layer)."""
        return self._evaluator

    def run(self, plan: RelNode,
            outer: Optional[EvalContext] = None) -> tuple[list[OutputColumn], list[tuple]]:
        """Execute *plan*, returning (output columns, materialized row list).

        Plans are optimized (predicate pushdown) in place on first execution.
        """
        columns, rows = self._stream(plan, outer)
        return columns, _as_list(rows)

    def run_stream(self, plan: RelNode, batch_rows: int = 1024,
                   outer: Optional[EvalContext] = None,
                   ) -> tuple[list[OutputColumn], Iterator[list[tuple]]]:
        """Execute *plan*, returning (output columns, batch iterator).

        Batches hold at most *batch_rows* rows each and are produced on
        demand: pipelined plans yield their first batch before the scan has
        finished. Fault checkpoints and plan optimization still happen
        eagerly, before this call returns, so a retried plan has no partial
        effects.
        """
        columns, rows = self._stream(plan, outer)
        return columns, _batched(rows, batch_rows)

    def _stream(self, plan: RelNode, outer: Optional[EvalContext]):
        if self._faults is not None and outer is None:
            # Fault checkpoint: the warehouse itself hiccups mid-plan.
            # Fires before any rows move, so a retried plan re-executes
            # from scratch with no partial effects.
            from repro.core.faults import apply_fault

            apply_fault(self._faults.draw("executor",
                                          op=type(plan).__name__,
                                          replica=self._replica))
        if not getattr(plan, "_optimized", False):
            from repro.backend.optimizer import optimize

            plan = optimize(plan)
            plan._optimized = True  # type: ignore[attr-defined]
        return self._execute(plan, outer)

    # -- dispatch ----------------------------------------------------------------

    def _run_subquery(self, plan: RelNode, outer: Optional[EvalContext]):
        # Uncorrelated subqueries execute once and are cached by plan
        # identity (never when CTE references are involved: recursion
        # rebinds them between rounds). Results materialize: the evaluator
        # indexes into them and cached results are shared across rows.
        cached = self._subquery_cache.get(id(plan))
        if cached is _CORRELATED:
            return self._materialize(plan, outer)
        if cached is not None:
            return cached
        if any(isinstance(node, CTERef) for node in walk_rel_nodes(plan)):
            return self._materialize(plan, outer)
        try:
            result = self._materialize(plan, None)
        except UnresolvedColumnError:
            self._subquery_cache[id(plan)] = _CORRELATED
            return self._materialize(plan, outer)
        self._subquery_cache[id(plan)] = result
        return result

    def _execute(self, plan: RelNode, outer: Optional[EvalContext]):
        handler = self._HANDLERS.get(type(plan))
        if handler is None:
            raise BackendError(f"cannot execute {type(plan).__name__}")
        return handler(self, plan, outer)

    def _materialize(self, plan: RelNode, outer: Optional[EvalContext]):
        columns, rows = self._execute(plan, outer)
        return columns, _as_list(rows)

    # -- leaf operators ------------------------------------------------------------

    def _get(self, node: Get, outer):
        # Snapshot eagerly (pointer copy): row flow may outlive the
        # statement lock, but the rows visible are the ones at plan time.
        table = self._catalog.table(node.table.name)
        return node.output_columns(), list(table.rows)

    def _values(self, node: Values, outer):
        # Eager: VALUES cells may contain subquery expressions.
        env = Env([])
        ctx = EvalContext((), env, outer)
        rows = [tuple(self._evaluator.eval(cell, ctx) for cell in row)
                for row in node.rows]
        return node.output_columns(), rows

    def _cte_ref(self, node: CTERef, outer):
        for frame in reversed(self._cte_frames):
            if node.name.upper() in frame:
                __, rows = frame[node.name.upper()]
                return node.output_columns(), list(rows)
        raise BackendError(f"unknown CTE reference {node.name}")

    # -- unary operators ---------------------------------------------------------

    def _filter(self, node: Filter, outer):
        from repro.backend import decorrelate

        columns, rows = self._execute(node.child, outer)
        env = Env(columns)
        subqueries = decorrelate.collect_subqueries(node.predicate)
        if not subqueries:
            evaluator = self._evaluator

            def generate():
                for row in rows:
                    if evaluator.eval_bool(node.predicate,
                                           EvalContext(row, env, outer)):
                        yield row
            return node.output_columns(), generate()
        # Subquery predicates evaluate eagerly (CTE frames must be alive).
        # Decorrelate eligible subqueries into hash probes before the row
        # loop; ineligible ones fall back to per-row evaluation.
        rows = _as_list(rows)
        installed: list[int] = []
        try:
            if len(rows) > 8:
                for subq in subqueries:
                    if id(subq) in self._evaluator.subquery_overrides:
                        continue
                    index = decorrelate.build_index(self, subq)
                    if index is not None:
                        self._evaluator.subquery_overrides[id(subq)] = index.probe
                        installed.append(id(subq))
            kept = [row for row in rows
                    if self._evaluator.eval_bool(node.predicate,
                                                 EvalContext(row, env, outer))]
        finally:
            for key in installed:
                self._evaluator.subquery_overrides.pop(key, None)
        return node.output_columns(), kept

    def _project(self, node: Project, outer):
        columns, rows = self._execute(node.child, outer)
        env = Env(columns)
        evaluator = self._evaluator
        if any(_contains_subquery(expr) for expr in node.exprs):
            # Eager: scalar subqueries may reference CTE frames.
            out_rows = []
            for row in rows:
                ctx = EvalContext(row, env, outer)
                out_rows.append(tuple(evaluator.eval(expr, ctx)
                                      for expr in node.exprs))
            return node.output_columns(), out_rows

        def generate():
            for row in rows:
                ctx = EvalContext(row, env, outer)
                yield tuple(evaluator.eval(expr, ctx) for expr in node.exprs)
        return node.output_columns(), generate()

    def _derived(self, node: DerivedTable, outer):
        __, rows = self._execute(node.child, outer)
        return node.output_columns(), rows

    def _distinct(self, node: Distinct, outer):
        columns, rows = self._execute(node.child, outer)

        def generate():
            seen: set = set()
            for row in rows:
                key = _hashable_row(row)
                if key not in seen:
                    seen.add(key)
                    yield row
        return columns, generate()

    def _sort(self, node: Sort, outer):
        columns, rows = self._materialize(node.child, outer)
        env = Env(columns)
        sorted_rows = self._sort_rows(rows, node.keys, env, outer)
        return columns, sorted_rows

    def _sort_rows(self, rows: list[tuple], keys: list[SortKey], env: Env, outer):
        """Stable multi-key sort honoring per-key NULL placement."""
        default_first = self._profile.default_null_ordering is NullOrdering.NULLS_FIRST
        decorated = list(rows)
        for key in reversed(keys):
            values = [self._evaluator.eval(key.expr, EvalContext(row, env, outer))
                      for row in decorated]
            # default_null_ordering is defined per *ascending* key: the engine
            # treats NULL as an extreme value, so a DESC key flips placement.
            default = default_first if key.ascending else not default_first
            nulls_first = key.nulls_first if key.nulls_first is not None else default
            reverse = not key.ascending
            if reverse:
                null_rank = 1 if nulls_first else 0
            else:
                null_rank = 0 if nulls_first else 1
            paired = sorted(
                zip(values, decorated),
                key=lambda pair: (null_rank, 0) if pair[0] is None
                else (1 - null_rank, _SortValue(pair[0])),
                reverse=reverse,
            )
            decorated = [row for __, row in paired]
        return decorated

    def _limit(self, node: Limit, outer):
        columns, rows = self._execute(node.child, outer)
        start = node.offset
        if node.count is None:
            if start == 0:
                return columns, rows
            return columns, islice(iter(rows), start, None)
        end = start + node.count
        if node.with_ties:
            if not self._profile.top_with_ties:
                raise BackendError("TOP ... WITH TIES is not supported by this system")
            rows = _as_list(rows)
            if not isinstance(node.child, Sort) or end >= len(rows):
                return columns, rows[start:end]
            env = Env(columns)
            keys = node.child.keys
            boundary = rows[end - 1]
            while end < len(rows) and self._same_sort_key(rows[end], boundary, keys, env, outer):
                end += 1
            return columns, rows[start:end]
        # Early termination: stop pulling the child once the window is full.
        return columns, islice(iter(rows), start, end)

    def _same_sort_key(self, row_a, row_b, keys, env, outer) -> bool:
        for key in keys:
            value_a = self._evaluator.eval(key.expr, EvalContext(row_a, env, outer))
            value_b = self._evaluator.eval(key.expr, EvalContext(row_b, env, outer))
            if value_a is None and value_b is None:
                continue
            if self._evaluator.compare(CompOp.EQ, value_a, value_b) is not True:
                return False
        return True

    # -- joins ------------------------------------------------------------------

    def _join(self, node: Join, outer):
        out_cols = node.output_columns()
        if node.kind is JoinKind.RIGHT:
            # Execute as LEFT with sides swapped, then restore column order.
            right_width = len(node.right.output_columns())
            swapped = Join(JoinKind.LEFT, node.right, node.left, node.condition)
            cols, rows = self._join(swapped, outer)
            reordered = (row[right_width:] + row[:right_width] for row in rows)
            return out_cols, reordered

        left_cols, left_rows = self._execute(node.left, outer)
        # Build side materializes (it is probed repeatedly); the probe side
        # streams unless the join condition carries subquery expressions.
        right_cols, right_rows = self._materialize(node.right, outer)
        env = Env(out_cols)
        left_width = len(left_cols)
        right_width = len(right_cols)

        if node.kind is JoinKind.CROSS or node.condition is None:
            rows = (l + r for l in left_rows for r in right_rows)
            return out_cols, rows

        if _contains_subquery(node.condition):
            left_rows = _as_list(left_rows)
            return out_cols, _as_list(self._loop_join(
                node.kind, left_rows, right_rows, node.condition, env, outer,
                left_width, right_width))

        equi, residual = self._split_equi(node.condition, Env(left_cols), Env(right_cols))
        if equi:
            return out_cols, self._hash_join(
                node.kind, left_rows, right_rows, left_cols, right_cols,
                equi, residual, env, outer, left_width, right_width)
        return out_cols, self._loop_join(
            node.kind, left_rows, right_rows, node.condition, env, outer,
            left_width, right_width)

    def _split_equi(self, condition: ScalarExpr, left_env: Env, right_env: Env):
        """Split a join predicate into equi pairs and a residual predicate."""
        conjuncts = _flatten_and(condition)
        equi: list[tuple[ScalarExpr, ScalarExpr]] = []
        residual: list[ScalarExpr] = []
        for conjunct in conjuncts:
            pair = self._equi_pair(conjunct, left_env, right_env)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
        return equi, conjoin(residual)

    def _equi_pair(self, conjunct: ScalarExpr, left_env: Env, right_env: Env):
        if not isinstance(conjunct, Comp) or conjunct.op is not CompOp.EQ:
            return None
        left_side = _side_of(conjunct.left, left_env, right_env)
        right_side = _side_of(conjunct.right, left_env, right_env)
        if left_side == "L" and right_side == "R":
            return conjunct.left, conjunct.right
        if left_side == "R" and right_side == "L":
            return conjunct.right, conjunct.left
        return None

    def _hash_join(self, kind, left_rows, right_rows, left_cols, right_cols,
                   equi, residual, env, outer, left_width, right_width):
        left_env = Env(left_cols)
        right_env = Env(right_cols)

        def generate():
            # The build happens on first pull; probing then streams.
            table: dict = {}
            for index, row in enumerate(right_rows):
                ctx = EvalContext(row, right_env, outer)
                key = tuple(self._evaluator.eval(expr, ctx) for __, expr in equi)
                if any(value is None for value in key):
                    continue  # NULL keys never join
                table.setdefault(_hashable_row(key), []).append((index, row))
            matched_right: set[int] = set()
            null_right = (None,) * right_width
            for row in left_rows:
                ctx = EvalContext(row, left_env, outer)
                key = tuple(self._evaluator.eval(expr, ctx) for expr, __ in equi)
                matched = False
                if not any(value is None for value in key):
                    for right_index, right_row in table.get(_hashable_row(key), ()):
                        combined = row + right_row
                        if residual is None or self._evaluator.eval_bool(
                                residual, EvalContext(combined, env, outer)):
                            yield combined
                            matched = True
                            matched_right.add(right_index)
                if not matched and kind in (JoinKind.LEFT, JoinKind.FULL):
                    yield row + null_right
            if kind is JoinKind.FULL:
                null_left = (None,) * left_width
                for index, right_row in enumerate(right_rows):
                    if index not in matched_right:
                        yield null_left + right_row
        return generate()

    def _loop_join(self, kind, left_rows, right_rows, condition, env, outer,
                   left_width, right_width):
        def generate():
            matched_right: set[int] = set()
            null_right = (None,) * right_width
            for row in left_rows:
                matched = False
                for index, right_row in enumerate(right_rows):
                    combined = row + right_row
                    if self._evaluator.eval_bool(condition,
                                                 EvalContext(combined, env, outer)):
                        yield combined
                        matched = True
                        matched_right.add(index)
                if not matched and kind in (JoinKind.LEFT, JoinKind.FULL):
                    yield row + null_right
            if kind is JoinKind.FULL:
                null_left = (None,) * left_width
                for index, right_row in enumerate(right_rows):
                    if index not in matched_right:
                        yield null_left + right_row
        return generate()

    # -- aggregation ---------------------------------------------------------------

    def _aggregate(self, node: Aggregate, outer):
        columns, rows = self._materialize(node.child, outer)
        env = Env(columns)
        key_count = len(node.group_by)
        sets = self._grouping_sets(node)
        out_rows: list[tuple] = []
        for included in sets:
            out_rows.extend(self._aggregate_one_set(node, rows, env, outer, included))
        return node.output_columns(), out_rows

    def _grouping_sets(self, node: Aggregate) -> list[frozenset[int]]:
        all_keys = frozenset(range(len(node.group_by)))
        if node.kind is GroupingKind.SIMPLE:
            return [all_keys]
        if not self._profile.grouping_extensions:
            raise BackendError(
                "GROUP BY ROLLUP/CUBE/GROUPING SETS is not supported by this system")
        if node.kind is GroupingKind.ROLLUP:
            return [frozenset(range(k)) for k in range(len(node.group_by), -1, -1)]
        if node.kind is GroupingKind.CUBE:
            sets = []
            n = len(node.group_by)
            for mask in range(2 ** n - 1, -1, -1):
                sets.append(frozenset(i for i in range(n) if mask & (1 << i)))
            return sets
        return [frozenset(indexes) for indexes in (node.grouping_sets or [list(all_keys)])]

    def _aggregate_one_set(self, node: Aggregate, rows, env, outer,
                           included: frozenset[int]) -> list[tuple]:
        groups: dict = {}
        order: list = []
        for row in rows:
            ctx = EvalContext(row, env, outer)
            key_values = tuple(
                self._evaluator.eval(expr, ctx) if index in included else None
                for index, expr in enumerate(node.group_by))
            key = _hashable_row(key_values)
            state = groups.get(key)
            if state is None:
                accs = [fl.make_accumulator(agg.name, agg.distinct, agg.star)
                        for agg in node.aggs]
                state = (key_values, accs)
                groups[key] = state
                order.append(key)
            for agg, acc in zip(node.aggs, state[1]):
                if agg.star:
                    acc.add(1)
                else:
                    acc.add(self._evaluator.eval(agg.args[0], ctx))
        if not groups and not node.group_by:
            # Global aggregate over empty input yields one row of defaults.
            accs = [fl.make_accumulator(agg.name, agg.distinct, agg.star)
                    for agg in node.aggs]
            return [tuple(acc.result() for acc in accs)]
        out = []
        for key in order:
            key_values, accs = groups[key]
            out.append(tuple(key_values) + tuple(acc.result() for acc in accs))
        return out

    # -- windows ---------------------------------------------------------------------

    def _window(self, node: Window, outer):
        columns, rows = self._materialize(node.child, outer)
        env = Env(columns)
        extra_columns: list[list[object]] = []
        for func in node.funcs:
            extra_columns.append(self._compute_window(func, rows, env, outer))
        out_rows = [
            row + tuple(extra[index] for extra in extra_columns)
            for index, row in enumerate(rows)
        ]
        return node.output_columns(), out_rows

    def _compute_window(self, func: WindowFunc, rows, env, outer) -> list[object]:
        results: list[object] = [None] * len(rows)
        # Partition rows, carrying their original indices.
        partitions: dict = {}
        for index, row in enumerate(rows):
            ctx = EvalContext(row, env, outer)
            key = _hashable_row(tuple(
                self._evaluator.eval(expr, ctx) for expr in func.partition_by))
            partitions.setdefault(key, []).append(index)
        for indices in partitions.values():
            ordered = indices
            if func.order_by:
                ordered = self._sort_indices(indices, rows, func.order_by, env, outer)
            self._fill_window_values(func, ordered, rows, env, outer, results)
        return results

    def _sort_indices(self, indices: list[int], rows, keys: list[SortKey],
                      env, outer) -> list[int]:
        """Stable multi-key sort of row *indices* (window partitions)."""
        from repro.transform.capabilities import NullOrdering as _NO

        default_first = self._profile.default_null_ordering is _NO.NULLS_FIRST
        ordered = list(indices)
        for key in reversed(keys):
            values = {
                index: self._evaluator.eval(
                    key.expr, EvalContext(rows[index], env, outer))
                for index in ordered
            }
            # Per-ascending-key default; DESC keys flip (see _sort_rows).
            default = default_first if key.ascending else not default_first
            nulls_first = key.nulls_first if key.nulls_first is not None else default
            reverse = not key.ascending
            if reverse:
                null_rank = 1 if nulls_first else 0
            else:
                null_rank = 0 if nulls_first else 1
            ordered.sort(
                key=lambda index: (null_rank, 0) if values[index] is None
                else (1 - null_rank, _SortValue(values[index])),
                reverse=reverse,
            )
        return ordered

    def _fill_window_values(self, func: WindowFunc, ordered: list[int], rows,
                            env, outer, results: list[object]) -> None:
        name = func.name.upper()
        peer_keys = []
        for index in ordered:
            ctx = EvalContext(rows[index], env, outer)
            peer_keys.append(_hashable_row(tuple(
                self._evaluator.eval(key.expr, ctx) for key in func.order_by)))
        if name == "ROW_NUMBER":
            for position, index in enumerate(ordered):
                results[index] = position + 1
            return
        if name in ("RANK", "DENSE_RANK"):
            rank = 0
            dense = 0
            previous = object()
            for position, index in enumerate(ordered):
                if peer_keys[position] != previous:
                    rank = position + 1
                    dense += 1
                    previous = peer_keys[position]
                results[index] = rank if name == "RANK" else dense
            return
        if name in ("LAG", "LEAD"):
            offset = 1
            default = None
            constant_ctx = EvalContext((), Env([]), None)
            if len(func.args) > 1:
                try:
                    offset = int(self._evaluator.eval(func.args[1], constant_ctx))
                except UnresolvedColumnError:
                    raise BackendError(f"{name}: offset must be a constant")
            if len(func.args) > 2:
                try:
                    default = self._evaluator.eval(func.args[2], constant_ctx)
                except UnresolvedColumnError:
                    raise BackendError(f"{name}: default must be a constant")
            step = -offset if name == "LAG" else offset
            for position, index in enumerate(ordered):
                source = position + step
                if 0 <= source < len(ordered):
                    ctx = EvalContext(rows[ordered[source]], env, outer)
                    results[index] = self._evaluator.eval(func.args[0], ctx)
                else:
                    results[index] = default
            return
        if name in ("FIRST_VALUE", "LAST_VALUE"):
            if not ordered:
                return
            pick = ordered[0] if name == "FIRST_VALUE" else ordered[-1]
            ctx = EvalContext(rows[pick], env, outer)
            value = self._evaluator.eval(func.args[0], ctx)
            for index in ordered:
                results[index] = value
            return
        if fl.is_aggregate_name(name):
            if not func.order_by:
                acc = fl.make_accumulator(name, star=not func.args)
                for index in ordered:
                    ctx = EvalContext(rows[index], env, outer)
                    acc.add(self._evaluator.eval(func.args[0], ctx) if func.args else 1)
                value = acc.result()
                for index in ordered:
                    results[index] = value
                return
            # Running aggregate with RANGE ... CURRENT ROW peer semantics.
            acc = fl.make_accumulator(name, star=not func.args)
            position = 0
            while position < len(ordered):
                peer_end = position
                while (peer_end + 1 < len(ordered)
                       and peer_keys[peer_end + 1] == peer_keys[position]):
                    peer_end += 1
                for cursor in range(position, peer_end + 1):
                    index = ordered[cursor]
                    ctx = EvalContext(rows[index], env, outer)
                    acc.add(self._evaluator.eval(func.args[0], ctx) if func.args else 1)
                value = acc.result()
                for cursor in range(position, peer_end + 1):
                    results[ordered[cursor]] = value
                position = peer_end + 1
            return
        raise BackendError(f"unknown window function {func.name}()")

    # -- set operations ------------------------------------------------------------------

    def _setop(self, node: SetOp, outer):
        left_cols, left_rows = self._execute(node.left, outer)
        out_cols = node.output_columns()
        if node.kind is SetOpKind.UNION:
            __, right_rows = self._execute(node.right, outer)

            def union():
                yield from left_rows
                yield from right_rows
            combined = union()
            if node.all:
                return out_cols, combined
            return out_cols, _dedupe_stream(combined)
        # INTERSECT/EXCEPT probe the materialized right side per left row.
        __, right_rows = self._materialize(node.right, outer)
        if node.kind is SetOpKind.INTERSECT:
            def intersect():
                counts = _count_rows(right_rows)
                for row in left_rows:
                    key = _hashable_row(row)
                    if counts.get(key, 0) > 0:
                        yield row
                        if node.all:
                            counts[key] -= 1
                        else:
                            # Zeroing the key also dedupes the output.
                            counts[key] = 0
            return out_cols, intersect()

        def except_():
            counts = _count_rows(right_rows)
            for row in left_rows:
                key = _hashable_row(row)
                if counts.get(key, 0) > 0:
                    if node.all:
                        counts[key] -= 1
                    continue
                yield row
        kept = except_()
        return out_cols, kept if node.all else _dedupe_stream(kept)

    # -- CTEs -------------------------------------------------------------------------------

    def _with(self, node: With, outer):
        frame: dict[str, tuple[list[OutputColumn], list[tuple]]] = {}
        self._cte_frames.append(frame)
        try:
            for cte in node.ctes:
                if cte.recursive:
                    if not self._profile.recursive_cte:
                        raise BackendError(
                            "recursive common table expressions are not "
                            "supported by this system")
                    frame[cte.name.upper()] = self._run_recursive_cte(cte, outer)
                else:
                    # CTE results are shared across references: materialize.
                    columns, rows = self._materialize(cte.plan, outer)
                    frame[cte.name.upper()] = (columns, rows)
            # Safe even though the body may stream: CTE references resolve
            # eagerly while the plan tree is instantiated, so no lazy row
            # flow looks the frame up after this pop.
            return self._execute(node.body, outer)
        finally:
            self._cte_frames.pop()

    def _run_recursive_cte(self, cte, outer):
        plan = cte.plan
        if not isinstance(plan, SetOp) or plan.kind is not SetOpKind.UNION:
            raise BackendError("recursive CTE must be seed UNION ALL recursive-term")
        frame = self._cte_frames[-1]
        seed_cols, work = self._materialize(plan.left, outer)
        all_rows = list(work)
        rounds = 0
        while work:
            rounds += 1
            if rounds > _MAX_RECURSION_ROUNDS:
                raise BackendError("recursive CTE exceeded iteration limit")
            frame[cte.name.upper()] = (seed_cols, work)
            __, produced = self._materialize(plan.right, outer)
            work = produced
            all_rows.extend(produced)
        frame[cte.name.upper()] = (seed_cols, all_rows)
        return seed_cols, all_rows

    _HANDLERS = {}


Executor._HANDLERS = {
    Get: Executor._get,
    Values: Executor._values,
    CTERef: Executor._cte_ref,
    Filter: Executor._filter,
    Project: Executor._project,
    DerivedTable: Executor._derived,
    Distinct: Executor._distinct,
    Sort: Executor._sort,
    Limit: Executor._limit,
    Join: Executor._join,
    Aggregate: Executor._aggregate,
    Window: Executor._window,
    SetOp: Executor._setop,
    With: Executor._with,
}


# -- small helpers ----------------------------------------------------------------

def _as_list(rows: Iterable[tuple]) -> list[tuple]:
    """Materialize a row iterable (no-op for lists)."""
    return rows if isinstance(rows, list) else list(rows)


def _batched(rows: Iterable[tuple], batch_rows: int) -> Iterator[list[tuple]]:
    """Chunk a row iterable into lists of at most *batch_rows* rows."""
    iterator = iter(rows)
    while True:
        batch = list(islice(iterator, batch_rows))
        if not batch:
            return
        yield batch


def _dedupe_stream(rows: Iterable[tuple]) -> Iterator[tuple]:
    """Streaming first-occurrence dedupe (same key rules as `_dedupe`)."""
    seen: set = set()
    for row in rows:
        key = _hashable_row(row)
        if key not in seen:
            seen.add(key)
            yield row


def _contains_subquery(expr: ScalarExpr) -> bool:
    """True if *expr* embeds a subquery (forces eager evaluation: lazy row
    flow must not outlive the CTE frames a correlated plan resolves in)."""
    from repro.xtra.scalars import SubqueryExpr
    from repro.xtra.visitor import walk_scalars

    return any(isinstance(node, SubqueryExpr) for node in walk_scalars(expr))


class _SortValue:
    """Total-ordering wrapper so heterogeneous-but-compatible values sort."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        left, right = self.value, other.value
        if isinstance(left, str) and isinstance(right, str):
            return left.rstrip() < right.rstrip()
        return left < right

    def __eq__(self, other):
        left, right = self.value, other.value
        if isinstance(left, str) and isinstance(right, str):
            return left.rstrip() == right.rstrip()
        return left == right


def _hashable_row(row: tuple) -> tuple:
    """Make a row usable as a dict key (floats that are integral fold to int)."""
    return tuple(
        int(value) if isinstance(value, float) and value.is_integer() else
        value.rstrip() if isinstance(value, str) else value
        for value in row
    )


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    out = []
    for row in rows:
        key = _hashable_row(row)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


def _count_rows(rows: list[tuple]) -> dict:
    counts: dict = {}
    for row in rows:
        key = _hashable_row(row)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _flatten_and(expr: ScalarExpr) -> list[ScalarExpr]:
    if isinstance(expr, BoolOp) and expr.op is BoolOpKind.AND:
        out: list[ScalarExpr] = []
        for arg in expr.args:
            out.extend(_flatten_and(arg))
        return out
    return [expr]


def _side_of(expr: ScalarExpr, left_env: Env, right_env: Env) -> Optional[str]:
    """Which join side an expression's column references belong to.

    Returns "L", "R", or None (mixed / unresolved / no references at all —
    constant expressions are unusable as hash keys for sidedness).
    """
    from repro.xtra.visitor import walk_scalars

    refs = [node for node in walk_scalars(expr) if isinstance(node, ColumnRef)]
    if not refs:
        return None
    sides = set()
    for ref in refs:
        try:
            in_left = left_env.try_resolve(ref.name, ref.table) is not None
        except BackendError:
            in_left = True  # ambiguous within left side: still left
        try:
            in_right = right_env.try_resolve(ref.name, ref.table) is not None
        except BackendError:
            in_right = True
        if in_left and not in_right:
            sides.add("L")
        elif in_right and not in_left:
            sides.add("R")
        else:
            return None
    if sides == {"L"}:
        return "L"
    if sides == {"R"}:
        return "R"
    return None
