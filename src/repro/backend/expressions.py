"""Runtime scalar evaluation for the backend executor.

Implements SQL three-valued logic (``None`` doubles as UNKNOWN), strict type
checking on mixed-type operations (the backend rejects Teradata-isms like
``date > 1140101`` unless its capability profile says otherwise), vector
comparisons for quantified subqueries, and LIKE pattern matching.
"""

from __future__ import annotations

import datetime
import re
from typing import Callable, Optional, Sequence

from repro.errors import BackendError, TypeMismatchError
from repro.transform.capabilities import CapabilityProfile
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.relational import OutputColumn, RelNode
from repro.xtra.scalars import (
    AggCall, Arith, ArithOp, Between, BoolOp, BoolOpKind, Case, Cast,
    ColumnRef, Comp, CompOp, Const, Extract, ExtractField, FuncCall, InList,
    IsNull, Like, Negate, Not, Param, Quantifier, ScalarExpr, SubqueryExpr,
    SubqueryKind,
)
from repro.backend import functions as fl


class Env:
    """Column name environment for one operator's input rows."""

    def __init__(self, columns: Sequence[OutputColumn]):
        self.columns = list(columns)
        self._by_name: dict[str, list[int]] = {}
        self._by_qualified: dict[tuple[str, str], list[int]] = {}
        for index, col in enumerate(self.columns):
            self._by_name.setdefault(col.name, []).append(index)
            if col.qualifier:
                self._by_qualified.setdefault((col.qualifier, col.name), []).append(index)

    def try_resolve(self, name: str, qualifier: Optional[str]) -> Optional[int]:
        """Return the column index or None when not found.

        Ambiguity (duplicate unqualified name across inputs) raises.
        """
        if qualifier:
            hits = self._by_qualified.get((qualifier.upper(), name.upper()), [])
        else:
            hits = self._by_name.get(name.upper(), [])
        if not hits:
            return None
        if len(hits) > 1 and not qualifier:
            raise BackendError(f"ambiguous column reference {name!r}")
        return hits[0]


class UnresolvedColumnError(BackendError):
    """A column reference matched no scope — also used by the executor to
    detect correlation when probing subqueries."""


class EvalContext:
    """A row binding plus the chain of outer rows for correlated subqueries."""

    __slots__ = ("row", "env", "parent")

    def __init__(self, row: tuple, env: Env, parent: Optional["EvalContext"] = None):
        self.row = row
        self.env = env
        self.parent = parent

    def lookup(self, ref: ColumnRef) -> object:
        ctx: Optional[EvalContext] = self
        while ctx is not None:
            index = ctx.env.try_resolve(ref.name, ref.table)
            if index is not None:
                return ctx.row[index]
            ctx = ctx.parent
        raise UnresolvedColumnError(f"unresolved column reference {ref.qualified()!r}")


SubqueryRunner = Callable[[RelNode, Optional[EvalContext]], tuple[list[OutputColumn], list[tuple]]]


class Evaluator:
    """Evaluates scalar expressions against rows, honoring the backend's
    capability profile for type-mixing rules."""

    def __init__(self, profile: CapabilityProfile, run_subquery: SubqueryRunner):
        self._profile = profile
        self._run_subquery = run_subquery

    # -- entry point --------------------------------------------------------

    def eval(self, expr: ScalarExpr, ctx: EvalContext) -> object:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise BackendError(f"cannot evaluate {type(expr).__name__}")
        return method(self, expr, ctx)

    def eval_bool(self, expr: ScalarExpr, ctx: EvalContext) -> bool:
        """Evaluate a predicate; UNKNOWN (None) counts as not satisfied."""
        return self.eval(expr, ctx) is True

    # -- node handlers --------------------------------------------------------

    def _const(self, expr: Const, ctx: EvalContext) -> object:
        return expr.value

    def _column(self, expr: ColumnRef, ctx: EvalContext) -> object:
        return ctx.lookup(expr)

    def _param(self, expr: Param, ctx: EvalContext) -> object:
        raise BackendError(f"unbound parameter {expr.name!r}")

    def _negate(self, expr: Negate, ctx: EvalContext) -> object:
        value = self.eval(expr.operand, ctx)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeMismatchError(f"cannot negate {type(value).__name__}")
        return -value

    def _arith(self, expr: Arith, ctx: EvalContext) -> object:
        left = self.eval(expr.left, ctx)
        right = self.eval(expr.right, ctx)
        if left is None or right is None:
            return None
        return self.apply_arith(expr.op, left, right)

    def apply_arith(self, op: ArithOp, left: object, right: object) -> object:
        if op is ArithOp.CONCAT:
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            raise TypeMismatchError("|| requires text operands")
        left_num = _is_number(left)
        right_num = _is_number(right)
        if left_num and right_num:
            if op is ArithOp.ADD:
                return left + right
            if op is ArithOp.SUB:
                return left - right
            if op is ArithOp.MUL:
                return left * right
            if op is ArithOp.DIV:
                if right == 0:
                    raise BackendError("division by zero")
                result = left / right
                return result
            if op is ArithOp.MOD:
                if right == 0:
                    raise BackendError("division by zero")
                return left % right
            if op is ArithOp.POW:
                return left ** right
        # date arithmetic -----------------------------------------------------
        left_date = isinstance(left, datetime.date) and not isinstance(left, datetime.datetime)
        right_date = isinstance(right, datetime.date) and not isinstance(right, datetime.datetime)
        if left_date and right_date and op is ArithOp.SUB:
            return (left - right).days
        if self._profile.date_int_arithmetic:
            if left_date and right_num and op in (ArithOp.ADD, ArithOp.SUB):
                days = int(right) if op is ArithOp.ADD else -int(right)
                return left + datetime.timedelta(days=days)
            if right_date and left_num and op is ArithOp.ADD:
                return right + datetime.timedelta(days=int(left))
        raise TypeMismatchError(
            f"operator {op.value} undefined for "
            f"{type(left).__name__} and {type(right).__name__}")

    def _comp(self, expr: Comp, ctx: EvalContext) -> object:
        left = self.eval(expr.left, ctx)
        right = self.eval(expr.right, ctx)
        return self.compare(expr.op, left, right)

    def compare(self, op: CompOp, left: object, right: object) -> object:
        """Three-valued comparison with strict type mixing rules."""
        if left is None or right is None:
            return None
        order = self._order(left, right)
        if op is CompOp.EQ:
            return order == 0
        if op is CompOp.NE:
            return order != 0
        if op is CompOp.LT:
            return order < 0
        if op is CompOp.LE:
            return order <= 0
        if op is CompOp.GT:
            return order > 0
        return order >= 0

    def _order(self, left: object, right: object) -> int:
        """-1/0/+1 ordering of two non-NULL values; raises on type mixing."""
        if _is_number(left) and _is_number(right):
            return (left > right) - (left < right)
        if isinstance(left, str) and isinstance(right, str):
            # CHAR padding: SQL compares ignoring trailing blanks.
            ls, rs = left.rstrip(), right.rstrip()
            return (ls > rs) - (ls < rs)
        left_dt = isinstance(left, (datetime.date, datetime.datetime))
        right_dt = isinstance(right, (datetime.date, datetime.datetime))
        if left_dt and right_dt:
            left_n = _as_datetime(left)
            right_n = _as_datetime(right)
            return (left_n > right_n) - (left_n < right_n)
        if left_dt and _is_number(right) or right_dt and _is_number(left):
            if self._profile.date_int_comparison:
                left_v = t.date_to_teradata_int(left) if left_dt else left
                right_v = t.date_to_teradata_int(right) if right_dt else right
                return (left_v > right_v) - (left_v < right_v)
            raise TypeMismatchError(
                "cannot compare DATE with a numeric value on this system")
        if isinstance(left, bool) and isinstance(right, bool):
            return (left > right) - (left < right)
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}")

    def _bool(self, expr: BoolOp, ctx: EvalContext) -> object:
        if expr.op is BoolOpKind.AND:
            saw_unknown = False
            for arg in expr.args:
                value = self.eval(arg, ctx)
                if value is False:
                    return False
                if value is None:
                    saw_unknown = True
            return None if saw_unknown else True
        saw_unknown = False
        for arg in expr.args:
            value = self.eval(arg, ctx)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False

    def _not(self, expr: Not, ctx: EvalContext) -> object:
        value = self.eval(expr.operand, ctx)
        if value is None:
            return None
        return not value

    def _is_null(self, expr: IsNull, ctx: EvalContext) -> object:
        value = self.eval(expr.operand, ctx)
        result = value is None
        return not result if expr.negated else result

    def _in_list(self, expr: InList, ctx: EvalContext) -> object:
        value = self.eval(expr.operand, ctx)
        if value is None:
            return None
        saw_unknown = False
        for item in expr.items:
            item_value = self.eval(item, ctx)
            verdict = self.compare(CompOp.EQ, value, item_value)
            if verdict is True:
                return False if expr.negated else True
            if verdict is None:
                saw_unknown = True
        if saw_unknown:
            return None
        return True if expr.negated else False

    def _between(self, expr: Between, ctx: EvalContext) -> object:
        value = self.eval(expr.operand, ctx)
        low = self.eval(expr.low, ctx)
        high = self.eval(expr.high, ctx)
        lo_ok = self.compare(CompOp.GE, value, low)
        hi_ok = self.compare(CompOp.LE, value, high)
        combined = _and3(lo_ok, hi_ok)
        if combined is None:
            return None
        return not combined if expr.negated else combined

    def _like(self, expr: Like, ctx: EvalContext) -> object:
        value = self.eval(expr.operand, ctx)
        pattern = self.eval(expr.pattern, ctx)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise TypeMismatchError("LIKE requires text operands")
        result = like_match(value, pattern, expr.escape)
        return not result if expr.negated else result

    def _func(self, expr: FuncCall, ctx: EvalContext) -> object:
        args = [self.eval(arg, ctx) for arg in expr.args]
        return fl.call_scalar(expr.name, args)

    def _agg(self, expr: AggCall, ctx: EvalContext) -> object:
        raise BackendError(
            f"aggregate {expr.name} used outside GROUP BY context")

    def _case(self, expr: Case, ctx: EvalContext) -> object:
        operand = self.eval(expr.operand, ctx) if expr.operand is not None else None
        for condition, result in zip(expr.conditions, expr.results):
            if expr.operand is not None:
                verdict = self.compare(CompOp.EQ, operand, self.eval(condition, ctx))
            else:
                verdict = self.eval(condition, ctx)
            if verdict is True:
                return self.eval(result, ctx)
        if expr.default is not None:
            return self.eval(expr.default, ctx)
        return None

    def _cast(self, expr: Cast, ctx: EvalContext) -> object:
        value = self.eval(expr.operand, ctx)
        return cast_value(value, expr.type)

    def _extract(self, expr: Extract, ctx: EvalContext) -> object:
        value = self.eval(expr.operand, ctx)
        if value is None:
            return None
        if not isinstance(value, (datetime.date, datetime.datetime, datetime.time)):
            raise TypeMismatchError("EXTRACT requires a temporal operand")
        field = expr.field_name
        if field is ExtractField.YEAR:
            return value.year
        if field is ExtractField.MONTH:
            return value.month
        if field is ExtractField.DAY:
            return value.day
        if field is ExtractField.HOUR:
            return getattr(value, "hour", 0)
        if field is ExtractField.MINUTE:
            return getattr(value, "minute", 0)
        return getattr(value, "second", 0)

    #: id(SubqueryExpr) -> callable(ctx) -> value; installed by the executor
    #: when it decorrelates a subquery into a hash lookup.
    subquery_overrides: dict[int, Callable[[EvalContext], object]]

    def _subquery(self, expr: SubqueryExpr, ctx: EvalContext) -> object:
        override = getattr(self, "subquery_overrides", None)
        if override:
            handler = override.get(id(expr))
            if handler is not None:
                return handler(ctx)
        if expr.kind is SubqueryKind.EXISTS:
            __, rows = self._run_subquery(expr.plan, ctx)
            result = bool(rows)
            return not result if expr.negated else result
        if expr.kind is SubqueryKind.SCALAR:
            __, rows = self._run_subquery(expr.plan, ctx)
            if not rows:
                return None
            if len(rows) > 1:
                raise BackendError("scalar subquery returned more than one row")
            if len(rows[0]) != 1:
                raise BackendError("scalar subquery must return one column")
            return rows[0][0]
        if expr.kind is SubqueryKind.IN:
            return self._quantified(expr, ctx, CompOp.EQ, Quantifier.ANY)
        # QUANTIFIED
        if len(expr.left) > 1 and not self._profile.vector_subquery:
            raise BackendError(
                "vector comparison in quantified subquery is not supported "
                "by this system")
        return self._quantified(expr, ctx, expr.op or CompOp.EQ,
                                expr.quantifier or Quantifier.ANY)

    def _quantified(self, expr: SubqueryExpr, ctx: EvalContext,
                    op: CompOp, quantifier: Quantifier) -> object:
        left_values = [self.eval(item, ctx) for item in expr.left]
        __, rows = self._run_subquery(expr.plan, ctx)
        if len(rows) and len(rows[0]) != len(left_values):
            raise BackendError(
                f"subquery returns {len(rows[0])} columns, expected {len(left_values)}")
        verdicts = [self._vector_compare(op, left_values, list(row)) for row in rows]
        if quantifier is Quantifier.ANY:
            if any(v is True for v in verdicts):
                result: object = True
            elif any(v is None for v in verdicts):
                result = None
            else:
                result = False
        else:  # ALL
            if any(v is False for v in verdicts):
                result = False
            elif any(v is None for v in verdicts):
                result = None
            else:
                result = True
        if result is None:
            return None
        return not result if expr.negated else result

    def _vector_compare(self, op: CompOp, left: list[object], right: list[object]) -> object:
        """Lexicographic vector comparison with SQL NULL semantics.

        For a single element this degenerates to a plain comparison. For the
        Teradata vector construct ``(a, b) > (g, n)`` it implements
        ``a > g OR (a = g AND b > n)`` as defined in Section 5.
        """
        if len(left) == 1:
            return self.compare(op, left[0], right[0])
        if op in (CompOp.EQ, CompOp.NE):
            verdict: object = True
            for lv, rv in zip(left, right):
                part = self.compare(CompOp.EQ, lv, rv)
                verdict = _and3(verdict, part)
            if op is CompOp.NE:
                return None if verdict is None else not verdict
            return verdict
        strict = CompOp.GT if op in (CompOp.GT, CompOp.GE) else CompOp.LT
        # Lexicographic: strict on some prefix position, equal before it.
        result: object = False
        # Build OR over positions.
        for position in range(len(left)):
            term: object = True
            for prefix in range(position):
                term = _and3(term, self.compare(CompOp.EQ, left[prefix], right[prefix]))
            term = _and3(term, self.compare(strict, left[position], right[position]))
            result = _or3(result, term)
        if op in (CompOp.GE, CompOp.LE):
            all_eq: object = True
            for lv, rv in zip(left, right):
                all_eq = _and3(all_eq, self.compare(CompOp.EQ, lv, rv))
            result = _or3(result, all_eq)
        return result

    _DISPATCH = {}


Evaluator._DISPATCH = {
    Const: Evaluator._const,
    ColumnRef: Evaluator._column,
    Param: Evaluator._param,
    Negate: Evaluator._negate,
    Arith: Evaluator._arith,
    Comp: Evaluator._comp,
    BoolOp: Evaluator._bool,
    Not: Evaluator._not,
    IsNull: Evaluator._is_null,
    InList: Evaluator._in_list,
    Between: Evaluator._between,
    Like: Evaluator._like,
    FuncCall: Evaluator._func,
    AggCall: Evaluator._agg,
    Case: Evaluator._case,
    Cast: Evaluator._cast,
    Extract: Evaluator._extract,
    SubqueryExpr: Evaluator._subquery,
}


# -- helpers -------------------------------------------------------------------

def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _as_datetime(value) -> datetime.datetime:
    if isinstance(value, datetime.datetime):
        return value
    return datetime.datetime(value.year, value.month, value.day)


def _and3(left: object, right: object) -> object:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _or3(left: object, right: object) -> object:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


_LIKE_CACHE: dict[tuple[str, Optional[str]], re.Pattern] = {}


def like_match(value: str, pattern: str, escape: Optional[str]) -> bool:
    """SQL LIKE matching with %/_ wildcards and optional escape character."""
    key = (pattern, escape)
    compiled = _LIKE_CACHE.get(key)
    if compiled is None:
        parts: list[str] = []
        index = 0
        while index < len(pattern):
            char = pattern[index]
            if escape and char == escape and index + 1 < len(pattern):
                parts.append(re.escape(pattern[index + 1]))
                index += 2
                continue
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
            index += 1
        compiled = re.compile("^" + "".join(parts) + "$", re.DOTALL)
        if len(_LIKE_CACHE) > 4096:
            _LIKE_CACHE.clear()
        _LIKE_CACHE[key] = compiled
    return compiled.match(value) is not None


def cast_value(value: object, target: t.SQLType) -> object:
    """CAST semantics used by both the evaluator and the result pipeline."""
    if value is None:
        return None
    kind = target.kind
    if kind in (t.TypeKind.SMALLINT, t.TypeKind.INTEGER, t.TypeKind.BIGINT):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float)):
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError as exc:
                raise BackendError(f"cannot cast {value!r} to {kind.value}") from exc
        raise TypeMismatchError(f"cannot cast {type(value).__name__} to {kind.value}")
    if kind in (t.TypeKind.DECIMAL, t.TypeKind.FLOAT):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            result = float(value)
            if kind is t.TypeKind.DECIMAL and target.scale is not None:
                return round(result, target.scale)
            return result
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise BackendError(f"cannot cast {value!r} to {kind.value}") from exc
        raise TypeMismatchError(f"cannot cast {type(value).__name__} to {kind.value}")
    if kind in (t.TypeKind.CHAR, t.TypeKind.VARCHAR):
        if isinstance(value, str):
            text = value
        elif isinstance(value, bool):
            text = "TRUE" if value else "FALSE"
        elif isinstance(value, float) and value.is_integer():
            text = str(int(value))
        else:
            text = str(value)
        if target.length is not None:
            text = text[: target.length]
            if kind is t.TypeKind.CHAR:
                text = text.ljust(target.length)
        return text
    if kind is t.TypeKind.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value.strip())
            except ValueError as exc:
                raise BackendError(f"cannot cast {value!r} to DATE") from exc
        if isinstance(value, int):
            # Teradata semantics: integer is the internal date encoding.
            try:
                return t.teradata_int_to_date(value)
            except ValueError as exc:
                raise BackendError(f"cannot cast {value!r} to DATE") from exc
        raise TypeMismatchError(f"cannot cast {type(value).__name__} to DATE")
    if kind is t.TypeKind.TIMESTAMP:
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            try:
                return datetime.datetime.fromisoformat(value.strip())
            except ValueError as exc:
                raise BackendError(f"cannot cast {value!r} to TIMESTAMP") from exc
        raise TypeMismatchError(f"cannot cast {type(value).__name__} to TIMESTAMP")
    if kind is t.TypeKind.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return bool(value)
        raise TypeMismatchError(f"cannot cast {type(value).__name__} to BOOLEAN")
    return value
