"""Builtin scalar and aggregate function library of the backend.

Scalar names here are the *target dialect* (ANSI-flavoured) spellings the
Hyper-Q serializer emits: Teradata spellings like ``CHARS`` or ``ZEROIFNULL``
never reach the backend — the translation layer rewrites them (Table 2).
"""

from __future__ import annotations

import datetime
import math
from typing import Callable, Optional

from repro.errors import BackendError, TypeMismatchError

_SystemClock = datetime.datetime(2018, 6, 10, 12, 0, 0)  # fixed for determinism


def _require_text(name: str, value: object) -> str:
    if not isinstance(value, str):
        raise TypeMismatchError(f"{name} requires a text argument")
    return value


def _require_number(name: str, value: object):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(f"{name} requires a numeric argument")
    return value


def _require_date(name: str, value: object) -> datetime.date:
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    raise TypeMismatchError(f"{name} requires a date argument")


def _add_months(value: datetime.date, months: int) -> datetime.date:
    month_index = value.year * 12 + (value.month - 1) + months
    year, month = divmod(month_index, 12)
    month += 1
    day = min(value.day, _days_in_month(year, month))
    if isinstance(value, datetime.datetime):
        return value.replace(year=year, month=month, day=day)
    return datetime.date(year, month, day)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (datetime.date(year, month + 1, 1) - datetime.timedelta(days=1)).day


def _dateadd(unit: object, amount: object, value: object):
    if amount is None or value is None:
        return None
    unit_name = _require_text("DATEADD", unit).upper()
    date_value = _require_date("DATEADD", value)
    count = int(_require_number("DATEADD", amount))
    if unit_name == "DAY":
        return date_value + datetime.timedelta(days=count)
    if unit_name == "MONTH":
        return _add_months(date_value, count)
    if unit_name == "YEAR":
        return _add_months(date_value, count * 12)
    raise BackendError(f"DATEADD: unsupported unit {unit_name!r}")


def _datediff(unit: object, start: object, end: object):
    if start is None or end is None:
        return None
    unit_name = _require_text("DATEDIFF", unit).upper()
    start_date = _require_date("DATEDIFF", start)
    end_date = _require_date("DATEDIFF", end)
    if unit_name == "DAY":
        return (end_date - start_date).days
    if unit_name == "MONTH":
        return (end_date.year - start_date.year) * 12 + end_date.month - start_date.month
    if unit_name == "YEAR":
        return end_date.year - start_date.year
    raise BackendError(f"DATEDIFF: unsupported unit {unit_name!r}")


def _substring(value: object, start: object, length: object = None):
    if value is None or start is None:
        return None
    text = _require_text("SUBSTRING", value)
    begin = int(_require_number("SUBSTRING", start))
    # SQL is 1-based; positions <= 0 shift the window.
    zero_based = begin - 1
    if length is None:
        return text[max(zero_based, 0):]
    count = int(_require_number("SUBSTRING", length))
    if count < 0:
        raise BackendError("SUBSTRING: negative length")
    end = zero_based + count
    return text[max(zero_based, 0):max(end, 0)]


def _position(needle: object, haystack: object):
    if needle is None or haystack is None:
        return None
    sub = _require_text("POSITION", needle)
    text = _require_text("POSITION", haystack)
    return text.find(sub) + 1


def _round(value: object, digits: object = 0):
    if value is None:
        return None
    number = _require_number("ROUND", value)
    places = int(_require_number("ROUND", digits)) if digits is not None else 0
    result = round(number + 0.0, places)
    return result if places > 0 else (int(result) if float(result).is_integer() and isinstance(number, int) else result)


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(left, right):
    if left is None:
        return None
    if right is not None and left == right:
        return None
    return left


def _trim(value):
    if value is None:
        return None
    return _require_text("TRIM", value).strip()


def _null_prop(name: str, fn: Callable) -> Callable:
    """Wrap a function so any NULL argument yields NULL."""
    def wrapper(*args):
        if any(arg is None for arg in args):
            return None
        return fn(*args)
    wrapper.__name__ = name.lower()
    return wrapper


SCALAR_FUNCTIONS: dict[str, Callable] = {
    # text ------------------------------------------------------------------
    "LENGTH": _null_prop("LENGTH", lambda v: len(_require_text("LENGTH", v).rstrip())),
    "CHAR_LENGTH": _null_prop("CHAR_LENGTH", lambda v: len(_require_text("CHAR_LENGTH", v).rstrip())),
    "UPPER": _null_prop("UPPER", lambda v: _require_text("UPPER", v).upper()),
    "LOWER": _null_prop("LOWER", lambda v: _require_text("LOWER", v).lower()),
    "TRIM": _trim,
    "LTRIM": _null_prop("LTRIM", lambda v: _require_text("LTRIM", v).lstrip()),
    "RTRIM": _null_prop("RTRIM", lambda v: _require_text("RTRIM", v).rstrip()),
    "SUBSTRING": _substring,
    "SUBSTR": _substring,
    "POSITION": _position,
    "REPLACE": _null_prop("REPLACE", lambda v, old, new: _require_text("REPLACE", v).replace(old, new)),
    "CONCAT": _null_prop("CONCAT", lambda *parts: "".join(_require_text("CONCAT", p) for p in parts)),
    "LPAD": _null_prop("LPAD", lambda v, n, p=" ": _require_text("LPAD", v).rjust(int(n), p)),
    "RPAD": _null_prop("RPAD", lambda v, n, p=" ": _require_text("RPAD", v).ljust(int(n), p)),
    # numeric ----------------------------------------------------------------
    "ABS": _null_prop("ABS", lambda v: abs(_require_number("ABS", v))),
    "ROUND": _round,
    "FLOOR": _null_prop("FLOOR", lambda v: math.floor(_require_number("FLOOR", v))),
    "CEIL": _null_prop("CEIL", lambda v: math.ceil(_require_number("CEIL", v))),
    "CEILING": _null_prop("CEILING", lambda v: math.ceil(_require_number("CEILING", v))),
    "MOD": _null_prop("MOD", lambda a, b: _require_number("MOD", a) % _require_number("MOD", b)),
    "POWER": _null_prop("POWER", lambda a, b: _require_number("POWER", a) ** _require_number("POWER", b)),
    "SQRT": _null_prop("SQRT", lambda v: math.sqrt(_require_number("SQRT", v))),
    "EXP": _null_prop("EXP", lambda v: math.exp(_require_number("EXP", v))),
    "LN": _null_prop("LN", lambda v: math.log(_require_number("LN", v))),
    "SIGN": _null_prop("SIGN", lambda v: (0 if v == 0 else (1 if v > 0 else -1))),
    # null handling -----------------------------------------------------------
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    # temporal ------------------------------------------------------------------
    "DATEADD": _dateadd,
    "DATEDIFF": _datediff,
    "ADD_MONTHS": _null_prop(
        "ADD_MONTHS", lambda d, n: _add_months(_require_date("ADD_MONTHS", d), int(n))),
    "LAST_DAY": _null_prop(
        "LAST_DAY",
        lambda d: _require_date("LAST_DAY", d).replace(
            day=_days_in_month(_require_date("LAST_DAY", d).year,
                               _require_date("LAST_DAY", d).month))),
    "CURRENT_DATE": lambda: _SystemClock.date(),
    "CURRENT_TIMESTAMP": lambda: _SystemClock,
    # misc -----------------------------------------------------------------------
    "GREATEST": _null_prop("GREATEST", lambda *vs: max(vs)),
    "LEAST": _null_prop("LEAST", lambda *vs: min(vs)),
}


def call_scalar(name: str, args: list[object]) -> object:
    """Dispatch a scalar function call by normalized name."""
    fn = SCALAR_FUNCTIONS.get(name.upper())
    if fn is None:
        raise BackendError(f"unknown function {name}()")
    try:
        return fn(*args)
    except TypeError as exc:
        raise BackendError(f"{name}(): bad argument count or types: {exc}") from exc


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

class Accumulator:
    """Base aggregate accumulator (one instance per group)."""

    def add(self, value: object) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class _Sum(Accumulator):
    def __init__(self):
        self._total = None

    def add(self, value):
        if value is None:
            return
        _require_number("SUM", value)
        self._total = value if self._total is None else self._total + value

    def result(self):
        return self._total


class _Count(Accumulator):
    def __init__(self):
        self._count = 0

    def add(self, value):
        if value is not None:
            self._count += 1

    def result(self):
        return self._count


class _CountStar(Accumulator):
    def __init__(self):
        self._count = 0

    def add(self, value):
        self._count += 1

    def result(self):
        return self._count


class _Avg(Accumulator):
    def __init__(self):
        self._total = 0.0
        self._count = 0

    def add(self, value):
        if value is None:
            return
        self._total += _require_number("AVG", value)
        self._count += 1

    def result(self):
        if self._count == 0:
            return None
        return self._total / self._count


class _Min(Accumulator):
    def __init__(self):
        self._value = None

    def add(self, value):
        if value is None:
            return
        if self._value is None or value < self._value:
            self._value = value

    def result(self):
        return self._value


class _Max(Accumulator):
    def __init__(self):
        self._value = None

    def add(self, value):
        if value is None:
            return
        if self._value is None or value > self._value:
            self._value = value

    def result(self):
        return self._value


class _StddevSamp(Accumulator):
    """Welford's online algorithm; NULL for fewer than two inputs."""

    def __init__(self):
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value):
        if value is None:
            return
        number = _require_number("STDDEV_SAMP", value)
        self._count += 1
        delta = number - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (number - self._mean)

    def result(self):
        if self._count < 2:
            return None
        return math.sqrt(self._m2 / (self._count - 1))


class _Distinct(Accumulator):
    """Wrapper enforcing DISTINCT before delegating to an inner accumulator."""

    def __init__(self, inner: Accumulator):
        self._inner = inner
        self._seen: set = set()

    def add(self, value):
        if value is None:
            self._inner.add(value)
            return
        if value in self._seen:
            return
        self._seen.add(value)
        self._inner.add(value)

    def result(self):
        return self._inner.result()


_AGGREGATES: dict[str, Callable[[], Accumulator]] = {
    "SUM": _Sum,
    "COUNT": _Count,
    "AVG": _Avg,
    "MIN": _Min,
    "MAX": _Max,
    "STDDEV_SAMP": _StddevSamp,
}


def make_accumulator(name: str, distinct: bool = False, star: bool = False) -> Accumulator:
    """Create a fresh accumulator for one group."""
    if star:
        return _CountStar()
    factory = _AGGREGATES.get(name.upper())
    if factory is None:
        raise BackendError(f"unknown aggregate {name}()")
    acc = factory()
    if distinct:
        return _Distinct(acc)
    return acc


def is_aggregate_name(name: str) -> bool:
    return name.upper() in _AGGREGATES
