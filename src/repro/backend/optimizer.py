"""Predicate pushdown for the backend executor.

TPC-H-style queries spell joins as comma-separated FROM lists with the join
conditions in WHERE; executed literally that is a cross product. This pass
pushes each WHERE conjunct to the lowest point in the join tree where all of
its column references resolve:

* single-side conjuncts become Filters on that join input,
* two-side conjuncts become join conditions (turning CROSS into INNER),
* conjuncts containing subqueries stay in the top Filter so the executor's
  decorrelation logic sees them against the full row.

Only INNER/CROSS joins participate; outer-join inputs are left untouched
(pushing below an outer join changes semantics).
"""

from __future__ import annotations

from repro.backend.expressions import Env
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.relational import RelNode
from repro.xtra.scalars import ScalarExpr
from repro.xtra.visitor import rewrite_rel, walk_scalars


def optimize(plan: RelNode) -> RelNode:
    """Apply predicate pushdown everywhere in a plan (incl. subquery plans)."""

    def scalar_fn(expr: ScalarExpr) -> ScalarExpr:
        # rewrite_scalars with rel_fn already descends into subquery plans.
        return expr

    return rewrite_rel(plan, _push_node, scalar_fn)


def _push_node(node: RelNode) -> RelNode:
    if isinstance(node, r.Filter) and isinstance(node.child, r.Join):
        return _push_filter(node)
    return node


def _split_and(expr: ScalarExpr) -> list[ScalarExpr]:
    if isinstance(expr, s.BoolOp) and expr.op is s.BoolOpKind.AND:
        out: list[ScalarExpr] = []
        for arg in expr.args:
            out.extend(_split_and(arg))
        return out
    return [expr]


def _contains_subquery(expr: ScalarExpr) -> bool:
    return any(isinstance(node, s.SubqueryExpr) for node in walk_scalars(expr))


def _resolvable(expr: ScalarExpr, env: Env) -> bool:
    """All column refs resolve in *env* (ambiguity or miss -> False)."""
    for node in walk_scalars(expr):
        if isinstance(node, s.ColumnRef):
            try:
                if env.try_resolve(node.name, node.table) is None:
                    return False
            except Exception:
                return False
    return True


def _factor_or(expr: ScalarExpr) -> ScalarExpr:
    """Hoist conjuncts shared by every OR branch: OR(AnX, BnX) -> X AND OR(A, B).

    TPC-H Q19 relies on this: the join predicate ``p_partkey = l_partkey``
    appears inside each disjunct and only becomes a hash-joinable condition
    once factored out.
    """
    if not isinstance(expr, s.BoolOp) or expr.op is not s.BoolOpKind.OR:
        return expr
    branch_conjuncts = [_split_and(arg) for arg in expr.args]
    first = branch_conjuncts[0]
    common: list[ScalarExpr] = []
    for candidate in first:
        if all(any(s.same(candidate, other) for other in branch)
               for branch in branch_conjuncts[1:]):
            common.append(candidate)
    if not common:
        return expr
    reduced_branches: list[ScalarExpr] = []
    for branch in branch_conjuncts:
        rest = [c for c in branch
                if not any(s.same(c, picked) for picked in common)]
        reduced = s.conjoin(rest)
        reduced_branches.append(reduced if reduced is not None
                                else s.Const(True, t.BOOLEAN))
    remaining_or = s.BoolOp(s.BoolOpKind.OR, reduced_branches)
    return s.conjoin(common + [remaining_or])  # type: ignore[return-value]


def _push_filter(node: r.Filter) -> RelNode:
    join = node.child
    assert isinstance(join, r.Join)
    node.predicate = _factor_or(node.predicate)
    conjuncts = _split_and(node.predicate)
    remaining: list[ScalarExpr] = []
    for conjunct in conjuncts:
        if _contains_subquery(conjunct) or not _try_place(join, conjunct):
            remaining.append(conjunct)
    rest = s.conjoin(remaining)
    if rest is None:
        return join
    return r.Filter(join, rest)


def _try_place(join: r.Join, conjunct: ScalarExpr) -> bool:
    """Attempt to sink *conjunct* into the join tree; True on success."""
    if join.kind not in (r.JoinKind.INNER, r.JoinKind.CROSS):
        return False
    left_env = Env(join.left.output_columns())
    right_env = Env(join.right.output_columns())
    in_left = _resolvable(conjunct, left_env)
    in_right = _resolvable(conjunct, right_env)
    if in_left and not in_right:
        join.left = _sink(join.left, conjunct)
        return True
    if in_right and not in_left:
        join.right = _sink(join.right, conjunct)
        return True
    both_env = Env(join.left.output_columns() + join.right.output_columns())
    if not _resolvable(conjunct, both_env):
        return False
    # Spans both sides: becomes (part of) this join's condition.
    if join.condition is None:
        join.condition = conjunct
    else:
        join.condition = s.conjoin([join.condition, conjunct])
    if join.kind is r.JoinKind.CROSS:
        join.kind = r.JoinKind.INNER
    return True


def _sink(node: RelNode, conjunct: ScalarExpr) -> RelNode:
    """Push a single-side conjunct as deep as possible into *node*."""
    if isinstance(node, r.Join) and node.kind in (r.JoinKind.INNER, r.JoinKind.CROSS):
        if _try_place(node, conjunct):
            return node
    if isinstance(node, r.Filter):
        node.predicate = s.conjoin([node.predicate, conjunct])
        return node
    return r.Filter(node, conjunct)
