"""ANSI SQL parser of the backend database (the *target* grammar).

This is deliberately a different grammar from the Teradata frontend: it
accepts the dialect the Hyper-Q serializer emits (plus ordinary hand-written
ANSI SQL) and rejects Teradata-isms — ``SEL``, ``QUALIFY``, implicit joins,
vector subqueries on weak profiles, and so on. Statements parse into the spec
structures of :mod:`repro.backend.planner`, which lowers them to XTRA plans.
"""

from __future__ import annotations

import datetime
from typing import Optional

from repro.errors import BackendError, ParseError
from repro.sqlkit import Lexer, LexerConfig, Token, TokenKind
from repro.transform.capabilities import CapabilityProfile
from repro.backend import planner as p
from repro.backend.dialect import ANSI, dialect_for
from repro.xtra import types as t
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra.schema import ColumnSchema, TableSchema

_KEYWORDS = frozenset("""
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET DISTINCT ALL AS ON
    AND OR NOT IN IS NULL LIKE ESCAPE BETWEEN EXISTS ANY SOME CASE WHEN THEN
    ELSE END CAST EXTRACT SUBSTRING POSITION FOR JOIN INNER LEFT RIGHT FULL
    OUTER CROSS UNION INTERSECT EXCEPT WITH RECURSIVE VALUES INSERT INTO
    UPDATE SET DELETE CREATE TABLE VIEW DROP IF TEMPORARY TEMP REPLACE MERGE
    USING MATCHED ASC DESC NULLS FIRST LAST TOP TIES DATE TIME TIMESTAMP
    INTERVAL YEAR MONTH DAY HOUR MINUTE SECOND TRUE FALSE DEFAULT PRIMARY KEY
    UNIQUE CHECK REFERENCES FOREIGN CONSTRAINT BEGIN COMMIT ROLLBACK WORK
    TRANSACTION OVER PARTITION ROWS RANGE UNBOUNDED PRECEDING FOLLOWING
    CURRENT ROW ROLLUP CUBE GROUPING SETS TRUNCATE
""".split())

_TYPE_NAMES = frozenset("""
    INT INTEGER SMALLINT BIGINT DECIMAL NUMERIC FLOAT DOUBLE REAL CHAR
    CHARACTER VARCHAR TEXT DATE TIME TIMESTAMP BOOLEAN
""".split())

_LEXER_CONFIG = LexerConfig(keywords=_KEYWORDS)

_AGG_NAMES = frozenset({"SUM", "COUNT", "AVG", "MIN", "MAX", "STDDEV_SAMP"})
_WINDOW_ONLY = frozenset({"RANK", "DENSE_RANK", "ROW_NUMBER", "LAG",
                          "LEAD", "FIRST_VALUE", "LAST_VALUE"})


class BackendParser:
    """Recursive-descent parser for the backend dialect."""

    def __init__(self, profile: CapabilityProfile):
        self._profile = profile
        self._dialect = dialect_for(profile.name)
        if self._dialect is ANSI:
            config = _LEXER_CONFIG
        else:
            config = LexerConfig(
                keywords=_KEYWORDS,
                backquote_idents=self._dialect.backquote_idents,
                bracket_idents=self._dialect.bracket_idents)
        self._lexer = Lexer(config)

    # -- entry points ------------------------------------------------------------

    def parse_statement(self, sql: str) -> p.StatementSpec:
        """Parse exactly one statement (a trailing ';' is allowed)."""
        statements = self.parse_script(sql)
        if len(statements) != 1:
            raise ParseError(f"expected one statement, found {len(statements)}")
        return statements[0]

    def parse_script(self, sql: str) -> list[p.StatementSpec]:
        """Parse a ';'-separated statement list."""
        self._tokens = self._lexer.tokenize(sql)
        self._index = 0
        statements: list[p.StatementSpec] = []
        while not self._at(TokenKind.EOF):
            if self._accept_op(";"):
                continue
            statements.append(self._statement())
        return statements

    # -- token plumbing ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _at_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._at_keyword(*names):
            return self._next()
        return None

    def _expect_keyword(self, *names: str) -> Token:
        token = self._accept_keyword(*names)
        if token is None:
            found = self._peek()
            raise ParseError(
                f"expected {' or '.join(names)}, found {found.text or 'end of input'}",
                found.line, found.column)
        return token

    def _accept_op(self, *ops: str) -> Optional[Token]:
        if self._peek().is_op(*ops):
            return self._next()
        return None

    def _expect_op(self, *ops: str) -> Token:
        token = self._accept_op(*ops)
        if token is None:
            found = self._peek()
            raise ParseError(
                f"expected {' or '.join(ops)}, found {found.text or 'end of input'}",
                found.line, found.column)
        return token

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT):
            self._next()
            return str(token.value).upper()
        # Non-reserved keywords usable as identifiers in common positions.
        if token.kind is TokenKind.KEYWORD and token.value in (
                "DATE", "TIME", "TIMESTAMP", "YEAR", "MONTH", "DAY", "FIRST",
                "LAST", "KEY", "WORK", "ROW", "VALUES"):
            self._next()
            return str(token.value)
        raise ParseError(f"expected {what}, found {token.text or 'end of input'}",
                         token.line, token.column)

    # -- statements ---------------------------------------------------------------------

    def _statement(self) -> p.StatementSpec:
        token = self._peek()
        if token.is_keyword("SELECT", "WITH") or token.is_op("("):
            return p.QueryStatementSpec(self._query_expr())
        if token.is_keyword("INSERT"):
            return self._insert()
        if token.is_keyword("UPDATE"):
            return self._update()
        if token.is_keyword("DELETE"):
            return self._delete()
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("MERGE"):
            return self._merge()
        if token.is_keyword("TRUNCATE"):
            self._next()
            self._accept_keyword("TABLE")
            return p.TruncateSpec(self._qualified_name())
        if token.is_keyword("BEGIN"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            return p.TransactionSpec("BEGIN")
        if token.is_keyword("COMMIT"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            return p.TransactionSpec("COMMIT")
        if token.is_keyword("ROLLBACK"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            return p.TransactionSpec("ROLLBACK")
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)

    def _qualified_name(self) -> str:
        name = self._expect_ident("object name")
        while self._accept_op("."):
            # Schemas are flattened into one namespace in this backend.
            name = self._expect_ident("object name")
        return name

    def _insert(self) -> p.InsertSpec:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._qualified_name()
        columns: Optional[list[str]] = None
        if self._peek().is_op("(") and self._looks_like_column_list():
            self._expect_op("(")
            columns = [self._expect_ident("column name")]
            while self._accept_op(","):
                columns.append(self._expect_ident("column name"))
            self._expect_op(")")
        if self._at_keyword("VALUES"):
            self._next()
            rows = [self._values_row()]
            while self._accept_op(","):
                rows.append(self._values_row())
            return p.InsertSpec(table, columns, rows=rows, query=None)
        query = self._query_expr()
        return p.InsertSpec(table, columns, rows=None, query=query)

    def _looks_like_column_list(self) -> bool:
        """Disambiguate ``INSERT INTO t (a, b) ...`` from ``INSERT INTO t (SELECT ...)``."""
        offset = 1
        token = self._peek(offset)
        return token.kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT)

    def _values_row(self) -> list[s.ScalarExpr]:
        self._expect_op("(")
        row = [self._expr()]
        while self._accept_op(","):
            row.append(self._expr())
        self._expect_op(")")
        return row

    def _update(self) -> p.UpdateSpec:
        self._expect_keyword("UPDATE")
        table = self._qualified_name()
        alias = None
        if self._peek().kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT):
            alias = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        predicate = None
        if self._accept_keyword("WHERE"):
            predicate = self._expr()
        return p.UpdateSpec(table, alias, assignments, predicate)

    def _assignment(self) -> tuple[str, s.ScalarExpr]:
        column = self._expect_ident("column name")
        self._expect_op("=")
        return column, self._expr()

    def _delete(self) -> p.DeleteSpec:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._qualified_name()
        alias = None
        if self._peek().kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT):
            alias = self._expect_ident()
        predicate = None
        if self._accept_keyword("WHERE"):
            predicate = self._expr()
        return p.DeleteSpec(table, alias, predicate)

    def _create(self) -> p.StatementSpec:
        self._expect_keyword("CREATE")
        replace = False
        if self._accept_keyword("OR") is not None:  # pragma: no cover - OR not keyworded here
            self._expect_keyword("REPLACE")
            replace = True
        temporary = bool(self._accept_keyword("TEMPORARY", "TEMP"))
        if self._accept_keyword("TABLE"):
            return self._create_table(temporary)
        if self._accept_keyword("VIEW"):
            return self._create_view(replace)
        token = self._peek()
        raise ParseError(f"unsupported CREATE {token.text!r}", token.line, token.column)

    def _create_table(self, temporary: bool) -> p.CreateTableSpec:
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._qualified_name()
        if self._accept_keyword("AS"):
            query = self._query_expr()
            return p.CreateTableSpec(name, columns=None, as_query=query,
                                     temporary=temporary, if_not_exists=if_not_exists)
        self._expect_op("(")
        columns = [self._column_def()]
        while self._accept_op(","):
            if self._at_keyword("PRIMARY", "UNIQUE", "CHECK", "FOREIGN", "CONSTRAINT"):
                self._skip_table_constraint()
                continue
            columns.append(self._column_def())
        self._expect_op(")")
        return p.CreateTableSpec(name, columns=columns, as_query=None,
                                 temporary=temporary, if_not_exists=if_not_exists)

    def _skip_table_constraint(self) -> None:
        """Consume and ignore a table-level constraint clause."""
        depth = 0
        while True:
            token = self._peek()
            if token.kind is TokenKind.EOF:
                return
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                if depth == 0:
                    return
                depth -= 1
            elif token.is_op(",") and depth == 0:
                return
            self._next()

    def _column_def(self) -> ColumnSchema:
        name = self._expect_ident("column name")
        column_type = self._type_name()
        nullable = True
        default_sql: Optional[str] = None
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                nullable = False
            elif self._accept_keyword("NULL"):
                nullable = True
            elif self._accept_keyword("DEFAULT"):
                token = self._next()
                if token.kind is TokenKind.STRING:
                    default_sql = "'" + str(token.value).replace("'", "''") + "'"
                elif token.kind is TokenKind.NUMBER:
                    default_sql = token.text
                elif token.is_keyword("NULL"):
                    default_sql = "NULL"
                else:
                    raise BackendError(
                        f"column {name}: only literal DEFAULTs are supported "
                        "by this backend")
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                nullable = False
            elif self._accept_keyword("UNIQUE"):
                pass
            else:
                break
        return ColumnSchema(name, column_type, nullable, default_sql)

    def _type_name(self) -> t.SQLType:
        token = self._peek()
        name = str(token.value).upper() if token.kind in (
            TokenKind.IDENT, TokenKind.KEYWORD) else ""
        name = self._dialect.type_synonyms.get(name, name)
        if name not in _TYPE_NAMES:
            raise ParseError(f"expected a type name, found {token.text!r}",
                             token.line, token.column)
        self._next()
        if name in ("INT", "INTEGER"):
            return t.INTEGER
        if name == "SMALLINT":
            return t.SMALLINT
        if name == "BIGINT":
            return t.BIGINT
        if name in ("DECIMAL", "NUMERIC"):
            precision, scale = 18, 2
            if self._accept_op("("):
                precision = int(self._expect_number())
                scale = 0
                if self._accept_op(","):
                    scale = int(self._expect_number())
                self._expect_op(")")
            return t.decimal(precision, scale)
        if name in ("FLOAT", "REAL"):
            return t.FLOAT
        if name == "DOUBLE":
            if self._peek().kind is TokenKind.IDENT and self._peek().value == "PRECISION":
                self._next()
            return t.FLOAT
        if name in ("CHAR", "CHARACTER"):
            length = 1
            if self._accept_op("("):
                length = int(self._expect_number())
                self._expect_op(")")
            return t.char(length)
        if name in ("VARCHAR", "TEXT"):
            length = None
            if self._accept_op("("):
                length = int(self._expect_number())
                self._expect_op(")")
            return t.SQLType(t.TypeKind.VARCHAR, length=length)
        if name == "DATE":
            return t.DATE
        if name == "TIME":
            return t.TIME
        if name == "TIMESTAMP":
            return t.TIMESTAMP
        return t.SQLType(t.TypeKind.BOOLEAN)

    def _expect_number(self) -> float:
        token = self._peek()
        if token.kind is not TokenKind.NUMBER:
            raise ParseError(f"expected a number, found {token.text!r}",
                             token.line, token.column)
        self._next()
        return token.value  # type: ignore[return-value]

    def _create_view(self, replace: bool) -> p.CreateViewSpec:
        name = self._qualified_name()
        column_names: Optional[list[str]] = None
        if self._accept_op("("):
            column_names = [self._expect_ident("column name")]
            while self._accept_op(","):
                column_names.append(self._expect_ident("column name"))
            self._expect_op(")")
        self._expect_keyword("AS")
        start = self._index
        query = self._query_expr()
        source_sql = self._source_between(start, self._index)
        return p.CreateViewSpec(name, column_names, query, source_sql, replace)

    def _source_between(self, start: int, end: int) -> str:
        return " ".join(token.text for token in self._tokens[start:end])

    def _drop(self) -> p.StatementSpec:
        self._expect_keyword("DROP")
        kind = self._expect_keyword("TABLE", "VIEW")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._qualified_name()
        if kind.value == "TABLE":
            return p.DropTableSpec(name, if_exists)
        return p.DropViewSpec(name, if_exists)

    def _merge(self) -> p.MergeSpec:
        if not self._profile.merge_statement:
            token = self._peek()
            raise BackendError("MERGE is not supported by this system")
        self._expect_keyword("MERGE")
        self._expect_keyword("INTO")
        target = self._qualified_name()
        target_alias = None
        if self._accept_keyword("AS") or self._peek().kind is TokenKind.IDENT:
            target_alias = self._expect_ident()
        self._expect_keyword("USING")
        source = self._table_ref()
        self._expect_keyword("ON")
        condition = self._expr()
        matched_assignments = None
        insert_columns = None
        insert_values = None
        while self._accept_keyword("WHEN"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("MATCHED")
            self._expect_keyword("THEN")
            if negated:
                self._expect_keyword("INSERT")
                self._expect_op("(")
                insert_columns = [self._expect_ident("column name")]
                while self._accept_op(","):
                    insert_columns.append(self._expect_ident("column name"))
                self._expect_op(")")
                self._expect_keyword("VALUES")
                insert_values = self._values_row()
            else:
                self._expect_keyword("UPDATE")
                self._expect_keyword("SET")
                matched_assignments = [self._assignment()]
                while self._accept_op(","):
                    matched_assignments.append(self._assignment())
        return p.MergeSpec(target, target_alias, source, condition,
                           matched_assignments, insert_columns, insert_values)

    # -- queries ---------------------------------------------------------------------

    def _query_expr(self) -> p.QuerySpec:
        ctes: list[p.CTESpec] = []
        if self._accept_keyword("WITH"):
            recursive = bool(self._accept_keyword("RECURSIVE"))
            if recursive and not self._profile.recursive_cte:
                raise BackendError(
                    "recursive common table expressions are not supported by "
                    "this system")
            ctes.append(self._cte(recursive))
            while self._accept_op(","):
                ctes.append(self._cte(recursive))
        first = self._query_term()
        branches: list[tuple[r.SetOpKind, bool, p.CoreSpec | p.QuerySpec]] = []
        while self._at_keyword("UNION", "INTERSECT", "EXCEPT"):
            kind_token = self._next()
            kind = r.SetOpKind[str(kind_token.value)]
            all_rows = bool(self._accept_keyword("ALL"))
            if not all_rows:
                self._accept_keyword("DISTINCT")
            branches.append((kind, all_rows, self._query_term()))
        order_by: list[s.SortKey] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._sort_key())
            while self._accept_op(","):
                order_by.append(self._sort_key())
        limit = None
        offset = 0
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect_number())
            if self._accept_keyword("OFFSET"):
                offset = int(self._expect_number())
        elif self._accept_keyword("OFFSET"):
            offset = int(self._expect_number())
        return p.QuerySpec(ctes, first, branches, order_by, limit, offset)

    def _cte(self, recursive: bool) -> p.CTESpec:
        name = self._expect_ident("CTE name")
        column_names: Optional[list[str]] = None
        if self._accept_op("("):
            column_names = [self._expect_ident("column name")]
            while self._accept_op(","):
                column_names.append(self._expect_ident("column name"))
            self._expect_op(")")
        self._expect_keyword("AS")
        self._expect_op("(")
        query = self._query_expr()
        self._expect_op(")")
        return p.CTESpec(name, column_names, query, recursive)

    def _query_term(self) -> p.CoreSpec | p.QuerySpec:
        if self._accept_op("("):
            inner = self._query_expr()
            self._expect_op(")")
            return inner
        return self._select_core()

    def _select_core(self) -> p.CoreSpec:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        top: Optional[tuple[int, bool]] = None
        if self._at_keyword("TOP"):
            self._next()
            count = int(self._expect_number())
            with_ties = False
            if self._accept_keyword("WITH"):
                self._expect_keyword("TIES")
                with_ties = True
            top = (count, with_ties)
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        from_refs: list[p.TableRefSpec] = []
        if self._accept_keyword("FROM"):
            from_refs.append(self._table_ref())
            while self._accept_op(","):
                from_refs.append(self._table_ref())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        group_by: list[s.ScalarExpr] = []
        group_kind = r.GroupingKind.SIMPLE
        grouping_sets: Optional[list[list[int]]] = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by, group_kind, grouping_sets = self._group_by()
        having = None
        if self._accept_keyword("HAVING"):
            having = self._expr()
        return p.CoreSpec(distinct, top, items, from_refs, where,
                          group_by, group_kind, grouping_sets, having)

    def _group_by(self):
        kind = r.GroupingKind.SIMPLE
        grouping_sets = None
        if self._accept_keyword("ROLLUP"):
            kind = r.GroupingKind.ROLLUP
            exprs = self._paren_expr_list()
        elif self._accept_keyword("CUBE"):
            kind = r.GroupingKind.CUBE
            exprs = self._paren_expr_list()
        elif self._at_keyword("GROUPING"):
            self._next()
            self._expect_keyword("SETS")
            kind = r.GroupingKind.SETS
            exprs, grouping_sets = self._grouping_sets_list()
        else:
            exprs = [self._expr()]
            while self._accept_op(","):
                exprs.append(self._expr())
        if kind is not r.GroupingKind.SIMPLE and not self._profile.grouping_extensions:
            raise BackendError(
                "GROUP BY ROLLUP/CUBE/GROUPING SETS is not supported by this system")
        return exprs, kind, grouping_sets

    def _paren_expr_list(self) -> list[s.ScalarExpr]:
        self._expect_op("(")
        exprs = [self._expr()]
        while self._accept_op(","):
            exprs.append(self._expr())
        self._expect_op(")")
        return exprs

    def _grouping_sets_list(self):
        self._expect_op("(")
        all_exprs: list[s.ScalarExpr] = []
        sets: list[list[int]] = []
        while True:
            self._expect_op("(")
            indexes: list[int] = []
            if not self._peek().is_op(")"):
                while True:
                    expr = self._expr()
                    position = None
                    for index, existing in enumerate(all_exprs):
                        if s.same(existing, expr):
                            position = index
                            break
                    if position is None:
                        position = len(all_exprs)
                        all_exprs.append(expr)
                    indexes.append(position)
                    if not self._accept_op(","):
                        break
            self._expect_op(")")
            sets.append(indexes)
            if not self._accept_op(","):
                break
        self._expect_op(")")
        return all_exprs, sets

    def _select_item(self) -> p.SelectItem:
        if self._accept_op("*"):
            return p.SelectItem(star=True, star_qualifier=None, expr=None, alias=None)
        # "table.*"
        token = self._peek()
        if token.kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT) \
                and self._peek(1).is_op(".") and self._peek(2).is_op("*"):
            qualifier = self._expect_ident()
            self._expect_op(".")
            self._expect_op("*")
            return p.SelectItem(star=True, star_qualifier=qualifier, expr=None, alias=None)
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self._peek().kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT):
            alias = self._expect_ident()
        return p.SelectItem(star=False, star_qualifier=None, expr=expr, alias=alias)

    def _table_ref(self) -> p.TableRefSpec:
        left = self._table_primary()
        while True:
            if self._at_keyword("JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS"):
                kind = r.JoinKind.INNER
                if self._accept_keyword("INNER"):
                    pass
                elif self._accept_keyword("LEFT"):
                    self._accept_keyword("OUTER")
                    kind = r.JoinKind.LEFT
                elif self._accept_keyword("RIGHT"):
                    self._accept_keyword("OUTER")
                    kind = r.JoinKind.RIGHT
                elif self._accept_keyword("FULL"):
                    self._accept_keyword("OUTER")
                    kind = r.JoinKind.FULL
                elif self._accept_keyword("CROSS"):
                    kind = r.JoinKind.CROSS
                self._expect_keyword("JOIN")
                right = self._table_primary()
                condition = None
                if kind is not r.JoinKind.CROSS:
                    self._expect_keyword("ON")
                    condition = self._expr()
                left = p.JoinSpec(kind, left, right, condition)
            else:
                return left

    def _table_primary(self) -> p.TableRefSpec:
        if self._accept_op("("):
            # Either a derived table or a parenthesized join tree.
            if self._at_keyword("SELECT", "WITH"):
                query = self._query_expr()
                self._expect_op(")")
                alias, column_names = self._table_alias(required=True)
                return p.SubqueryRefSpec(query, alias, column_names)
            if self._peek().is_op("("):
                # Could be a parenthesized query expression (e.g. a UNION of
                # SELECTs used as a derived table) or a parenthesized join
                # tree; try the query first and backtrack on failure.
                mark = self._index
                try:
                    query = self._query_expr()
                    self._expect_op(")")
                    alias, column_names = self._table_alias(required=True)
                    return p.SubqueryRefSpec(query, alias, column_names)
                except ParseError:
                    self._index = mark
            inner = self._table_ref()
            self._expect_op(")")
            return inner
        name = self._qualified_name()
        alias, column_names = self._table_alias(required=False)
        return p.TableNameSpec(name, alias, column_names)

    def _table_alias(self, required: bool) -> tuple[Optional[str], Optional[list[str]]]:
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self._peek().kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT):
            alias = self._expect_ident()
        elif required:
            token = self._peek()
            raise ParseError("derived table requires an alias", token.line, token.column)
        column_names = None
        if alias and self._peek().is_op("(") and self._peek(1).kind in (
                TokenKind.IDENT, TokenKind.QUOTED_IDENT) and (
                self._peek(2).is_op(",") or self._peek(2).is_op(")")):
            self._expect_op("(")
            column_names = [self._expect_ident("column name")]
            while self._accept_op(","):
                column_names.append(self._expect_ident("column name"))
            self._expect_op(")")
        return alias, column_names

    def _sort_key(self) -> s.SortKey:
        expr = self._expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        nulls_first: Optional[bool] = None
        if self._accept_keyword("NULLS"):
            if not self._profile.explicit_null_ordering:
                raise BackendError(
                    "explicit NULLS FIRST/LAST is not supported by this system")
            token = self._expect_keyword("FIRST", "LAST")
            nulls_first = token.value == "FIRST"
        return s.SortKey(expr, ascending, nulls_first)

    # -- expressions -------------------------------------------------------------------

    def _expr(self) -> s.ScalarExpr:
        return self._or_expr()

    def _or_expr(self) -> s.ScalarExpr:
        left = self._and_expr()
        args = [left]
        while self._accept_keyword("OR"):
            args.append(self._and_expr())
        if len(args) == 1:
            return left
        return s.BoolOp(s.BoolOpKind.OR, args)

    def _and_expr(self) -> s.ScalarExpr:
        left = self._not_expr()
        args = [left]
        while self._accept_keyword("AND"):
            args.append(self._not_expr())
        if len(args) == 1:
            return left
        return s.BoolOp(s.BoolOpKind.AND, args)

    def _not_expr(self) -> s.ScalarExpr:
        if self._accept_keyword("NOT"):
            return s.Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> s.ScalarExpr:
        left = self._additive()
        return self._predicate_tail(left)

    def _predicate_tail(self, left: s.ScalarExpr) -> s.ScalarExpr:
        token = self._peek()
        if token.is_op("=", "<>", "<", "<=", ">", ">="):
            self._next()
            op = s.CompOp(str(token.value))
            if self._at_keyword("ANY", "SOME", "ALL"):
                quantifier_token = self._next()
                quantifier = (s.Quantifier.ALL if quantifier_token.value == "ALL"
                              else s.Quantifier.ANY)
                self._expect_op("(")
                query = self._query_expr()
                self._expect_op(")")
                left_items = self._row_items(left)
                if len(left_items) > 1 and not self._profile.vector_subquery:
                    raise BackendError(
                        "vector comparison in quantified subquery is not "
                        "supported by this system")
                return s.SubqueryExpr(kind=s.SubqueryKind.QUANTIFIED, plan=query,
                                      left=left_items, op=op, quantifier=quantifier)
            right = self._additive()
            return s.Comp(op, left, right)
        negated = False
        if token.is_keyword("NOT"):
            lookahead = self._peek(1)
            if lookahead.is_keyword("IN", "LIKE", "BETWEEN"):
                self._next()
                negated = True
                token = self._peek()
        if token.is_keyword("IS"):
            self._next()
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return s.IsNull(left, is_negated)
        if token.is_keyword("IN"):
            self._next()
            self._expect_op("(")
            if self._at_keyword("SELECT", "WITH"):
                query = self._query_expr()
                self._expect_op(")")
                return s.SubqueryExpr(kind=s.SubqueryKind.IN, plan=query,
                                      left=self._row_items(left), negated=negated)
            items = [self._expr()]
            while self._accept_op(","):
                items.append(self._expr())
            self._expect_op(")")
            return s.InList(left, items, negated)
        if token.is_keyword("LIKE"):
            self._next()
            pattern = self._additive()
            escape = None
            if self._accept_keyword("ESCAPE"):
                escape_token = self._next()
                escape = str(escape_token.value)
            return s.Like(left, pattern, escape, negated)
        if token.is_keyword("BETWEEN"):
            self._next()
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return s.Between(left, low, high, negated)
        return left

    def _row_items(self, left: s.ScalarExpr) -> list[s.ScalarExpr]:
        """Unpack a row-value constructor produced by ``_primary``."""
        if isinstance(left, _RowValue):
            return left.items
        return [left]

    def _additive(self) -> s.ScalarExpr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.is_op("+", "-", "||"):
                self._next()
                op = {"+": s.ArithOp.ADD, "-": s.ArithOp.SUB,
                      "||": s.ArithOp.CONCAT}[str(token.value)]
                left = s.Arith(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> s.ScalarExpr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.is_op("*", "/", "%"):
                self._next()
                op = {"*": s.ArithOp.MUL, "/": s.ArithOp.DIV,
                      "%": s.ArithOp.MOD}[str(token.value)]
                left = s.Arith(op, left, self._unary())
            else:
                return left

    def _unary(self) -> s.ScalarExpr:
        if self._accept_op("-"):
            return s.Negate(self._unary())
        if self._accept_op("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> s.ScalarExpr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._next()
            value = token.value
            kind = t.INTEGER if isinstance(value, int) else t.FLOAT
            return s.Const(value, kind)
        if token.kind is TokenKind.STRING:
            self._next()
            return s.const_str(str(token.value))
        if token.is_keyword("NULL"):
            self._next()
            return s.null_const()
        if token.is_keyword("TRUE"):
            self._next()
            return s.Const(True, t.BOOLEAN)
        if token.is_keyword("FALSE"):
            self._next()
            return s.Const(False, t.BOOLEAN)
        if token.is_keyword("DATE") and self._peek(1).kind is TokenKind.STRING:
            self._next()
            literal = self._next()
            try:
                value = datetime.date.fromisoformat(str(literal.value))
            except ValueError as exc:
                raise ParseError(f"bad date literal {literal.value!r}",
                                 literal.line, literal.column) from exc
            return s.Const(value, t.DATE)
        if token.is_keyword("TIMESTAMP") and self._peek(1).kind is TokenKind.STRING:
            self._next()
            literal = self._next()
            try:
                value = datetime.datetime.fromisoformat(str(literal.value))
            except ValueError as exc:
                raise ParseError(f"bad timestamp literal {literal.value!r}",
                                 literal.line, literal.column) from exc
            return s.Const(value, t.TIMESTAMP)
        if token.is_keyword("CASE"):
            return self._case()
        if token.is_keyword("CAST"):
            return self._cast()
        if token.is_keyword("EXTRACT"):
            return self._extract()
        if token.is_keyword("SUBSTRING"):
            return self._substring()
        if token.is_keyword("POSITION"):
            return self._position()
        if token.is_keyword("EXISTS"):
            self._next()
            self._expect_op("(")
            query = self._query_expr()
            self._expect_op(")")
            return s.SubqueryExpr(kind=s.SubqueryKind.EXISTS, plan=query)
        if token.is_keyword("CURRENT"):  # pragma: no cover - alt spelling
            raise ParseError("unexpected CURRENT", token.line, token.column)
        if token.is_op("("):
            self._next()
            if self._at_keyword("SELECT", "WITH"):
                query = self._query_expr()
                self._expect_op(")")
                return s.SubqueryExpr(kind=s.SubqueryKind.SCALAR, plan=query)
            expr = self._expr()
            if self._accept_op(","):
                items = [expr, self._expr()]
                while self._accept_op(","):
                    items.append(self._expr())
                self._expect_op(")")
                return _RowValue(items)
            self._expect_op(")")
            return expr
        if token.kind is TokenKind.PARAM:
            self._next()
            return s.Param(str(token.value))
        if token.kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT):
            return self._name_or_call()
        raise ParseError(f"unexpected token {token.text or 'end of input'!r}",
                         token.line, token.column)

    def _case(self) -> s.Case:
        self._expect_keyword("CASE")
        operand = None
        if not self._at_keyword("WHEN"):
            operand = self._expr()
        conditions: list[s.ScalarExpr] = []
        results: list[s.ScalarExpr] = []
        while self._accept_keyword("WHEN"):
            conditions.append(self._expr())
            self._expect_keyword("THEN")
            results.append(self._expr())
        default = None
        if self._accept_keyword("ELSE"):
            default = self._expr()
        self._expect_keyword("END")
        if not conditions:
            token = self._peek()
            raise ParseError("CASE requires at least one WHEN", token.line, token.column)
        return s.Case(operand, conditions, results, default)

    def _cast(self) -> s.Cast:
        self._expect_keyword("CAST")
        self._expect_op("(")
        operand = self._expr()
        self._expect_keyword("AS")
        target = self._type_name()
        self._expect_op(")")
        return s.Cast(operand, target)

    def _extract(self) -> s.Extract:
        self._expect_keyword("EXTRACT")
        self._expect_op("(")
        field_token = self._expect_keyword(
            "YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND")
        self._expect_keyword("FROM")
        operand = self._expr()
        self._expect_op(")")
        return s.Extract(s.ExtractField[str(field_token.value)], operand)

    def _substring(self) -> s.FuncCall:
        self._expect_keyword("SUBSTRING")
        self._expect_op("(")
        value = self._expr()
        if self._accept_keyword("FROM"):
            start = self._expr()
            length = None
            if self._accept_keyword("FOR"):
                length = self._expr()
        else:
            self._expect_op(",")
            start = self._expr()
            length = None
            if self._accept_op(","):
                length = self._expr()
        self._expect_op(")")
        args = [value, start] + ([length] if length is not None else [])
        return s.FuncCall("SUBSTRING", args)

    def _position(self) -> s.FuncCall:
        self._expect_keyword("POSITION")
        self._expect_op("(")
        # The needle must stop before IN (which would otherwise parse as an
        # IN-list predicate).
        needle = self._additive()
        self._expect_keyword("IN")
        haystack = self._expr()
        self._expect_op(")")
        return s.FuncCall("POSITION", [needle, haystack])

    def _name_or_call(self) -> s.ScalarExpr:
        name = self._expect_ident()
        if self._peek().is_op("("):
            return self._call(name)
        if self._accept_op("."):
            column = self._expect_ident("column name")
            return s.ColumnRef(column, table=name)
        return s.ColumnRef(name)

    def _call(self, name: str) -> s.ScalarExpr:
        self._expect_op("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        star = False
        args: list[s.ScalarExpr] = []
        if self._accept_op("*"):
            star = True
        elif not self._peek().is_op(")"):
            args.append(self._expr())
            while self._accept_op(","):
                args.append(self._expr())
        self._expect_op(")")
        upper = self._dialect.function_aliases.get(name.upper(), name.upper())
        window = self._over_clause()
        if window is not None:
            if upper not in _WINDOW_ONLY and upper not in _AGG_NAMES:
                raise BackendError(f"{name}() cannot be used as a window function")
            partition_by, order_by = window
            return s.WindowFunc(upper, args, partition_by, order_by)
        if upper in _WINDOW_ONLY:
            raise BackendError(f"{name}() requires an OVER clause")
        if upper in _AGG_NAMES:
            return s.AggCall(upper, args, distinct=distinct, star=star)
        if star or distinct:
            raise ParseError(f"{name}() does not accept DISTINCT or *",
                             self._peek().line, self._peek().column)
        return s.FuncCall(upper, args)

    def _over_clause(self):
        if not self._at_keyword("OVER"):
            return None
        self._next()
        self._expect_op("(")
        partition_by: list[s.ScalarExpr] = []
        order_by: list[s.SortKey] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self._expr())
            while self._accept_op(","):
                partition_by.append(self._expr())
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._sort_key())
            while self._accept_op(","):
                order_by.append(self._sort_key())
        if self._at_keyword("ROWS", "RANGE"):
            raise BackendError("explicit window frames are not supported by this system")
        self._expect_op(")")
        return partition_by, order_by


class _RowValue(s.ScalarExpr):
    """Internal marker for a parenthesized row-value constructor.

    Only valid immediately to the left of IN / quantified comparison; any
    other use is rejected during planning.
    """

    CHILD_FIELDS = ("items",)

    def __init__(self, items: list[s.ScalarExpr]):
        self.items = items
        self.type = t.UNKNOWN
