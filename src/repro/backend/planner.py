"""Lowering of parsed backend statements into executable XTRA plans.

The parser (:mod:`repro.backend.parser`) produces the spec dataclasses below;
the :class:`Planner` resolves names against the backend catalog, expands
``*``, extracts aggregates and window functions into their relational
operators, and wires CTE scopes. The output plans run directly on
:class:`repro.backend.executor.Executor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BackendError
from repro.transform.capabilities import CapabilityProfile
from repro.backend.catalog import Catalog
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.relational import OutputColumn, RelNode
from repro.xtra.scalars import ScalarExpr


# ---------------------------------------------------------------------------
# Parse specs
# ---------------------------------------------------------------------------

class StatementSpec:
    """Base class for parsed statements."""


@dataclass
class SelectItem:
    star: bool
    star_qualifier: Optional[str]
    expr: Optional[ScalarExpr]
    alias: Optional[str]


class TableRefSpec:
    pass


@dataclass
class TableNameSpec(TableRefSpec):
    name: str
    alias: Optional[str]
    column_names: Optional[list[str]] = None


@dataclass
class SubqueryRefSpec(TableRefSpec):
    query: "QuerySpec"
    alias: str
    column_names: Optional[list[str]] = None


@dataclass
class JoinSpec(TableRefSpec):
    kind: r.JoinKind
    left: TableRefSpec
    right: TableRefSpec
    condition: Optional[ScalarExpr]


@dataclass
class CoreSpec:
    distinct: bool
    top: Optional[tuple[int, bool]]
    items: list[SelectItem]
    from_refs: list[TableRefSpec]
    where: Optional[ScalarExpr]
    group_by: list[ScalarExpr]
    group_kind: r.GroupingKind
    grouping_sets: Optional[list[list[int]]]
    having: Optional[ScalarExpr]


@dataclass
class CTESpec:
    name: str
    column_names: Optional[list[str]]
    query: "QuerySpec"
    recursive: bool


@dataclass
class QuerySpec:
    ctes: list[CTESpec]
    first: "CoreSpec | QuerySpec"
    branches: list[tuple[r.SetOpKind, bool, "CoreSpec | QuerySpec"]]
    order_by: list[s.SortKey]
    limit: Optional[int]
    offset: int


@dataclass
class QueryStatementSpec(StatementSpec):
    query: QuerySpec


@dataclass
class InsertSpec(StatementSpec):
    table: str
    columns: Optional[list[str]]
    rows: Optional[list[list[ScalarExpr]]]
    query: Optional[QuerySpec]


@dataclass
class UpdateSpec(StatementSpec):
    table: str
    alias: Optional[str]
    assignments: list[tuple[str, ScalarExpr]]
    predicate: Optional[ScalarExpr]


@dataclass
class DeleteSpec(StatementSpec):
    table: str
    alias: Optional[str]
    predicate: Optional[ScalarExpr]


@dataclass
class CreateTableSpec(StatementSpec):
    name: str
    columns: Optional[list]
    as_query: Optional[QuerySpec]
    temporary: bool
    if_not_exists: bool


@dataclass
class DropTableSpec(StatementSpec):
    name: str
    if_exists: bool


@dataclass
class CreateViewSpec(StatementSpec):
    name: str
    column_names: Optional[list[str]]
    query: QuerySpec
    source_sql: str
    replace: bool


@dataclass
class DropViewSpec(StatementSpec):
    name: str
    if_exists: bool


@dataclass
class TruncateSpec(StatementSpec):
    name: str


@dataclass
class TransactionSpec(StatementSpec):
    action: str


@dataclass
class MergeSpec(StatementSpec):
    target: str
    target_alias: Optional[str]
    source: TableRefSpec
    condition: ScalarExpr
    matched_assignments: Optional[list[tuple[str, ScalarExpr]]]
    insert_columns: Optional[list[str]]
    insert_values: Optional[list[ScalarExpr]]


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

class _Scope:
    """Chain of CTE name -> output columns visible during planning."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.ctes: dict[str, list[OutputColumn]] = {}

    def lookup(self, name: str) -> Optional[list[OutputColumn]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name.upper() in scope.ctes:
                return scope.ctes[name.upper()]
            scope = scope.parent
        return None


class Planner:
    """Plans parsed query specs against a catalog + capability profile."""

    def __init__(self, catalog: Catalog, profile: CapabilityProfile):
        self._catalog = catalog
        self._profile = profile

    # -- entry point ----------------------------------------------------------

    def plan_query(self, spec: QuerySpec, scope: Optional[_Scope] = None) -> RelNode:
        scope = _Scope(scope)
        cte_defs: list[r.CTEDef] = []
        for cte in spec.ctes:
            if cte.recursive:
                plan, columns = self._plan_recursive_cte(cte, scope)
            else:
                plan = self.plan_query(cte.query, scope)
                columns = self._cte_columns(cte, plan)
            scope.ctes[cte.name.upper()] = columns
            cte_defs.append(r.CTEDef(cte.name.upper(), plan, cte.column_names,
                                     cte.recursive))
        defer = bool(spec.branches)
        body = self._plan_term(spec.first, scope,
                               order_by=None if defer else spec.order_by,
                               limit=None if defer else spec.limit,
                               offset=0 if defer else spec.offset)
        for kind, all_rows, branch in spec.branches:
            right = self._plan_term(branch, scope, None, None, 0)
            self._check_branch_arity(body, right)
            body = r.SetOp(kind, all_rows, body, right)
        if defer:
            body = self._attach_order_limit_over_setop(
                body, spec.order_by, spec.limit, spec.offset)
        if cte_defs:
            return r.With(cte_defs, body)
        return body

    # -- internals -----------------------------------------------------------------

    def _check_branch_arity(self, left: RelNode, right: RelNode) -> None:
        left_n = len(left.output_columns())
        right_n = len(right.output_columns())
        if left_n != right_n:
            raise BackendError(
                f"set operation branches have {left_n} and {right_n} columns")

    def _cte_columns(self, cte: CTESpec, plan: RelNode) -> list[OutputColumn]:
        inner = plan.output_columns()
        if cte.column_names:
            if len(cte.column_names) != len(inner):
                raise BackendError(
                    f"CTE {cte.name}: {len(cte.column_names)} names for "
                    f"{len(inner)} columns")
            return [OutputColumn(name.upper(), col.type)
                    for name, col in zip(cte.column_names, inner)]
        return [OutputColumn(col.name, col.type) for col in inner]

    def _plan_recursive_cte(self, cte: CTESpec, scope: _Scope):
        query = cte.query
        if query.branches and query.branches[0][0] is r.SetOpKind.UNION:
            seed_spec = query.first
            rest = query.branches
        else:
            raise BackendError(
                f"recursive CTE {cte.name} must be <seed> UNION ALL <recursive>")
        seed_plan = self._plan_term(seed_spec, scope, None, None, 0)
        columns = self._cte_columns(
            CTESpec(cte.name, cte.column_names, query, False), seed_plan)
        # Make the self-reference visible while planning recursive branches.
        scope.ctes[cte.name.upper()] = columns
        body: RelNode = seed_plan
        for kind, all_rows, branch in rest:
            if kind is not r.SetOpKind.UNION or not all_rows:
                raise BackendError(
                    f"recursive CTE {cte.name} only supports UNION ALL")
            right = self._plan_term(branch, scope, None, None, 0)
            self._check_branch_arity(body, right)
            body = r.SetOp(kind, all_rows, body, right)
        return body, columns

    def _attach_order_limit_over_setop(self, body: RelNode,
                                       order_by: list[s.SortKey],
                                       limit: Optional[int], offset: int) -> RelNode:
        output = body.output_columns()
        names = [col.name for col in output]
        if order_by:
            keys = []
            for key in order_by:
                expr = key.expr
                if isinstance(expr, s.Const) and isinstance(expr.value, int):
                    position = expr.value
                    if not 1 <= position <= len(names):
                        raise BackendError(f"ORDER BY position {position} out of range")
                    expr = s.ColumnRef(names[position - 1])
                elif not (isinstance(expr, s.ColumnRef) and expr.name in names):
                    raise BackendError(
                        "ORDER BY over a set operation must use output column "
                        "names or ordinals")
                keys.append(s.SortKey(expr, key.ascending, key.nulls_first))
            body = r.Sort(body, keys)
        if limit is not None or offset:
            body = r.Limit(body, limit, offset)
        return body

    def _plan_term(self, term, scope: _Scope, order_by, limit, offset) -> RelNode:
        if isinstance(term, QuerySpec):
            plan = self.plan_query(term, scope)
            if order_by or limit is not None or offset:
                plan = self._attach_order_limit_over_setop(plan, order_by or [],
                                                           limit, offset)
            return plan
        return self._plan_core(term, scope, order_by or [], limit, offset)

    # -- FROM clause ----------------------------------------------------------------

    def _plan_from(self, refs: list[TableRefSpec], scope: _Scope) -> RelNode:
        if not refs:
            return r.Values(rows=[[]], names=[], types=[])
        plan = self._plan_table_ref(refs[0], scope)
        for ref in refs[1:]:
            plan = r.Join(r.JoinKind.CROSS, plan, self._plan_table_ref(ref, scope))
        return plan

    def _plan_table_ref(self, ref: TableRefSpec, scope: _Scope) -> RelNode:
        if isinstance(ref, JoinSpec):
            left = self._plan_table_ref(ref.left, scope)
            right = self._plan_table_ref(ref.right, scope)
            condition = None
            if ref.condition is not None:
                condition = self._plan_scalar_subqueries(ref.condition, scope)
            return r.Join(ref.kind, left, right, condition)
        if isinstance(ref, SubqueryRefSpec):
            child = self.plan_query(ref.query, scope)
            return r.DerivedTable(child, ref.alias.upper(), ref.column_names)
        assert isinstance(ref, TableNameSpec)
        cte_columns = scope.lookup(ref.name)
        if cte_columns is not None:
            return r.CTERef(ref.name.upper(), cte_columns, ref.alias)
        if self._catalog.has_view(ref.name):
            return self._expand_view(ref, scope)
        table = self._catalog.table(ref.name)  # raises CatalogError if absent
        return r.Get(table.schema, ref.alias)

    def _expand_view(self, ref: TableNameSpec, scope: _Scope) -> RelNode:
        from repro.backend.parser import BackendParser  # local import: cycle

        view = self._catalog.view(ref.name)
        assert view is not None and view.view_sql is not None
        parser = BackendParser(self._profile)
        statement = parser.parse_statement(view.view_sql)
        if not isinstance(statement, QueryStatementSpec):
            raise BackendError(f"view {ref.name} does not wrap a query")
        child = self.plan_query(statement.query, scope)
        names = [col.name for col in view.columns] or None
        return r.DerivedTable(child, (ref.alias or ref.name).upper(), names)

    # -- SELECT core -------------------------------------------------------------------

    def _plan_core(self, core: CoreSpec, scope: _Scope,
                   order_by: list[s.SortKey], limit: Optional[int],
                   offset: int) -> RelNode:
        source = self._plan_from(core.from_refs, scope)
        input_columns = source.output_columns()

        if core.where is not None:
            where = self._plan_scalar_subqueries(core.where, scope)
            if _contains_aggregate(where):
                raise BackendError("aggregates are not allowed in WHERE")
            source = r.Filter(source, where)

        select_exprs, select_names = self._expand_items(core.items, input_columns, scope)
        having = (self._plan_scalar_subqueries(core.having, scope)
                  if core.having is not None else None)
        group_by = [self._plan_scalar_subqueries(expr, scope) for expr in core.group_by]
        group_by = self._resolve_group_ordinals(group_by, select_exprs)

        agg_calls: list[s.AggCall] = []
        for expr in select_exprs:
            _collect_aggregates(expr, agg_calls)
        if having is not None:
            _collect_aggregates(having, agg_calls)

        current = source
        if group_by or agg_calls or core.group_kind is not r.GroupingKind.SIMPLE:
            group_names = [f"_G{i}" for i in range(len(group_by))]
            agg_names = [f"_A{i}" for i in range(len(agg_calls))]
            current = r.Aggregate(current, group_by, group_names, agg_calls,
                                  agg_names, core.group_kind, core.grouping_sets)
            replacer = _AggReplacer(group_by, group_names, agg_calls, agg_names)
            select_exprs = [replacer.rewrite(expr) for expr in select_exprs]
            if having is not None:
                having = replacer.rewrite(having)
                current = r.Filter(current, having)
            order_by = [s.SortKey(replacer.rewrite(key.expr), key.ascending,
                                  key.nulls_first) for key in order_by]
        elif having is not None:
            raise BackendError("HAVING requires GROUP BY or aggregates")

        # Window extraction (post-aggregation scope).
        window_funcs: list[s.WindowFunc] = []
        window_names: list[str] = []
        extractor = _WindowExtractor(window_funcs, window_names)
        select_exprs = [extractor.rewrite(expr) for expr in select_exprs]
        order_by = [s.SortKey(extractor.rewrite(key.expr), key.ascending,
                              key.nulls_first) for key in order_by]
        if window_funcs:
            current = r.Window(current, window_funcs, window_names)

        project = r.Project(current, list(select_exprs), list(select_names))
        result: RelNode = project

        if core.distinct:
            result = r.Distinct(result)

        if order_by:
            result = self._plan_order_by(result, project, select_names,
                                         select_exprs, order_by, core.distinct)

        top_count = None
        with_ties = False
        if core.top is not None:
            top_count, with_ties = core.top
            if with_ties and not self._profile.top_with_ties:
                raise BackendError("TOP ... WITH TIES is not supported by this system")
        if limit is not None:
            top_count = limit if top_count is None else min(top_count, limit)
        if top_count is not None or offset:
            result = r.Limit(result, top_count, offset, with_ties)
        return result

    def _resolve_group_ordinals(self, group_by: list[ScalarExpr],
                                select_exprs: list[ScalarExpr]) -> list[ScalarExpr]:
        if not self._profile.ordinal_group_by:
            return group_by
        resolved = []
        for expr in group_by:
            if isinstance(expr, s.Const) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(select_exprs):
                    raise BackendError(f"GROUP BY position {position} out of range")
                resolved.append(select_exprs[position - 1])
            else:
                resolved.append(expr)
        return resolved

    def _expand_items(self, items: list[SelectItem],
                      input_columns: list[OutputColumn],
                      scope: _Scope) -> tuple[list[ScalarExpr], list[str]]:
        exprs: list[ScalarExpr] = []
        names: list[str] = []
        for item in items:
            if item.star:
                matched = False
                for col in input_columns:
                    if item.star_qualifier and col.qualifier != item.star_qualifier.upper():
                        continue
                    matched = True
                    exprs.append(s.ColumnRef(col.name, col.qualifier, col.type))
                    names.append(col.name)
                if not matched:
                    raise BackendError(
                        f"no columns match {item.star_qualifier or ''}.*")
                continue
            expr = self._plan_scalar_subqueries(item.expr, scope)
            exprs.append(expr)
            names.append(item.alias or _default_name(expr, len(names)))
        return exprs, names

    def _plan_order_by(self, result: RelNode, project: r.Project,
                       select_names: list[str], select_exprs: list[ScalarExpr],
                       order_by: list[s.SortKey], distinct: bool) -> RelNode:
        keys: list[s.SortKey] = []
        hidden: list[tuple[str, ScalarExpr]] = []
        for key in order_by:
            expr = key.expr
            if isinstance(expr, s.Const) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(select_names):
                    raise BackendError(f"ORDER BY position {position} out of range")
                keys.append(s.SortKey(s.ColumnRef(select_names[position - 1]),
                                      key.ascending, key.nulls_first))
                continue
            if isinstance(expr, s.ColumnRef) and expr.table is None \
                    and expr.name in select_names:
                keys.append(key)
                continue
            # Match a full select expression (ORDER BY <same expr>).
            matched_name = None
            for name, sel in zip(select_names, select_exprs):
                if s.same(sel, expr):
                    matched_name = name
                    break
            if matched_name is not None:
                keys.append(s.SortKey(s.ColumnRef(matched_name), key.ascending,
                                      key.nulls_first))
                continue
            if distinct:
                raise BackendError(
                    "ORDER BY expression must appear in the SELECT DISTINCT list")
            hidden_name = f"_S{len(hidden)}"
            hidden.append((hidden_name, expr))
            keys.append(s.SortKey(s.ColumnRef(hidden_name), key.ascending,
                                  key.nulls_first))
        if not hidden:
            return r.Sort(result, keys)
        # Widen the projection with hidden sort columns, sort, then strip.
        visible = len(project.exprs)
        project.exprs = project.exprs + [expr for __, expr in hidden]
        project.names = project.names + [name for name, __ in hidden]
        sorted_node = r.Sort(result, keys)
        strip_exprs = [s.ColumnRef(name) for name in project.names[:visible]]
        return r.Project(sorted_node, strip_exprs, list(project.names[:visible]))

    # -- scalar subquery planning ----------------------------------------------------------

    def _plan_scalar_subqueries(self, expr: ScalarExpr, scope: _Scope) -> ScalarExpr:
        """Recursively plan QuerySpec payloads inside SubqueryExpr nodes and
        reject stray row-value constructors."""
        from repro.backend.parser import _RowValue  # local import: cycle

        for name in expr.CHILD_FIELDS:
            value = getattr(expr, name)
            if isinstance(value, ScalarExpr):
                setattr(expr, name, self._plan_scalar_subqueries(value, scope))
            elif isinstance(value, list):
                setattr(expr, name, [
                    self._plan_scalar_subqueries(item, scope)
                    if isinstance(item, ScalarExpr) else item
                    for item in value
                ])
        if isinstance(expr, _RowValue):
            raise BackendError("row value constructor used outside IN/quantified "
                               "comparison")
        if isinstance(expr, s.SubqueryExpr) and isinstance(expr.plan, QuerySpec):
            expr.plan = self.plan_query(expr.plan, scope)
        return expr


# ---------------------------------------------------------------------------
# Rewrite helpers
# ---------------------------------------------------------------------------

def _default_name(expr: ScalarExpr, position: int) -> str:
    if isinstance(expr, s.ColumnRef):
        return expr.name
    if isinstance(expr, s.AggCall):
        return expr.name
    if isinstance(expr, s.FuncCall):
        return expr.name
    return f"_C{position}"


def _contains_aggregate(expr: ScalarExpr) -> bool:
    if isinstance(expr, s.AggCall):
        return True
    return any(_contains_aggregate(child) for child in expr.children())


def _collect_aggregates(expr: ScalarExpr, out: list[s.AggCall]) -> None:
    """Collect AggCall nodes (outside subquery plans, deduplicated by identity
    and structure)."""
    if isinstance(expr, s.AggCall):
        for existing in out:
            if existing is expr or s.same(existing, expr):
                return
        out.append(expr)
        return
    if isinstance(expr, s.WindowFunc):
        # Aggregates inside a window spec (e.g. RANK() OVER (ORDER BY SUM(x)))
        # belong to the aggregation below the window.
        for child in expr.children():
            _collect_aggregates(child, out)
        return
    for child in expr.children():
        _collect_aggregates(child, out)


class _AggReplacer:
    """Top-down replacement of group-by subtrees and aggregate calls with
    references to the Aggregate operator's output columns."""

    def __init__(self, group_by, group_names, aggs, agg_names):
        self._groups = list(zip(group_by, group_names))
        self._aggs = list(zip(aggs, agg_names))

    def rewrite(self, expr: ScalarExpr) -> ScalarExpr:
        if isinstance(expr, s.AggCall):
            for agg, name in self._aggs:
                if agg is expr or s.same(agg, expr):
                    return s.ColumnRef(name, type=expr.type)
            raise BackendError("uncollected aggregate (planner bug)")
        for group, name in self._groups:
            if s.same(group, expr):
                return s.ColumnRef(name, type=expr.type)
        if isinstance(expr, s.SubqueryExpr):
            # Do not descend into subquery plans: their columns are their own.
            expr.left = [self.rewrite(item) for item in expr.left]
            return expr
        for field_name in expr.CHILD_FIELDS:
            value = getattr(expr, field_name)
            if isinstance(value, ScalarExpr):
                setattr(expr, field_name, self.rewrite(value))
            elif isinstance(value, list):
                setattr(expr, field_name, [
                    self.rewrite(item) if isinstance(item, ScalarExpr) else item
                    for item in value
                ])
        return expr


class _WindowExtractor:
    """Pulls WindowFunc specs out of scalar trees, replacing them with
    references to the Window operator's computed columns."""

    def __init__(self, funcs: list[s.WindowFunc], names: list[str]):
        self._funcs = funcs
        self._names = names

    def rewrite(self, expr: ScalarExpr) -> ScalarExpr:
        if isinstance(expr, s.WindowFunc):
            for func, name in zip(self._funcs, self._names):
                if func is expr or s.same(func, expr):
                    return s.ColumnRef(name, type=expr.type)
            name = f"_W{len(self._funcs)}"
            self._funcs.append(expr)
            self._names.append(name)
            return s.ColumnRef(name, type=expr.type)
        if isinstance(expr, s.SubqueryExpr):
            expr.left = [self.rewrite(item) for item in expr.left]
            return expr
        for field_name in expr.CHILD_FIELDS:
            value = getattr(expr, field_name)
            if isinstance(value, ScalarExpr):
                setattr(expr, field_name, self.rewrite(value))
            elif isinstance(value, list):
                setattr(expr, field_name, [
                    self.rewrite(item) if isinstance(item, ScalarExpr) else item
                    for item in value
                ])
        return expr
