"""Row storage for the backend database.

A deliberately simple heap: each table is a list of row tuples guarded by its
:class:`~repro.xtra.schema.TableSchema`. Type checking happens at insert time
so downstream operators can trust value shapes. NOT NULL and (constant)
DEFAULT column properties are enforced here; richer Teradata column
properties (non-constant defaults, CASESPECIFIC, SET semantics) are exactly
the gaps Hyper-Q emulates in the mid-tier.
"""

from __future__ import annotations

import datetime
from typing import Iterable, Optional

from repro.errors import BackendError, TypeMismatchError
from repro.xtra.schema import ColumnSchema, TableSchema
from repro.xtra.types import SQLType, TypeKind

Row = tuple

_INT_KINDS = (TypeKind.SMALLINT, TypeKind.INTEGER, TypeKind.BIGINT)


def coerce_value(value: object, target: SQLType, column_name: str = "?") -> object:
    """Coerce a Python value into the runtime representation of *target*.

    Raises :class:`TypeMismatchError` for values that cannot represent the
    declared type. NULL (None) always passes; nullability is checked by the
    caller because it needs the column metadata.
    """
    if value is None:
        return None
    kind = target.kind
    if kind in _INT_KINDS:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(
                f"column {column_name}: expected {kind.value}, got {type(value).__name__}")
        if isinstance(value, float):
            if not value.is_integer():
                raise TypeMismatchError(
                    f"column {column_name}: non-integral value {value!r} for {kind.value}")
            return int(value)
        return value
    if kind in (TypeKind.DECIMAL, TypeKind.FLOAT):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(
                f"column {column_name}: expected numeric, got {type(value).__name__}")
        return float(value)
    if kind in (TypeKind.CHAR, TypeKind.VARCHAR):
        if not isinstance(value, str):
            raise TypeMismatchError(
                f"column {column_name}: expected text, got {type(value).__name__}")
        if target.length is not None and len(value) > target.length:
            raise TypeMismatchError(
                f"column {column_name}: value of length {len(value)} exceeds "
                f"{kind.value}({target.length})")
        if kind is TypeKind.CHAR and target.length is not None:
            return value.ljust(target.length)
        return value
    if kind is TypeKind.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if not isinstance(value, datetime.date):
            raise TypeMismatchError(
                f"column {column_name}: expected DATE, got {type(value).__name__}")
        return value
    if kind is TypeKind.TIMESTAMP:
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        raise TypeMismatchError(
            f"column {column_name}: expected TIMESTAMP, got {type(value).__name__}")
    if kind is TypeKind.TIME:
        if not isinstance(value, datetime.time):
            raise TypeMismatchError(
                f"column {column_name}: expected TIME, got {type(value).__name__}")
        return value
    if kind is TypeKind.BOOLEAN:
        if not isinstance(value, bool):
            raise TypeMismatchError(
                f"column {column_name}: expected BOOLEAN, got {type(value).__name__}")
        return value
    # UNKNOWN / INTERVAL / PERIOD / BYTE: store as-is.
    return value


class Table:
    """One heap table: schema plus stored rows."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: list[Row] = []

    def __len__(self) -> int:
        return len(self.rows)

    def insert_row(self, values: Iterable[object]) -> None:
        """Validate, coerce and append a single row."""
        values = list(values)
        if len(values) != len(self.schema.columns):
            raise BackendError(
                f"table {self.schema.name}: expected {len(self.schema.columns)} "
                f"values, got {len(values)}")
        coerced = []
        for value, column in zip(values, self.schema.columns):
            if value is None and not column.nullable:
                raise BackendError(
                    f"table {self.schema.name}: NULL in NOT NULL column {column.name}")
            coerced.append(coerce_value(value, column.type, column.name))
        self.rows.append(tuple(coerced))

    def insert_rows(self, rows: Iterable[Iterable[object]]) -> int:
        count = 0
        for row in rows:
            self.insert_row(row)
            count += 1
        return count

    def truncate(self) -> int:
        removed = len(self.rows)
        self.rows = []
        return removed

    def column_index(self, name: str) -> int:
        wanted = name.upper()
        for index, column in enumerate(self.schema.columns):
            if column.name == wanted:
                return index
        raise BackendError(f"table {self.schema.name}: no column {name!r}")


def default_value_for(column: ColumnSchema) -> object:
    """Evaluate a *constant* DEFAULT expression from the column metadata.

    The backend supports only literal defaults; non-constant defaults
    (``CURRENT_DATE`` etc.) are an emulated column property (Table 2) and are
    resolved by Hyper-Q before the INSERT reaches us.
    """
    sql = column.default_sql
    if sql is None:
        return None
    text = sql.strip()
    if text.upper() == "NULL":
        return None
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1].replace("''", "'")
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    raise BackendError(
        f"column {column.name}: non-constant DEFAULT {sql!r} is not supported "
        "by this backend")
