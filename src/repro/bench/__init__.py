"""Benchmark harness utilities: experiment drivers and report formatting."""

from repro.bench.harness import (
    WorkloadStudyResult,
    prepare_tpch_engine,
    run_tpch_sequential,
    run_tpch_stress,
    run_workload_study,
)
from repro.bench.reporting import format_table, percent

__all__ = [
    "WorkloadStudyResult",
    "prepare_tpch_engine",
    "run_tpch_sequential",
    "run_tpch_stress",
    "run_workload_study",
    "format_table",
    "percent",
]
