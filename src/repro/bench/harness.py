"""Experiment drivers shared by benchmarks, examples and integration tests.

Each driver corresponds to one experiment of Section 7:

* :func:`run_workload_study` — the customer workload study (Table 1,
  Figures 8a/8b),
* :func:`run_tpch_sequential` — single-client TPC-H overhead run (Figure 9a),
* :func:`run_tpch_stress` — concurrent multi-client stress test (Figure 9b).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.engine import HyperQ
from repro.core.timing import TimingLog
from repro.core.tracker import FeatureTracker
from repro.protocol.client import TdClient
from repro.protocol.server import ServerThread
from repro.workloads import customer
from repro.workloads.features import FeatureClass
from repro.workloads.tpch import datagen, queries
from repro.workloads.tpch.schema import SCHEMA_DDL, TABLE_NAMES


# ---------------------------------------------------------------------------
# Workload study (Table 1, Figure 8)
# ---------------------------------------------------------------------------

@dataclass
class WorkloadStudyResult:
    """Measured outcome of the workload study for one customer."""

    profile: customer.CustomerProfile
    presence: dict[FeatureClass, float] = field(default_factory=dict)
    affected: dict[FeatureClass, float] = field(default_factory=dict)
    total_queries: int = 0
    distinct_queries: int = 0
    translation_errors: int = 0


def run_workload_study(profile: customer.CustomerProfile) -> WorkloadStudyResult:
    """Translate every distinct query of a customer workload, tracking
    feature usage (the instrumentation of Section 7.1)."""
    engine = HyperQ()
    setup = engine.create_session()
    for ddl in customer.schema_sql(profile) + customer.setup_sql(profile):
        setup.execute(ddl)
    tracker = FeatureTracker()
    engine.tracker = tracker
    session = engine.create_session()
    errors = 0
    for query_text in customer.distinct_queries(profile):
        try:
            session.translate(query_text)
        except Exception:
            errors += 1
    freqs = customer.frequencies(profile)
    return WorkloadStudyResult(
        profile=profile,
        presence=tracker.feature_presence_by_class(),
        affected=tracker.affected_query_fraction_by_class(),
        total_queries=sum(freqs),
        distinct_queries=len(freqs),
        translation_errors=errors,
    )


# ---------------------------------------------------------------------------
# TPC-H overhead (Figure 9)
# ---------------------------------------------------------------------------

def prepare_tpch_engine(scale: float = 0.001, seed: int = 20180610,
                        converter_parallelism: int = 1,
                        batch_budget=None) -> HyperQ:
    """An engine with the TPC-H schema created through Hyper-Q and data
    loaded into the backing warehouse. *batch_budget* bounds the streaming
    result pipeline (rows per batch, per-layer memory ceiling)."""
    engine = HyperQ(converter_parallelism=converter_parallelism,
                    batch_budget=batch_budget)
    session = engine.create_session()
    for table in TABLE_NAMES:
        session.execute(SCHEMA_DDL[table].strip())
    datagen.load_direct(engine.backend, scale=scale, seed=seed)
    # Loading is not part of the measured workload.
    engine.timing_log = TimingLog()
    return engine


def run_tpch_sequential(engine: HyperQ,
                        query_numbers: list[int] | None = None) -> TimingLog:
    """Run the TPC-H queries once on a single session; returns the timing
    log holding the translation/execution/conversion split (Figure 9a)."""
    session = engine.create_session()
    for number in query_numbers or list(range(1, 23)):
        result = session.execute(queries.query(number))
        result.close()
    return engine.timing_log


def run_tpch_stress(engine: HyperQ, clients: int = 10,
                    iterations_per_client: int = 1,
                    query_numbers: list[int] | None = None) -> TimingLog:
    """Figure 9b: *clients* concurrent sessions each repeatedly submit TPC-H
    queries through the wire protocol."""
    numbers = query_numbers or list(range(1, 23))
    errors: list[Exception] = []

    with ServerThread(engine) as (host, port):
        def worker(worker_id: int) -> None:
            try:
                with TdClient(host, port, user=f"client{worker_id}") as client:
                    for __ in range(iterations_per_client):
                        for number in numbers:
                            client.execute(queries.query(number))
            except Exception as error:  # surfaced after join
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]
    return engine.timing_log
