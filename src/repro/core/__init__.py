"""Hyper-Q core: the adaptive data virtualization engine (the paper's
primary contribution)."""

from repro.core.tracker import FeatureTracker
from repro.core.timing import RequestTiming

__all__ = ["FeatureTracker", "RequestTiming"]
