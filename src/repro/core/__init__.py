"""Hyper-Q core: the adaptive data virtualization engine (the paper's
primary contribution)."""

from repro.core.faults import (
    FaultSchedule, FaultSpec, ResilienceStats, RetryPolicy, named_schedule,
)
from repro.core.tracker import FeatureTracker
from repro.core.timing import RequestTiming

__all__ = [
    "FaultSchedule", "FaultSpec", "FeatureTracker", "RequestTiming",
    "ResilienceStats", "RetryPolicy", "named_schedule",
]
