"""Hyper-Q core: the adaptive data virtualization engine (the paper's
primary contribution)."""

from repro.core.trace import (
    Histogram, MetricsRegistry, Trace, TraceHub, assert_span_tree,
    render_trace,
)
from repro.core.faults import (
    FaultSchedule, FaultSpec, ResilienceStats, RetryPolicy, named_schedule,
)
from repro.core.tracker import FeatureTracker
from repro.core.timing import RequestTiming

__all__ = [
    "FaultSchedule", "FaultSpec", "FeatureTracker", "Histogram",
    "MetricsRegistry", "RequestTiming", "ResilienceStats", "RetryPolicy",
    "Trace", "TraceHub", "assert_span_tree", "named_schedule",
    "render_trace",
]
