"""Per-request batch budget for the streaming result pipeline.

The paper's data path (Section 5) is streaming: the ODBC Server fetches
result *batches* into TDF and the Result Converter re-encodes them onto the
source wire as they arrive. A :class:`BatchBudget` is the knob that bounds
that pipeline: how many rows travel in one batch between layers, and how
many bytes of converted row data any single layer may hold before it must
spill to disk. One budget is threaded per request from
:class:`~repro.core.engine.HyperQ` through the ODBC Server, the Result
Converter, and the Result Store.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rows per batch when no budget is configured.
DEFAULT_BATCH_ROWS = 1024

#: Per-layer memory ceiling (bytes of converted row data) when no budget is
#: configured.
DEFAULT_MAX_MEMORY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class BatchBudget:
    """Bounds for one request's result stream.

    ``batch_rows`` is the unit of flow control: the executor yields row
    batches of at most this size, the ODBC Server encodes one TDF packet per
    batch, and the Result Converter emits one wire chunk per packet. A pull
    on the wire end therefore holds at most one batch of row data live per
    layer.

    ``max_memory_bytes`` caps what a *buffering* layer may keep in memory
    when a consumer falls behind or a compatibility shim materializes the
    stream; beyond it, chunks spill to disk
    (:class:`~repro.results.store.ResultStore`).
    """

    batch_rows: int = DEFAULT_BATCH_ROWS
    max_memory_bytes: int = DEFAULT_MAX_MEMORY_BYTES

    def __post_init__(self) -> None:
        if self.batch_rows < 1:
            raise ValueError("batch_rows must be at least 1")
        if self.max_memory_bytes < 0:
            raise ValueError("max_memory_bytes cannot be negative")

    def with_overrides(self, batch_rows: int | None = None,
                       max_memory_bytes: int | None = None) -> "BatchBudget":
        """A copy with non-zero overrides applied (workload classes tighten
        or widen the engine default per request; 0/None inherits)."""
        return BatchBudget(
            batch_rows=batch_rows or self.batch_rows,
            max_memory_bytes=max_memory_bytes or self.max_memory_bytes,
        )
