"""The translation cache: memoized parse→bind→transform→serialize results.

Table 1's workloads repeat heavily (39,731 total vs 3,778 distinct queries
for the Health customer), and the paper's Figure 9 overhead claim rests on
translation staying a sliver of end-to-end time even under concurrency. This
module removes repeated translation work entirely:

* :func:`fingerprint` canonicalizes a source request into a whitespace-,
  case- and comment-insensitive token stream with literals lifted into
  synthetic slots, so ``SEL * FROM T WHERE ID = 7`` and ``... ID = 42``
  share one cache entry.
* :class:`TranslationCache` is a byte-capped, thread-safe LRU keyed by
  ``(source, target-capability-profile, fingerprint,
  session-overlay-version)`` storing the serialized target SQL (as a
  literal-slot template when safe, exact text otherwise) plus the tracker
  feature bits observed during translation.

Safety comes from *sentinel probing*: before a parameterized template is
trusted, the statement is re-translated with unique sentinel literals and the
template is accepted only if every sentinel survives translation verbatim.
Value-dependent rewrites (ordinal GROUP BY, date/int comparison folding,
interval arithmetic) destroy their sentinel and demote the entry to
exact-match caching, which is always correct.

Invalidation is *semantic*: every entry carries the dependency set the
extractor (``core/deps.py``) computed for its statement — base tables
through view closures, plus the ``"*"`` wildcard when the closure is
unknown — and an inverted table→entries index drops exactly the entries
whose dependencies intersect a catalog change.  DDL on table A leaves
entries that touch only table B in place (previously any DDL flushed the
whole cache).  Volatile-table changes still bump the per-session overlay
version that is part of the key, and overlay entries are eagerly
invalidated so the memory is reclaimed and counted.
"""

from __future__ import annotations

import datetime
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Callable, NamedTuple, Optional

from repro.core.deps import WILDCARD
from repro.sqlkit.tokens import Token, TokenKind

# -- literal slot kinds -----------------------------------------------------------

KIND_INT = "i"        # integer literal
KIND_FLOAT = "f"      # float/decimal literal (never templated: formatting)
KIND_STRING = "s"     # plain string literal
KIND_DATE = "d"       # string literal following the DATE keyword
KIND_OTHER = "o"      # TIME/TIMESTAMP/INTERVAL literal (never templated)

#: Slot kinds eligible for sentinel probing and template substitution.
TEMPLATABLE_KINDS = frozenset({KIND_INT, KIND_STRING, KIND_DATE})

#: Keywords that type the string literal that follows them.
_TYPED_LITERAL_KEYWORDS = {
    "DATE": KIND_DATE,
    "TIME": KIND_OTHER,
    "TIMESTAMP": KIND_OTHER,
    "INTERVAL": KIND_OTHER,
}


@dataclass(frozen=True)
class LiteralSlot:
    """One lifted literal: its kind and source value."""

    kind: str
    value: object


class Fingerprint:
    """Canonical form of one source request.

    ``text`` is the case/whitespace/comment-insensitive token stream with
    literal tokens replaced by kind-tagged placeholders; ``slots`` carries
    the lifted literal values in source order. ``tokens`` keeps the raw
    token list around for sentinel-probe reconstruction (transient — never
    stored in the cache).
    """

    __slots__ = ("text", "slots", "tokens")

    def __init__(self, text: str, slots: tuple[LiteralSlot, ...],
                 tokens: list[Token]):
        self.text = text
        self.slots = slots
        self.tokens = tokens

    def values_key(self) -> tuple:
        """Hashable projection of all lifted literal values."""
        return tuple((slot.kind, slot.value) for slot in self.slots)


def fingerprint(sql: str, lexer) -> Fingerprint:
    """Canonicalize *sql* using *lexer* (the session frontend's own lexer).

    Raises whatever the lexer raises on malformed input; callers treat that
    as a cache bypass and let the real parser produce the error.
    """
    tokens = lexer.tokenize(sql)
    parts: list[str] = []
    slots: list[LiteralSlot] = []
    previous_keyword: Optional[str] = None
    for token in tokens:
        if token.kind is TokenKind.EOF:
            break
        if token.kind is TokenKind.NUMBER:
            kind = KIND_INT if isinstance(token.value, int) else KIND_FLOAT
            parts.append("\x00" + kind)
            slots.append(LiteralSlot(kind, token.value))
        elif token.kind is TokenKind.STRING:
            kind = _TYPED_LITERAL_KEYWORDS.get(previous_keyword or "", KIND_STRING)
            parts.append("\x00" + kind)
            slots.append(LiteralSlot(kind, token.value))
        elif token.kind is TokenKind.QUOTED_IDENT:
            # Quoted identifiers keep their exact case (they are case-
            # sensitive in SQL); quote them so "x" and bare X never collide.
            parts.append('"' + str(token.value) + '"')
        elif token.kind is TokenKind.PARAM:
            parts.append("?" if token.value == "?" else ":" + str(token.value))
        else:
            # Keywords/identifiers are already upper-cased by the lexer;
            # operators are normalized (e.g. ^= -> <>).
            parts.append(str(token.value))
        previous_keyword = (str(token.value)
                            if token.kind is TokenKind.KEYWORD else None)
    return Fingerprint(" ".join(parts), tuple(slots), tokens)


# -- sentinel probing ---------------------------------------------------------------

_INT_SENTINEL_BASE = 987_650_001
_STR_SENTINEL_BASE = 7_650_001


def _sentinel_for(slot_index: int, kind: str) -> tuple[str, str]:
    """(source spelling, expected target spelling) for one probed slot."""
    if kind == KIND_INT:
        digits = str(_INT_SENTINEL_BASE + slot_index)
        return digits, digits
    if kind == KIND_STRING:
        # Digit-only payload framed by control chars: survives UPPER()
        # compensation and cannot collide with real identifiers or numbers.
        inner = f"\x02{_STR_SENTINEL_BASE + slot_index}\x02"
        return "'" + inner + "'", "'" + inner + "'"
    if kind == KIND_DATE:
        inner = f"{3900 + slot_index // 28:04d}-12-{1 + slot_index % 28:02d}"
        return "'" + inner + "'", "'" + inner + "'"
    raise ValueError(f"slot kind {kind!r} is not templatable")


def build_probe_sql(fp: Fingerprint) -> Optional[tuple[str, list[str]]]:
    """Rebuild the source text with every literal replaced by a sentinel.

    Returns ``(probe_sql, expected target spellings per slot)`` or ``None``
    when any slot kind cannot be probed (floats, interval/timestamp
    literals) — those statements fall back to exact-match caching.
    """
    if any(slot.kind not in TEMPLATABLE_KINDS for slot in fp.slots):
        return None
    out: list[str] = []
    expected: list[str] = []
    slot_index = 0
    for token in fp.tokens:
        if token.kind is TokenKind.EOF:
            break
        if token.kind in (TokenKind.NUMBER, TokenKind.STRING):
            source, target = _sentinel_for(slot_index, fp.slots[slot_index].kind)
            out.append(source)
            expected.append(target)
            slot_index += 1
        else:
            out.append(token.text)
    return " ".join(out), expected


@dataclass(frozen=True)
class Template:
    """Target SQL split at literal substitution sites.

    ``segments`` has one more element than ``slot_refs``; rendering
    interleaves ``segments[k] + literal(slot_refs[k])``. A slot may be
    referenced more than once (named-expression aliasing duplicates
    literals), and every referenced occurrence was verified by the probe.
    """

    segments: tuple[str, ...]
    slot_refs: tuple[int, ...]

    def render(self, slots: tuple[LiteralSlot, ...]) -> Optional[str]:
        out: list[str] = []
        for segment, ref in zip(self.segments, self.slot_refs):
            out.append(segment)
            rendered = _render_literal(slots[ref])
            if rendered is None:
                return None
            out.append(rendered)
        out.append(self.segments[-1])
        return "".join(out)

    def size(self) -> int:
        return sum(len(segment) for segment in self.segments) \
            + 8 * len(self.slot_refs)


def _render_literal(slot: LiteralSlot) -> Optional[str]:
    """Render a literal exactly as the serializer would."""
    if slot.kind == KIND_INT:
        return str(slot.value)
    if slot.kind == KIND_STRING:
        return "'" + str(slot.value).replace("'", "''") + "'"
    if slot.kind == KIND_DATE:
        # A hit bypasses the binder's date validation; splice only strings
        # the serializer itself would have produced for a parsed DATE.
        try:
            parsed = datetime.date.fromisoformat(str(slot.value))
        except ValueError:
            return None
        return "'" + parsed.isoformat() + "'"
    return None


def _is_number_boundary(char: str) -> bool:
    return not (char.isalnum() or char in "_.")


def build_template(target_sql: str,
                   expected: list[str]) -> Optional[Template]:
    """Split probe-translated *target_sql* at the sentinel sites.

    Every sentinel must appear at least once, delimited (for numbers) so a
    digit run inside a larger constant never matches, and occurrences must
    not overlap. Any anomaly — a sentinel consumed by a value-dependent
    rewrite, folded into another constant, or duplicated ambiguously —
    rejects the template.
    """
    sites: list[tuple[int, int, int]] = []
    for slot_index, pattern in enumerate(expected):
        found = 0
        start = 0
        while True:
            position = target_sql.find(pattern, start)
            if position < 0:
                break
            end = position + len(pattern)
            if pattern[0] != "'":
                before = target_sql[position - 1] if position else " "
                after = target_sql[end] if end < len(target_sql) else " "
                if not (_is_number_boundary(before)
                        and _is_number_boundary(after)):
                    start = position + 1
                    continue
            sites.append((position, end, slot_index))
            found += 1
            start = end
        if found == 0:
            return None
    sites.sort()
    segments: list[str] = []
    slot_refs: list[int] = []
    cursor = 0
    for position, end, slot_index in sites:
        if position < cursor:
            return None
        segments.append(target_sql[cursor:position])
        slot_refs.append(slot_index)
        cursor = end
    segments.append(target_sql[cursor:])
    return Template(tuple(segments), tuple(slot_refs))


# -- the shared tier interface -------------------------------------------------------


class CacheTier:
    """Interface of a shared L2 translation-cache tier.

    The gateway implements this over a cache-service process (one per
    fleet); tests implement it in memory. Keys are the exact tuples the L1
    uses — ``key_base + ("T",)`` for templates, ``key_base + ("E", values,
    params)`` for pinned entries — so tier and L1 agree byte-for-byte on
    what an entry means. Every method may raise (the service can be down);
    the L1 treats any tier error as a miss.
    """

    def get(self, key: tuple) -> Optional["CacheEntry"]:
        raise NotImplementedError

    def put(self, key: tuple, entry: "CacheEntry") -> None:
        raise NotImplementedError

    def invalidate_tables(self, names: tuple) -> None:
        """Drop entries whose dependency set intersects *names*."""
        raise NotImplementedError


# -- the cache ----------------------------------------------------------------------


class CacheHit(NamedTuple):
    """What :meth:`TranslationCache.lookup` returns on a hit.

    ``deps``/``result_shareable`` echo the entry's dependency facts so the
    execute path can feed the result cache without re-binding.
    """

    target_sql: str
    notes: tuple
    deps: tuple = (WILDCARD,)
    result_shareable: bool = False


@dataclass
class CacheStats:
    """Monotonic counters; snapshot with :meth:`TranslationCache.stats`.

    ``tier_hits`` / ``tier_misses`` count shared-tier (L2) consultations on
    L1 misses when a cache tier is attached (the gateway's cache service); a
    tier hit also counts as a plain ``hit`` — the request skipped
    translation either way.
    """

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0
    bypasses: int = 0
    tier_hits: int = 0
    tier_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits, "misses": self.misses,
            "inserts": self.inserts, "evictions": self.evictions,
            "invalidations": self.invalidations, "bypasses": self.bypasses,
            "tier_hits": self.tier_hits, "tier_misses": self.tier_misses,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CacheEntry:
    """One memoized translation.

    ``deps`` is the statement's base-table dependency set (upper-cased,
    sorted; may contain the ``"*"`` wildcard when the closure is unknown).
    The cache indexes entries by it for precise invalidation.
    """

    template: Optional[Template]      # parameterized form, or
    sql: Optional[str]                # exact target SQL (pinned literals)
    notes: tuple[tuple[str, str], ...]  # tracker (feature, stage) bits
    deps: tuple[str, ...] = (WILDCARD,)
    overlay_uid: Optional[int] = None
    #: True when the statement's *result* may also be cached (read-only,
    #: deterministic, no volatile tables) — carried here so a translation
    #: hit still knows whether to rematerialize into the result cache.
    result_shareable: bool = False
    size: int = 0

    def __post_init__(self):
        base = self.template.size() if self.template is not None \
            else len(self.sql or "")
        self.size = base + 32 * len(self.notes) \
            + sum(16 + len(name) for name in self.deps) + 128


class TranslationCache:
    """Thread-safe byte-capped LRU over :class:`CacheEntry`.

    Shared by every session of an engine (and, through the protocol server,
    every concurrent connection). All mutation happens under one lock; the
    expensive work — fingerprinting and sentinel probing — happens outside.
    """

    #: Entry count cap for the exact-text fingerprint memo.
    FP_MEMO_ENTRIES = 4096

    def __init__(self, max_bytes: int, tier: Optional["CacheTier"] = None,
                 tenant_shares: Optional[dict] = None):
        if max_bytes <= 0:
            raise ValueError("TranslationCache needs a positive byte cap; "
                             "use cache_size=0 on the engine to disable")
        self._max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        # Inverted dependency index: table name (or "*") -> entry keys.
        self._dep_index: dict[str, set] = {}
        self._bytes = 0
        self._stats = CacheStats()
        # Per-tenant byte accounting with reserved eviction floors:
        # ``tenant_shares`` maps tenant name -> fraction of the cap below
        # which other tenants' inserts may not evict that tenant's entries.
        shares = dict(tenant_shares) if tenant_shares else {}
        if sum(shares.values()) > 1.0 + 1e-9:
            raise ValueError("tenant translation-cache shares sum to more "
                             "than the whole cache")
        self._reserved = {tenant: int(share * max_bytes)
                          for tenant, share in shares.items()}
        self._owner: dict[tuple, Optional[str]] = {}
        self._tenant_bytes: dict[str, int] = {}
        #: Optional shared L2 (:class:`CacheTier`): consulted outside the
        #: lock on L1 misses, written through on inserts. Only entries with
        #: no session overlay in the key are shared — overlay uids are
        #: process-local and must never collide across gateway workers.
        self.tier = tier
        # Exact-text -> Fingerprint memo: repeated request texts (the
        # dominant pattern per Table 1) skip the lexer entirely on the hot
        # path. Purely lexical, so it never needs invalidation.
        self._fp_memo: "OrderedDict[str, Fingerprint]" = OrderedDict()

    def fingerprint_cached(self, sql: str, lexer) -> Fingerprint:
        """Fingerprint *sql*, memoizing by exact text."""
        with self._lock:
            memoized = self._fp_memo.get(sql)
            if memoized is not None:
                self._fp_memo.move_to_end(sql)
                return memoized
        fp = fingerprint(sql, lexer)
        with self._lock:
            self._fp_memo[sql] = fp
            while len(self._fp_memo) > self.FP_MEMO_ENTRIES:
                self._fp_memo.popitem(last=False)
        return fp

    # -- key composition ------------------------------------------------------------

    @staticmethod
    def key_base(source: str, profile_name: str, fp_text: str,
                 overlay_key) -> tuple:
        return (source, profile_name, fp_text, overlay_key)

    # -- lookup / insert ------------------------------------------------------------

    def lookup(self, key_base: tuple, fp: Fingerprint,
               params_key: Optional[tuple]) -> Optional[CacheHit]:
        """Return a :class:`CacheHit` on a hit, ``None`` on a miss.

        The L1 probe runs under the lock; on an L1 miss with a shared tier
        attached (and no session overlay in the key), the tier is consulted
        *outside* the lock — a tier RPC must never serialize the fleet's
        hot path — and a tier entry is adopted into the L1 so the next
        lookup of the same statement is purely local.
        """
        exact_key = key_base + ("E", fp.values_key(), params_key)
        with self._lock:
            if params_key is None:
                entry = self._entries.get(key_base + ("T",))
                if entry is not None and entry.template is not None:
                    rendered = entry.template.render(fp.slots)
                    if rendered is not None:
                        self._entries.move_to_end(key_base + ("T",))
                        self._stats.hits += 1
                        return CacheHit(rendered, entry.notes, entry.deps,
                                        entry.result_shareable)
            entry = self._entries.get(exact_key)
            if entry is not None and entry.sql is not None:
                self._entries.move_to_end(exact_key)
                self._stats.hits += 1
                return CacheHit(entry.sql, entry.notes, entry.deps,
                                entry.result_shareable)
        shareable = self.tier is not None and key_base[3] is None
        if shareable:
            found = self._tier_lookup(key_base, fp, params_key, exact_key)
            if found is not None:
                return found
        with self._lock:
            self._stats.misses += 1
            if shareable:
                self._stats.tier_misses += 1
            return None

    def _tier_lookup(self, key_base: tuple, fp: Fingerprint,
                     params_key: Optional[tuple],
                     exact_key: tuple) -> Optional[CacheHit]:
        """Consult the shared tier after an L1 miss; adopt hits into the L1.
        Any tier error (service down, protocol hiccup) degrades to a miss."""
        try:
            if params_key is None:
                entry = self.tier.get(key_base + ("T",))
                if entry is not None and entry.template is not None:
                    rendered = entry.template.render(fp.slots)
                    if rendered is not None:
                        self._adopt(key_base + ("T",), entry)
                        return CacheHit(rendered, entry.notes, entry.deps,
                                        entry.result_shareable)
            entry = self.tier.get(exact_key)
            if entry is not None and entry.sql is not None:
                self._adopt(exact_key, entry)
                return CacheHit(entry.sql, entry.notes, entry.deps,
                                entry.result_shareable)
        except Exception:
            return None
        return None

    def _index_add(self, key: tuple, entry: CacheEntry) -> None:
        for name in entry.deps:
            self._dep_index.setdefault(name, set()).add(key)

    def _index_remove(self, key: tuple, entry: CacheEntry) -> None:
        for name in entry.deps:
            keys = self._dep_index.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._dep_index[name]

    def _install(self, key: tuple, entry: CacheEntry,
                 tenant: Optional[str] = None) -> None:
        """Put *entry* under *key* and evict over cap; caller holds the lock."""
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._account(key, -previous.size)
            self._index_remove(key, previous)
        self._entries[key] = entry
        self._owner[key] = tenant
        self._account(key, entry.size)
        self._index_add(key, entry)
        while self._bytes > self._max_bytes and self._entries:
            victim = next((k for k in self._entries
                           if self._evictable(k, tenant)), None)
            if victim is None:
                # Everyone else is at or below their reserved floor:
                # progress beats protection, take the global LRU head.
                victim = next(iter(self._entries))
            self._remove(victim, self._entries[victim])
            self._stats.evictions += 1

    def _account(self, key: tuple, delta: int) -> None:
        self._bytes += delta
        tenant = self._owner.get(key)
        if tenant is None:
            return
        total = self._tenant_bytes.get(tenant, 0) + delta
        if total > 0:
            self._tenant_bytes[tenant] = total
        else:
            self._tenant_bytes.pop(tenant, None)

    def _evictable(self, key: tuple, inserting: Optional[str]) -> bool:
        """May *key* be evicted on behalf of tenant *inserting*?  A tenant
        may always shed its own entries; another tenant's entries are fair
        game only while that tenant sits above its reserved share."""
        owner = self._owner.get(key)
        if owner is None or owner == inserting:
            return True
        return self._tenant_bytes.get(owner, 0) > self._reserved.get(owner, 0)

    def _remove(self, key: tuple, entry: CacheEntry) -> None:
        del self._entries[key]
        self._account(key, -entry.size)
        self._owner.pop(key, None)
        self._index_remove(key, entry)

    def _adopt(self, key: tuple, entry: CacheEntry) -> None:
        """Install a tier-provided entry into the L1 (counted as a hit plus
        a tier hit, never as an insert — no translation happened here)."""
        with self._lock:
            self._stats.hits += 1
            self._stats.tier_hits += 1
            self._install(key, entry)

    def contains(self, key_base: tuple, fp: Fingerprint,
                 params_key: Optional[tuple]) -> bool:
        """Would :meth:`lookup` hit right now? Touches no stats, no LRU
        order — the workload classifier's cache-hit probe must not distort
        the hit rate or the eviction sequence."""
        with self._lock:
            if params_key is None:
                entry = self._entries.get(key_base + ("T",))
                if entry is not None and entry.template is not None \
                        and entry.template.render(fp.slots) is not None:
                    return True
            entry = self._entries.get(
                key_base + ("E", fp.values_key(), params_key))
            return entry is not None and entry.sql is not None

    def insert(self, key_base: tuple, fp: Fingerprint,
               params_key: Optional[tuple], target_sql: str,
               notes: tuple[tuple[str, str], ...],
               deps: tuple[str, ...] = (WILDCARD,),
               result_shareable: bool = False,
               probe: Optional[Callable[[str], str]] = None,
               tenant: Optional[str] = None) -> None:
        """Memoize one translation.

        *deps* is the statement's dependency set from the extractor; when a
        caller has none, the default wildcard keeps invalidation sound
        (the entry then drops on any catalog change).

        When *probe* is given, no explicit parameters were bound and every
        slot is templatable, a sentinel probe attempts a parameterized
        template; otherwise (or on any probe anomaly) the exact target SQL
        is pinned under the full literal-value key.
        """
        overlay_key = key_base[3]
        overlay_uid = overlay_key[0] if isinstance(overlay_key, tuple) else None
        # Empty deps is meaningful (a table-free statement like SELECT 1
        # depends on nothing); only the *default* is the wildcard.
        deps = tuple(sorted({name.upper() for name in deps}))
        template: Optional[Template] = None
        if probe is not None and params_key is None and fp.slots:
            built = build_probe_sql(fp)
            if built is not None:
                probe_sql, expected = built
                try:
                    probe_target = probe(probe_sql)
                except Exception:
                    probe_target = None
                if probe_target is not None:
                    template = build_template(probe_target, expected)
        if template is not None:
            key = key_base + ("T",)
            entry = CacheEntry(template=template, sql=None, notes=notes,
                               deps=deps, overlay_uid=overlay_uid,
                               result_shareable=result_shareable)
        else:
            key = key_base + ("E", fp.values_key(), params_key)
            entry = CacheEntry(template=None, sql=target_sql, notes=notes,
                               deps=deps, overlay_uid=overlay_uid,
                               result_shareable=result_shareable)
        with self._lock:
            self._stats.inserts += 1
            self._install(key, entry, tenant=tenant)
        # Write through to the shared tier (outside the lock): a statement
        # one worker translated becomes a warm hit for the whole fleet.
        if self.tier is not None and key_base[3] is None:
            try:
                self.tier.put(key, entry)
            except Exception:
                pass

    def note_bypass(self) -> None:
        """Reclassify the preceding lookup miss as a bypass.

        Cacheability is only known after parsing, so non-cacheable requests
        (DDL, emulated statements) first register a miss; calling this keeps
        the hit rate an honest property of the cacheable population.
        """
        with self._lock:
            if self._stats.misses > 0:
                self._stats.misses -= 1
            self._stats.bypasses += 1

    # -- invalidation ----------------------------------------------------------------

    def invalidate_tables(self, names) -> int:
        """Drop entries whose dependency set intersects *names*.

        Invariant: after DDL on object X, no entry that depends on X (or
        carries the wildcard) survives — while entries on disjoint tables
        stay warm. With a shared tier attached the per-table drop is
        forwarded to it too, so DDL on one gateway worker reclaims exactly
        the fleet's affected entries and nothing else.
        """
        touched = tuple(sorted({name.upper() for name in names}))
        with self._lock:
            if WILDCARD in touched:
                stale = set(self._entries)
            else:
                stale: set = set()
                for name in touched + (WILDCARD,):
                    stale |= self._dep_index.get(name, set())
            for key in stale:
                self._remove(key, self._entries[key])
            self._stats.invalidations += len(stale)
        if self.tier is not None:
            try:
                self.tier.invalidate_tables(touched)
            except Exception:
                pass
        return len(stale)

    def invalidate_overlay(self, session_uid: int) -> int:
        """Drop entries translated under *session_uid*'s volatile overlay.

        Called on every volatile-table create/drop: any translation that
        could have resolved a name through the session's previous overlay
        state is discarded.
        """
        return self._invalidate(
            lambda entry: entry.overlay_uid == session_uid)

    def _invalidate(self, predicate) -> int:
        with self._lock:
            stale = [key for key, entry in self._entries.items()
                     if predicate(entry)]
            for key in stale:
                self._remove(key, self._entries[key])
            self._stats.invalidations += len(stale)
            return len(stale)

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(**{f.name: getattr(self._stats, f.name)
                                 for f in fields(CacheStats)})

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def tenant_bytes(self) -> dict[str, int]:
        """Bytes currently resident per tenant (insert-attributed)."""
        with self._lock:
            return dict(self._tenant_bytes)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dep_index.clear()
            self._owner.clear()
            self._tenant_bytes.clear()
            self._bytes = 0
