"""Hyper-Q's shadow catalog.

Hyper-Q keeps its own picture of the *source-side* schema: Teradata column
properties that the target cannot represent (SET semantics, CASESPECIFIC,
non-constant defaults), view definitions in the source dialect, macro and
procedure bodies, and per-session volatile tables. This is the "state
information maintained in the application layer" that Section 2.1 says
emulation requires (the paper calls it the DTM catalog in Table 2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CatalogError
from repro.xtra.schema import TableSchema
from repro.xtra.types import SQLType


@dataclass
class MacroDef:
    """A stored Teradata macro: named parameterized statement sequence."""

    name: str
    parameters: list[tuple[str, SQLType]] = field(default_factory=list)
    body_sql: str = ""


@dataclass
class ProcedureDef:
    """A stored procedure: parameter modes plus the parsed body block."""

    name: str
    parameters: list[tuple[str, str, SQLType]] = field(default_factory=list)
    body: object = None  # list[TdProcStatement]


class ShadowCatalog:
    """Source-side catalog shared by all Hyper-Q sessions.

    Every mutation — table/view DDL, macro or procedure (re)definition —
    bumps a monotonic :attr:`version` and notifies subscribers, so memoized
    translations keyed on an older version can never be replayed (the
    translation cache's invalidation invariant).
    """

    def __init__(self):
        self._tables: dict[str, TableSchema] = {}
        self._views: dict[str, TableSchema] = {}
        self._macros: dict[str, MacroDef] = {}
        self._procedures: dict[str, ProcedureDef] = {}
        self._version = 0
        self._listeners: list = []

    # -- versioning ------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter, bumped on every catalog mutation."""
        return self._version

    def subscribe(self, listener) -> None:
        """Register ``listener(new_version)`` to run after each mutation."""
        self._listeners.append(listener)

    def _bump(self) -> None:
        self._version += 1
        for listener in self._listeners:
            listener(self._version)

    # -- tables/views ----------------------------------------------------------

    def add_table(self, schema: TableSchema) -> None:
        name = schema.name.upper()
        if name in self._tables or name in self._views:
            raise CatalogError(f"object {name} already exists")
        self._tables[name] = schema
        self._bump()

    def drop_table(self, name: str) -> None:
        if name.upper() not in self._tables:
            raise CatalogError(f"table {name} does not exist")
        del self._tables[name.upper()]
        self._bump()

    def add_view(self, schema: TableSchema, replace: bool = False) -> None:
        name = schema.name.upper()
        if name in self._tables:
            raise CatalogError(f"object {name} already exists as a table")
        if name in self._views and not replace:
            raise CatalogError(f"view {name} already exists")
        self._views[name] = schema
        self._bump()

    def drop_view(self, name: str) -> None:
        if name.upper() not in self._views:
            raise CatalogError(f"view {name} does not exist")
        del self._views[name.upper()]
        self._bump()

    def resolve(self, name: str) -> Optional[TableSchema]:
        key = name.upper()
        return self._tables.get(key) or self._views.get(key)

    def table(self, name: str) -> TableSchema:
        schema = self.resolve(name)
        if schema is None:
            raise CatalogError(f"object {name} does not exist")
        return schema

    def is_view(self, name: str) -> bool:
        return name.upper() in self._views

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # -- macros -------------------------------------------------------------------

    def add_macro(self, macro: MacroDef, replace: bool = False) -> None:
        key = macro.name.upper()
        if key in self._macros and not replace:
            raise CatalogError(f"macro {macro.name} already exists")
        self._macros[key] = macro
        self._bump()

    def drop_macro(self, name: str) -> None:
        if name.upper() not in self._macros:
            raise CatalogError(f"macro {name} does not exist")
        del self._macros[name.upper()]
        self._bump()

    def macro(self, name: str) -> MacroDef:
        macro = self._macros.get(name.upper())
        if macro is None:
            raise CatalogError(f"macro {name} does not exist")
        return macro

    def has_macro(self, name: str) -> bool:
        return name.upper() in self._macros

    # -- procedures -------------------------------------------------------------------

    def add_procedure(self, procedure: ProcedureDef, replace: bool = False) -> None:
        key = procedure.name.upper()
        if key in self._procedures and not replace:
            raise CatalogError(f"procedure {procedure.name} already exists")
        self._procedures[key] = procedure
        self._bump()

    def drop_procedure(self, name: str) -> None:
        if name.upper() not in self._procedures:
            raise CatalogError(f"procedure {name} does not exist")
        del self._procedures[name.upper()]
        self._bump()

    def procedure(self, name: str) -> ProcedureDef:
        procedure = self._procedures.get(name.upper())
        if procedure is None:
            raise CatalogError(f"procedure {name} does not exist")
        return procedure

    def has_procedure(self, name: str) -> bool:
        return name.upper() in self._procedures


class SessionCatalog:
    """Per-session view over the shadow catalog plus volatile tables.

    Volatile-table changes bump :attr:`overlay_version` and notify the
    optional :attr:`overlay_listener`, mirroring the shadow catalog's
    versioning at session scope: translations that resolved a name through
    the overlay are keyed on ``(uid, overlay_version)`` and can never be
    replayed across overlay changes (nor leak into other sessions).
    """

    _uid_counter = 0
    _uid_lock = threading.Lock()

    def __init__(self, shared: ShadowCatalog):
        self.shared = shared
        self._volatile: dict[str, TableSchema] = {}
        with SessionCatalog._uid_lock:
            SessionCatalog._uid_counter += 1
            self.uid = SessionCatalog._uid_counter
        self.overlay_version = 0
        #: ``listener(session_uid)`` called after each volatile change.
        self.overlay_listener = None

    @property
    def overlay_key(self):
        """Cache-key component for the volatile overlay.

        ``None`` while the overlay is empty (name resolution is then
        identical to the shared catalog, so entries are shareable across
        sessions); a per-session ``(uid, version)`` pair otherwise.
        """
        if not self._volatile:
            return None
        return (self.uid, self.overlay_version)

    def _overlay_changed(self) -> None:
        self.overlay_version += 1
        if self.overlay_listener is not None:
            self.overlay_listener(self.uid)

    def add_volatile(self, schema: TableSchema) -> None:
        name = schema.name.upper()
        if name in self._volatile:
            raise CatalogError(f"volatile table {name} already exists")
        self._volatile[name] = schema
        self._overlay_changed()

    def drop_volatile(self, name: str) -> bool:
        dropped = self._volatile.pop(name.upper(), None) is not None
        if dropped:
            self._overlay_changed()
        return dropped

    def is_volatile(self, name: str) -> bool:
        return name.upper() in self._volatile

    def volatile_names(self) -> list[str]:
        return sorted(self._volatile)

    # -- resolution: volatile shadows shared ----------------------------------------

    def resolve(self, name: str) -> Optional[TableSchema]:
        return self._volatile.get(name.upper()) or self.shared.resolve(name)

    def table(self, name: str) -> TableSchema:
        schema = self.resolve(name)
        if schema is None:
            raise CatalogError(f"object {name} does not exist")
        return schema

    def is_view(self, name: str) -> bool:
        if name.upper() in self._volatile:
            return False
        return self.shared.is_view(name)

    def drop_table(self, name: str) -> None:
        if not self.drop_volatile(name):
            self.shared.drop_table(name)
