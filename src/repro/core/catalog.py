"""Hyper-Q's shadow catalog.

Hyper-Q keeps its own picture of the *source-side* schema: Teradata column
properties that the target cannot represent (SET semantics, CASESPECIFIC,
non-constant defaults), view definitions in the source dialect, macro and
procedure bodies, and per-session volatile tables. This is the "state
information maintained in the application layer" that Section 2.1 says
emulation requires (the paper calls it the DTM catalog in Table 2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CatalogError
from repro.xtra.schema import TableSchema
from repro.xtra.types import SQLType


@dataclass
class MacroDef:
    """A stored Teradata macro: named parameterized statement sequence."""

    name: str
    parameters: list[tuple[str, SQLType]] = field(default_factory=list)
    body_sql: str = ""


@dataclass
class ProcedureDef:
    """A stored procedure: parameter modes plus the parsed body block."""

    name: str
    parameters: list[tuple[str, str, SQLType]] = field(default_factory=list)
    body: object = None  # list[TdProcStatement]


class ShadowCatalog:
    """Source-side catalog shared by all Hyper-Q sessions.

    Mutations are versioned *per object*: DDL on a table (or view, macro,
    procedure) bumps only that object's entry in the schema version vector,
    and DML bumps a separate per-table **data** version.  Subscribers are
    notified with the set of touched names, so the translation cache drops
    only entries whose dependency sets intersect the change — DDL on table
    A leaves cached translations that touch only table B in place, both in
    the per-process L1 and the gateway's shared L2 tier.

    A global monotonic :attr:`version` is retained as a cheap "anything
    changed" observer for tooling; nothing is keyed on it anymore.
    """

    def __init__(self):
        self._tables: dict[str, TableSchema] = {}
        self._views: dict[str, TableSchema] = {}
        self._view_deps: dict[str, Optional[tuple]] = {}
        self._macros: dict[str, MacroDef] = {}
        self._procedures: dict[str, ProcedureDef] = {}
        self._version = 0
        self._table_versions: dict[str, int] = {}
        self._data_versions: dict[str, int] = {}
        self._listeners: list = []
        self._data_listeners: list = []

    # -- versioning ------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter, bumped on every catalog mutation."""
        return self._version

    def table_version(self, name: str) -> int:
        """Schema (DDL) epoch of one object; 0 if never touched."""
        return self._table_versions.get(name.upper(), 0)

    def data_version(self, name: str) -> int:
        """Data (DML) epoch of one table; 0 if never written."""
        return self._data_versions.get(name.upper(), 0)

    def version_vector(self, names) -> tuple:
        """Sorted ``(name, schema_epoch, data_epoch)`` triples for *names*.

        This is the result cache's key component: two requests see the same
        vector iff no DDL or DML touched any dependency in between.
        """
        return tuple(
            (key, self._table_versions.get(key, 0),
             self._data_versions.get(key, 0))
            for key in sorted({n.upper() for n in names}))

    def subscribe(self, listener) -> None:
        """Register ``listener(names)`` to run after each schema mutation.

        ``names`` is a tuple of upper-cased object names touched by the
        mutation — the listener should drop state that depends on any of
        them (plus any wildcard bucket).
        """
        self._listeners.append(listener)

    def subscribe_data(self, listener) -> None:
        """Register ``listener(names)`` for data (DML) changes.

        Schema mutations also fire this channel: DDL implies the data a
        dependent result embeds may no longer exist.
        """
        self._data_listeners.append(listener)

    def _bump(self, *names: str) -> None:
        self._version += 1
        touched = tuple(n.upper() for n in names)
        for key in touched:
            self._table_versions[key] = self._table_versions.get(key, 0) + 1
            self._data_versions[key] = self._data_versions.get(key, 0) + 1
        for listener in self._listeners:
            listener(touched)
        for listener in self._data_listeners:
            listener(touched)

    def bump_data(self, *names: str) -> None:
        """Record a DML write to *names*: data epochs move, schema stays."""
        touched = tuple(n.upper() for n in names)
        if not touched:
            return
        for key in touched:
            self._data_versions[key] = self._data_versions.get(key, 0) + 1
        for listener in self._data_listeners:
            listener(touched)

    # -- tables/views ----------------------------------------------------------

    def add_table(self, schema: TableSchema) -> None:
        name = schema.name.upper()
        if name in self._tables or name in self._views:
            raise CatalogError(f"object {name} already exists")
        self._tables[name] = schema
        self._bump(name)

    def drop_table(self, name: str) -> None:
        if name.upper() not in self._tables:
            raise CatalogError(f"table {name} does not exist")
        del self._tables[name.upper()]
        self._bump(name)

    def add_view(self, schema: TableSchema, replace: bool = False,
                 deps: Optional[tuple] = None) -> None:
        """Register a view; *deps* is its base-table closure (upper-cased).

        ``None`` marks the closure unknown: dependents fall into the
        wildcard bucket and are invalidated by any catalog change.
        """
        name = schema.name.upper()
        if name in self._tables:
            raise CatalogError(f"object {name} already exists as a table")
        if name in self._views and not replace:
            raise CatalogError(f"view {name} already exists")
        self._views[name] = schema
        self._view_deps[name] = deps
        self._bump(name)

    def drop_view(self, name: str) -> None:
        if name.upper() not in self._views:
            raise CatalogError(f"view {name} does not exist")
        del self._views[name.upper()]
        self._view_deps.pop(name.upper(), None)
        self._bump(name)

    def view_deps(self, name: str) -> Optional[tuple]:
        """Base-table closure stored for a view, or ``None`` if unknown."""
        return self._view_deps.get(name.upper())

    def resolve(self, name: str) -> Optional[TableSchema]:
        key = name.upper()
        return self._tables.get(key) or self._views.get(key)

    def table(self, name: str) -> TableSchema:
        schema = self.resolve(name)
        if schema is None:
            raise CatalogError(f"object {name} does not exist")
        return schema

    def is_view(self, name: str) -> bool:
        return name.upper() in self._views

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # -- macros -------------------------------------------------------------------

    def add_macro(self, macro: MacroDef, replace: bool = False) -> None:
        key = macro.name.upper()
        if key in self._macros and not replace:
            raise CatalogError(f"macro {macro.name} already exists")
        self._macros[key] = macro
        self._bump(key)

    def drop_macro(self, name: str) -> None:
        if name.upper() not in self._macros:
            raise CatalogError(f"macro {name} does not exist")
        del self._macros[name.upper()]
        self._bump(name)

    def macro(self, name: str) -> MacroDef:
        macro = self._macros.get(name.upper())
        if macro is None:
            raise CatalogError(f"macro {name} does not exist")
        return macro

    def has_macro(self, name: str) -> bool:
        return name.upper() in self._macros

    # -- procedures -------------------------------------------------------------------

    def add_procedure(self, procedure: ProcedureDef, replace: bool = False) -> None:
        key = procedure.name.upper()
        if key in self._procedures and not replace:
            raise CatalogError(f"procedure {procedure.name} already exists")
        self._procedures[key] = procedure
        self._bump(key)

    def drop_procedure(self, name: str) -> None:
        if name.upper() not in self._procedures:
            raise CatalogError(f"procedure {name} does not exist")
        del self._procedures[name.upper()]
        self._bump(name)

    def procedure(self, name: str) -> ProcedureDef:
        procedure = self._procedures.get(name.upper())
        if procedure is None:
            raise CatalogError(f"procedure {name} does not exist")
        return procedure

    def has_procedure(self, name: str) -> bool:
        return name.upper() in self._procedures


class SessionCatalog:
    """Per-session view over the shadow catalog plus volatile tables.

    Volatile-table changes bump :attr:`overlay_version` and notify the
    optional :attr:`overlay_listener`, mirroring the shadow catalog's
    versioning at session scope: translations that resolved a name through
    the overlay are keyed on ``(uid, overlay_version)`` and can never be
    replayed across overlay changes (nor leak into other sessions).
    """

    _uid_counter = 0
    _uid_lock = threading.Lock()

    def __init__(self, shared: ShadowCatalog):
        self.shared = shared
        self._volatile: dict[str, TableSchema] = {}
        with SessionCatalog._uid_lock:
            SessionCatalog._uid_counter += 1
            self.uid = SessionCatalog._uid_counter
        self.overlay_version = 0
        #: ``listener(session_uid)`` called after each volatile change.
        self.overlay_listener = None

    @property
    def overlay_key(self):
        """Cache-key component for the volatile overlay.

        ``None`` while the overlay is empty (name resolution is then
        identical to the shared catalog, so entries are shareable across
        sessions); a per-session ``(uid, version)`` pair otherwise.
        """
        if not self._volatile:
            return None
        return (self.uid, self.overlay_version)

    def _overlay_changed(self) -> None:
        self.overlay_version += 1
        if self.overlay_listener is not None:
            self.overlay_listener(self.uid)

    def add_volatile(self, schema: TableSchema) -> None:
        name = schema.name.upper()
        if name in self._volatile:
            raise CatalogError(f"volatile table {name} already exists")
        self._volatile[name] = schema
        self._overlay_changed()

    def drop_volatile(self, name: str) -> bool:
        dropped = self._volatile.pop(name.upper(), None) is not None
        if dropped:
            self._overlay_changed()
        return dropped

    def is_volatile(self, name: str) -> bool:
        return name.upper() in self._volatile

    def volatile_names(self) -> list[str]:
        return sorted(self._volatile)

    # -- resolution: volatile shadows shared ----------------------------------------

    def resolve(self, name: str) -> Optional[TableSchema]:
        return self._volatile.get(name.upper()) or self.shared.resolve(name)

    def table(self, name: str) -> TableSchema:
        schema = self.resolve(name)
        if schema is None:
            raise CatalogError(f"object {name} does not exist")
        return schema

    def is_view(self, name: str) -> bool:
        if name.upper() in self._volatile:
            return False
        return self.shared.is_view(name)

    def view_deps(self, name: str) -> Optional[tuple]:
        return self.shared.view_deps(name)

    def drop_table(self, name: str) -> None:
        if not self.drop_volatile(name):
            self.shared.drop_table(name)
