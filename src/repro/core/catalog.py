"""Hyper-Q's shadow catalog.

Hyper-Q keeps its own picture of the *source-side* schema: Teradata column
properties that the target cannot represent (SET semantics, CASESPECIFIC,
non-constant defaults), view definitions in the source dialect, macro and
procedure bodies, and per-session volatile tables. This is the "state
information maintained in the application layer" that Section 2.1 says
emulation requires (the paper calls it the DTM catalog in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CatalogError
from repro.xtra.schema import TableSchema
from repro.xtra.types import SQLType


@dataclass
class MacroDef:
    """A stored Teradata macro: named parameterized statement sequence."""

    name: str
    parameters: list[tuple[str, SQLType]] = field(default_factory=list)
    body_sql: str = ""


@dataclass
class ProcedureDef:
    """A stored procedure: parameter modes plus the parsed body block."""

    name: str
    parameters: list[tuple[str, str, SQLType]] = field(default_factory=list)
    body: object = None  # list[TdProcStatement]


class ShadowCatalog:
    """Source-side catalog shared by all Hyper-Q sessions."""

    def __init__(self):
        self._tables: dict[str, TableSchema] = {}
        self._views: dict[str, TableSchema] = {}
        self._macros: dict[str, MacroDef] = {}
        self._procedures: dict[str, ProcedureDef] = {}

    # -- tables/views ----------------------------------------------------------

    def add_table(self, schema: TableSchema) -> None:
        name = schema.name.upper()
        if name in self._tables or name in self._views:
            raise CatalogError(f"object {name} already exists")
        self._tables[name] = schema

    def drop_table(self, name: str) -> None:
        if name.upper() not in self._tables:
            raise CatalogError(f"table {name} does not exist")
        del self._tables[name.upper()]

    def add_view(self, schema: TableSchema, replace: bool = False) -> None:
        name = schema.name.upper()
        if name in self._tables:
            raise CatalogError(f"object {name} already exists as a table")
        if name in self._views and not replace:
            raise CatalogError(f"view {name} already exists")
        self._views[name] = schema

    def drop_view(self, name: str) -> None:
        if name.upper() not in self._views:
            raise CatalogError(f"view {name} does not exist")
        del self._views[name.upper()]

    def resolve(self, name: str) -> Optional[TableSchema]:
        key = name.upper()
        return self._tables.get(key) or self._views.get(key)

    def table(self, name: str) -> TableSchema:
        schema = self.resolve(name)
        if schema is None:
            raise CatalogError(f"object {name} does not exist")
        return schema

    def is_view(self, name: str) -> bool:
        return name.upper() in self._views

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # -- macros -------------------------------------------------------------------

    def add_macro(self, macro: MacroDef, replace: bool = False) -> None:
        key = macro.name.upper()
        if key in self._macros and not replace:
            raise CatalogError(f"macro {macro.name} already exists")
        self._macros[key] = macro

    def drop_macro(self, name: str) -> None:
        if name.upper() not in self._macros:
            raise CatalogError(f"macro {name} does not exist")
        del self._macros[name.upper()]

    def macro(self, name: str) -> MacroDef:
        macro = self._macros.get(name.upper())
        if macro is None:
            raise CatalogError(f"macro {name} does not exist")
        return macro

    def has_macro(self, name: str) -> bool:
        return name.upper() in self._macros

    # -- procedures -------------------------------------------------------------------

    def add_procedure(self, procedure: ProcedureDef, replace: bool = False) -> None:
        key = procedure.name.upper()
        if key in self._procedures and not replace:
            raise CatalogError(f"procedure {procedure.name} already exists")
        self._procedures[key] = procedure

    def drop_procedure(self, name: str) -> None:
        if name.upper() not in self._procedures:
            raise CatalogError(f"procedure {name} does not exist")
        del self._procedures[name.upper()]

    def procedure(self, name: str) -> ProcedureDef:
        procedure = self._procedures.get(name.upper())
        if procedure is None:
            raise CatalogError(f"procedure {name} does not exist")
        return procedure

    def has_procedure(self, name: str) -> bool:
        return name.upper() in self._procedures


class SessionCatalog:
    """Per-session view over the shadow catalog plus volatile tables."""

    def __init__(self, shared: ShadowCatalog):
        self.shared = shared
        self._volatile: dict[str, TableSchema] = {}

    def add_volatile(self, schema: TableSchema) -> None:
        name = schema.name.upper()
        if name in self._volatile:
            raise CatalogError(f"volatile table {name} already exists")
        self._volatile[name] = schema

    def drop_volatile(self, name: str) -> bool:
        return self._volatile.pop(name.upper(), None) is not None

    def is_volatile(self, name: str) -> bool:
        return name.upper() in self._volatile

    def volatile_names(self) -> list[str]:
        return sorted(self._volatile)

    # -- resolution: volatile shadows shared ----------------------------------------

    def resolve(self, name: str) -> Optional[TableSchema]:
        return self._volatile.get(name.upper()) or self.shared.resolve(name)

    def table(self, name: str) -> TableSchema:
        schema = self.resolve(name)
        if schema is None:
            raise CatalogError(f"object {name} does not exist")
        return schema

    def is_view(self, name: str) -> bool:
        if name.upper() in self._volatile:
            return False
        return self.shared.is_view(name)

    def drop_table(self, name: str) -> None:
        if not self.drop_volatile(name):
            self.shared.drop_table(name)
