"""Semantic dependency extraction over bound XTRA statements.

The translation cache (PR 1) and the gateway's shared L2 tier (PR 6)
invalidate on a single whole-catalog version: any DDL anywhere drops every
cached translation fleet-wide.  This module extracts, per bound statement,
the *semantic* dependency set that makes precise invalidation possible:

* **tables** — the base tables the statement reads, with views expanded to
  their base closure (the closure is computed once at ``CREATE VIEW`` time
  and stored in the shadow catalog; see :meth:`ShadowCatalog.view_deps`),
* **write_tables** — the base tables a DML/DDL statement mutates, resolved
  through updatable views to their underlying base the same way the view
  emulation layer (``core/emulation/views.py``) rebases DML,
* **columns** — referenced column names (qualifier-stripped, upper-cased),
* **constants** — constant equality predicates ``(column, value)`` found in
  filters, which the workload classifier uses to refine row estimates,
* a **read_only** / **deterministic** classification: read-only means no
  DML/DDL side effects; deterministic means no volatile functions
  (``CURRENT_TIMESTAMP`` and friends) whose value changes between calls.

A statement whose closure cannot be established (an unknown view, a macro
or procedure call with an opaque body) is marked ``wildcard``: it depends
on *everything*, keyed in the caches under the ``"*"`` bucket which every
invalidation clears.

The extractor walks relational plans *deeply*: unlike ``walk_rel`` it
descends into scalar-subquery plans (``SubqueryExpr.plan``) so that tables
referenced only inside ``IN (SELECT ...)`` or ``EXISTS`` are still part of
the dependency set.  A property test cross-checks the extracted set against
the tables the executor actually scans on the conformance corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..xtra import relational as r
from ..xtra import scalars as s
from ..xtra.relational import RelNode
from ..xtra.scalars import ScalarExpr

# Marker dependency for statements whose closure is unknown; every
# invalidation — DDL or DML, any table — clears the "*" bucket.
WILDCARD = "*"

# Functions whose value changes between evaluations: results that embed
# them must never be served from the result cache.
VOLATILE_FUNCTIONS = frozenset({
    "CURRENT_DATE", "CURRENT_TIMESTAMP", "CURRENT_TIME", "DATE", "TIME",
    "USER", "SESSION", "RANDOM", "RANDU", "NOW",
})

# Statement kinds with no backend table deps at all (pure admin/session).
_ADMIN_KINDS = (r.HelpCommand, r.ShowCommand, r.SetSessionParam, r.NoOp,
                r.Transaction)


@dataclass(frozen=True)
class StatementDeps:
    """The semantic dependency footprint of one bound statement."""

    tables: tuple[str, ...] = ()         # base tables read (sorted, upper)
    write_tables: tuple[str, ...] = ()   # base tables written (sorted, upper)
    columns: tuple[str, ...] = ()        # referenced column names (sorted)
    constants: tuple[tuple[str, object], ...] = ()  # (column, value) equality
    read_only: bool = True
    deterministic: bool = True
    uses_volatile: bool = False          # touches session volatile tables
    wildcard: bool = False               # closure unknown — depend on all

    @property
    def all_tables(self) -> tuple[str, ...]:
        """Read + write closure — the cache invalidation key set."""
        merged = set(self.tables) | set(self.write_tables)
        if self.wildcard:
            merged.add(WILDCARD)
        return tuple(sorted(merged))

    @property
    def shareable(self) -> bool:
        """May the *result* be stored and replayed for other requests?"""
        return (self.read_only and self.deterministic
                and not self.uses_volatile and not self.wildcard)


class _Collector:
    """Accumulates dependency facts while walking a statement."""

    def __init__(self, catalog) -> None:
        self._catalog = catalog
        self.tables: set[str] = set()
        self.write_tables: set[str] = set()
        self.columns: set[str] = set()
        self.constants: list[tuple[str, object]] = []
        self.deterministic = True
        self.uses_volatile = False
        self.wildcard = False

    # -- table resolution ---------------------------------------------------

    def add_read_table(self, name: str) -> None:
        for base in self._closure(name):
            self.tables.add(base)

    def add_write_table(self, name: str) -> None:
        for base in self._closure(name):
            self.write_tables.add(base)

    def _closure(self, name: str) -> Iterable[str]:
        """Resolve *name* through views to its base tables (upper-cased)."""
        name = name.upper()
        catalog = self._catalog
        if catalog is None:
            return (name,)
        if getattr(catalog, "is_volatile", None) and catalog.is_volatile(name):
            self.uses_volatile = True
            return (name,)
        if catalog.is_view(name):
            deps = None
            view_deps = getattr(catalog, "view_deps", None)
            if view_deps is not None:
                deps = view_deps(name)
            if deps is None:
                # Unknown closure (view registered without deps): the only
                # safe dependency set is "everything".
                self.wildcard = True
                return (name,)
            # The view's own name is part of the closure: REPLACE/DROP VIEW
            # bumps it and must invalidate everything bound through it.
            return (name,) + tuple(deps)
        return (name,)

    # -- plan / scalar walks ------------------------------------------------

    def walk_plan(self, root: Optional[RelNode]) -> None:
        """Deep pre-order walk: child rels *and* scalar-subquery plans."""
        if root is None:
            return
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, r.Get):
                schema = node.table
                if schema.volatile:
                    self.uses_volatile = True
                    self.tables.add(schema.name.upper())
                else:
                    self.add_read_table(schema.name)
            stack.extend(node.children())
            for expr in node.scalars():
                stack.extend(self._scan_scalar(expr))

    def _scan_scalar(self, expr: Optional[ScalarExpr]) -> Iterator[RelNode]:
        """Record scalar facts; yield nested subquery plans to keep walking."""
        if expr is None:
            return
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, s.SubqueryExpr):
                if node.plan is not None:
                    yield node.plan
            elif isinstance(node, s.ColumnRef):
                self.columns.add(node.name.upper())
            elif isinstance(node, s.FuncCall):
                if node.name.upper() in VOLATILE_FUNCTIONS:
                    self.deterministic = False
            elif isinstance(node, s.Comp) and node.op is s.CompOp.EQ:
                self._note_equality(node)
            stack.extend(node.children())

    def _note_equality(self, comp: s.Comp) -> None:
        column, const = comp.left, comp.right
        if isinstance(column, s.Const) and isinstance(const, s.ColumnRef):
            column, const = const, column
        if isinstance(column, s.ColumnRef) and isinstance(const, s.Const):
            self.constants.append((column.name.upper(), const.value))

    def scan_scalars(self, exprs: Iterable[Optional[ScalarExpr]]) -> None:
        for expr in exprs:
            for plan in self._scan_scalar(expr):
                self.walk_plan(plan)

    # -- finish -------------------------------------------------------------

    def freeze(self, read_only: bool) -> StatementDeps:
        return StatementDeps(
            tables=tuple(sorted(self.tables)),
            write_tables=tuple(sorted(self.write_tables)),
            columns=tuple(sorted(self.columns)),
            constants=tuple(self.constants),
            read_only=read_only,
            deterministic=self.deterministic,
            uses_volatile=self.uses_volatile,
            wildcard=self.wildcard,
        )


def extract(stmt: r.Statement, catalog=None) -> StatementDeps:
    """Extract the dependency footprint of a bound XTRA statement.

    ``catalog`` is duck-typed: it needs ``is_view(name)`` and, for view
    closure, ``view_deps(name)``; ``is_volatile(name)`` when session
    overlays exist.  ``None`` treats every name as a base table.
    """
    c = _Collector(catalog)

    if isinstance(stmt, _ADMIN_KINDS):
        # Session/admin statements: no table deps, nothing cacheable.
        return c.freeze(read_only=True)

    if isinstance(stmt, r.Query):
        c.walk_plan(stmt.plan)
        return c.freeze(read_only=True)

    if isinstance(stmt, r.Insert):
        c.add_write_table(stmt.table)
        c.walk_plan(stmt.source)
        return c.freeze(read_only=False)

    if isinstance(stmt, r.Update):
        c.add_write_table(stmt.table)
        c.add_read_table(stmt.table)
        c.scan_scalars([expr for _, expr in stmt.assignments])
        c.scan_scalars([stmt.predicate])
        return c.freeze(read_only=False)

    if isinstance(stmt, r.Delete):
        c.add_write_table(stmt.table)
        c.add_read_table(stmt.table)
        c.scan_scalars([stmt.predicate])
        return c.freeze(read_only=False)

    if isinstance(stmt, r.Merge):
        c.add_write_table(stmt.target)
        c.add_read_table(stmt.target)
        c.walk_plan(stmt.source)
        c.scan_scalars([stmt.condition])
        if stmt.matched_assignments:
            c.scan_scalars([expr for _, expr in stmt.matched_assignments])
        if stmt.insert_values:
            c.scan_scalars(stmt.insert_values)
        return c.freeze(read_only=False)

    if isinstance(stmt, r.CreateTable):
        c.add_write_table(stmt.schema.name)
        if stmt.schema.volatile:
            c.uses_volatile = True
        c.walk_plan(stmt.as_query)
        return c.freeze(read_only=False)

    if isinstance(stmt, (r.DropTable, r.DropView, r.DropMacro,
                         r.DropProcedure)):
        c.add_write_table(stmt.name)
        return c.freeze(read_only=False)

    if isinstance(stmt, r.CreateView):
        c.add_write_table(stmt.name)
        c.walk_plan(stmt.plan)
        return c.freeze(read_only=False)

    if isinstance(stmt, (r.CreateMacro, r.CreateProcedure)):
        c.add_write_table(stmt.name)
        return c.freeze(read_only=False)

    if isinstance(stmt, (r.ExecMacro, r.CallProcedure)):
        # Opaque body: could read or write anything.
        c.wildcard = True
        return c.freeze(read_only=False)

    # Unknown statement shape: be conservative.
    c.wildcard = True
    return c.freeze(read_only=False)


def view_closure(plan: RelNode, catalog=None) -> tuple[str, ...] | None:
    """Base-table closure of a view body, or ``None`` if unknowable.

    Called at ``CREATE VIEW`` time so nested views flatten transitively:
    inner views already have their closure stored in the catalog.
    """
    c = _Collector(catalog)
    c.walk_plan(plan)
    if c.wildcard:
        return None
    return tuple(sorted(c.tables))
