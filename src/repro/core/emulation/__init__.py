"""Mid-tier feature emulation (Section 6).

Each module reconstructs one target-side feature gap by breaking a source
request into multiple target requests plus Hyper-Q-side state: recursive
queries (WorkTable/TempTable loops), macros, stored procedures, MERGE,
DML-on-views, SET-table semantics, HELP/SHOW commands, and column-property
compensation."""
