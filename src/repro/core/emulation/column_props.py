"""Unsupported column property compensation (Table 2, Section 2.2.2).

Two compensations live here:

* **Non-constant defaults** (``DEFAULT CURRENT_DATE``): the target only gets
  literal defaults, so Hyper-Q evaluates the default in the mid-tier and adds
  the explicit value to INSERTs that omit the column.
* **PERIOD columns**: few targets support the compound type, so DDL splits a
  PERIOD column into ``<name>_BEGIN`` / ``<name>_END`` element columns — the
  paper's own example of why schema conversion cannot be done independently
  of application translation.

(The third property, NOT CASESPECIFIC comparison semantics, is compensated
during binding — see ``Binder._apply_case_insensitivity``.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EmulationError
from repro.backend import functions as backend_functions
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HyperQSession

_NILADIC_DEFAULTS = {"CURRENT_DATE", "DATE", "CURRENT_TIMESTAMP", "TIME", "USER"}


def is_nonconstant_default(default_sql: str | None) -> bool:
    if default_sql is None:
        return False
    return default_sql.strip().upper() in _NILADIC_DEFAULTS


def evaluate_default(session: "HyperQSession", default_sql: str) -> object:
    """Evaluate a niladic default in the mid-tier."""
    name = default_sql.strip().upper()
    if name in ("CURRENT_DATE", "DATE"):
        return backend_functions.call_scalar("CURRENT_DATE", [])
    if name in ("CURRENT_TIMESTAMP", "TIME"):
        return backend_functions.call_scalar("CURRENT_TIMESTAMP", [])
    if name == "USER":
        return str(session.session_params.get("USER", "HYPERQ"))
    raise EmulationError(f"cannot evaluate default {default_sql!r}")


def fill_nonconstant_defaults(session: "HyperQSession", schema: TableSchema,
                              bound: r.Insert) -> r.Insert:
    """Extend a VALUES insert with mid-tier evaluated default columns."""
    if not isinstance(bound.source, r.Values):
        return bound
    provided = {name.upper() for name in (bound.columns or
                                          [col.name for col in schema.columns])}
    missing = [col for col in schema.columns
               if col.name not in provided and is_nonconstant_default(col.default_sql)]
    if not missing:
        return bound
    session._note("column_properties")
    columns = list(bound.columns or [col.name for col in schema.columns])
    values = bound.source
    for col in missing:
        value = evaluate_default(session, col.default_sql or "")
        columns.append(col.name)
        values.names.append(col.name)
        values.types.append(col.type)
        for row in values.rows:
            row.append(s.Const(value, col.type))
    bound.columns = columns
    return bound


def split_period_columns(session: "HyperQSession",
                         schema: TableSchema) -> tuple[TableSchema, bool]:
    """Split PERIOD columns into begin/end DATE columns for the target."""
    if not any(col.type.kind is t.TypeKind.PERIOD for col in schema.columns):
        return schema, False
    session._note("column_properties")
    columns: list[ColumnSchema] = []
    for col in schema.columns:
        if col.type.kind is not t.TypeKind.PERIOD:
            columns.append(col)
            continue
        columns.append(ColumnSchema(f"{col.name}_BEGIN", t.DATE, col.nullable))
        columns.append(ColumnSchema(f"{col.name}_END", t.DATE, col.nullable))
    return TableSchema(
        name=schema.name,
        columns=columns,
        set_semantics=schema.set_semantics,
        volatile=schema.volatile,
        primary_index=schema.primary_index,
    ), True
