"""HELP / SHOW command emulation.

Informational commands like ``HELP SESSION`` "return settings of the current
user session" (Section 2.1) and have no target equivalent: Hyper-Q answers
them entirely from mid-tier state — session parameters and the shadow
catalog — and fabricates result sets that flow through the same TDF/convert
path as real query results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EmulationError
from repro.core.timing import RequestTiming
from repro.xtra import relational as r
from repro.xtra import types as t

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HQResult, HyperQSession


def run(session: "HyperQSession", bound: r.Statement,
        timing: RequestTiming) -> "HQResult":
    if isinstance(bound, r.HelpCommand):
        return _run_help(session, bound, timing)
    if isinstance(bound, r.ShowCommand):
        return _run_show(session, bound, timing)
    raise EmulationError(f"unsupported command {type(bound).__name__}")


def _run_help(session: "HyperQSession", bound: r.HelpCommand,
              timing: RequestTiming) -> "HQResult":
    if bound.kind is r.HelpKind.SESSION:
        rows = [(name, str(value))
                for name, value in sorted(session.session_params.items())]
        return session.fabricate_result(
            ["PARAMETER", "SETTING"], [t.varchar(64), t.varchar(256)], rows,
            timing)
    if bound.kind is r.HelpKind.TABLE:
        schema = session.catalog.table(bound.subject or "")
        rows = [
            (col.name, str(col.type), "Y" if col.nullable else "N",
             col.default_sql or "")
            for col in schema.columns
        ]
        return session.fabricate_result(
            ["COLUMN_NAME", "TYPE", "NULLABLE", "DEFAULT_VALUE"],
            [t.varchar(128), t.varchar(64), t.char(1), t.varchar(256)], rows,
            timing)
    if bound.kind is r.HelpKind.COLUMN:
        subject = bound.subject or ""
        table_name, __, column_name = subject.rpartition(".")
        if not table_name:
            raise EmulationError("HELP COLUMN requires table.column")
        schema = session.catalog.table(table_name)
        col = schema.column(column_name)
        rows = [(col.name, str(col.type), "Y" if col.nullable else "N")]
        return session.fabricate_result(
            ["COLUMN_NAME", "TYPE", "NULLABLE"],
            [t.varchar(128), t.varchar(64), t.char(1)], rows, timing)
    # HELP DATABASE: list objects in the shadow catalog.
    shadow = session.engine.shadow
    rows = [(name, "T") for name in shadow.table_names()]
    rows += [(name, "V") for name in shadow.view_names()]
    rows += [(name, "O") for name in session.catalog.volatile_names()]
    return session.fabricate_result(
        ["TABLE_NAME", "KIND"], [t.varchar(128), t.char(1)], rows, timing)


def _run_show(session: "HyperQSession", bound: r.ShowCommand,
              timing: RequestTiming) -> "HQResult":
    if bound.object_kind == "MACRO":
        macro = session.engine.shadow.macro(bound.name)
        params = ", ".join(f"{name} {ptype}" for name, ptype in macro.parameters)
        header = f"CREATE MACRO {macro.name}"
        if params:
            header += f" ({params})"
        ddl = f"{header} AS ({macro.body_sql});"
        return session.fabricate_result(
            ["REQUEST_TEXT"], [t.varchar(4096)], [(ddl,)], timing)
    schema = session.catalog.resolve(bound.name)
    if schema is None:
        raise EmulationError(f"object {bound.name} does not exist")
    if schema.is_view:
        ddl = f"CREATE VIEW {schema.name} AS {schema.view_sql};"
    else:
        ddl = reconstruct_table_ddl(schema)
    return session.fabricate_result(
        ["REQUEST_TEXT"], [t.varchar(4096)], [(ddl,)], timing)


def reconstruct_table_ddl(schema) -> str:
    """Rebuild source-dialect DDL from shadow-catalog metadata."""
    kind = "SET" if schema.set_semantics else "MULTISET"
    volatile = "VOLATILE " if schema.volatile else ""
    parts = []
    for col in schema.columns:
        part = f"{col.name} {col.type}"
        if not col.nullable:
            part += " NOT NULL"
        if col.default_sql:
            part += f" DEFAULT {col.default_sql}"
        if not col.case_specific:
            part += " NOT CASESPECIFIC"
        parts.append(part)
    ddl = f"CREATE {kind} {volatile}TABLE {schema.name} ({', '.join(parts)})"
    if schema.primary_index:
        ddl += f" PRIMARY INDEX ({', '.join(schema.primary_index)})"
    return ddl + ";"
