"""Macro emulation (Table 2: "Emulate macro code execution in the mid-tier").

Teradata macros are named, parameterized statement sequences. Customer 2 of
the paper's workload study wraps most business logic in macros, which is why
almost 80% of that workload requires emulation. EXEC is emulated by
substituting the argument literals into the stored body text, re-parsing it
as a statement script, and running each statement through the regular
pipeline; the last result set (if any) is returned to the application,
matching bteq's observable behaviour for single-result macros.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.errors import EmulationError
from repro.core.timing import RequestTiming
from repro.xtra import relational as r
from repro.xtra import scalars as s

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HQResult, HyperQSession

_PARAM_RE = re.compile(r":(\w+)")


def _literal_sql(session: "HyperQSession", expr: s.ScalarExpr) -> str:
    if isinstance(expr, s.Const):
        return session.serializer.literal(expr.value, expr.type)
    if isinstance(expr, s.Negate) and isinstance(expr.operand, s.Const):
        return "-" + session.serializer.literal(expr.operand.value,
                                                expr.operand.type)
    raise EmulationError("macro arguments must be literal values")


def expand(session: "HyperQSession", bound: r.ExecMacro) -> str:
    """Expand a macro body with the EXEC arguments substituted."""
    macro = session.engine.shadow.macro(bound.name)
    values: dict[str, str] = {}
    if bound.arguments:
        if len(bound.arguments) > len(macro.parameters):
            raise EmulationError(
                f"macro {macro.name} takes {len(macro.parameters)} arguments, "
                f"got {len(bound.arguments)}")
        for (param_name, __), arg in zip(macro.parameters, bound.arguments):
            values[param_name.upper()] = _literal_sql(session, arg)
    for param_name, arg in bound.named_arguments.items():
        values[param_name.upper()] = _literal_sql(session, arg)
    missing = [name for name, __ in macro.parameters if name.upper() not in values]
    if missing:
        raise EmulationError(
            f"macro {macro.name}: missing arguments {', '.join(missing)}")

    def substitute(match: re.Match) -> str:
        name = match.group(1).upper()
        if name not in values:
            raise EmulationError(f"macro {macro.name}: unknown parameter :{name}")
        return values[name]

    return _PARAM_RE.sub(substitute, macro.body_sql)


def run(session: "HyperQSession", bound: r.ExecMacro,
        timing: RequestTiming) -> "HQResult":
    from repro.core.engine import HQResult

    body_sql = expand(session, bound)
    with timing.measure("translation"):
        statements = session.parser.parse_script(body_sql)
    if not statements:
        raise EmulationError(f"macro {bound.name} has an empty body")
    last: HQResult | None = None
    rows_result: HQResult | None = None
    for ast in statements:
        with timing.measure("translation"):
            inner = session.binder.bind(ast)
        last = session._dispatch(inner, ast, timing)
        if last.kind == "rows":
            rows_result = last
    return rows_result or last or HQResult(kind="ok", timing=timing)
