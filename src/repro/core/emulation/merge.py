"""MERGE emulation: UPDATE + INSERT against targets without MERGE (Table 2).

The matched branch becomes a correlated UPDATE (scalar subqueries fetch the
source values per target row); the not-matched branch becomes an
INSERT ... SELECT with a NOT EXISTS anti-join guard. Running the UPDATE first
preserves MERGE semantics: freshly inserted rows must not be updated by the
same statement.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING

from repro.core.timing import RequestTiming
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HQResult, HyperQSession


def _match_probe(statement: r.Merge) -> r.RelNode:
    """SELECT 1 FROM <source> WHERE <condition> — correlated to the target."""
    return r.Project(
        r.Filter(copy.deepcopy(statement.source), copy.deepcopy(statement.condition)),
        [s.const_int(1)], ["_ONE"])


def build_update(statement: r.Merge) -> r.Update | None:
    if not statement.matched_assignments:
        return None
    assignments = []
    for name, expr in statement.matched_assignments:
        value = s.SubqueryExpr(
            kind=s.SubqueryKind.SCALAR,
            plan=r.Project(
                r.Filter(copy.deepcopy(statement.source),
                         copy.deepcopy(statement.condition)),
                [copy.deepcopy(expr)], ["_V"]))
        value.type = expr.type
        assignments.append((name, value))
    exists = s.SubqueryExpr(kind=s.SubqueryKind.EXISTS, plan=_match_probe(statement))
    exists.type = t.BOOLEAN
    return r.Update(statement.target, assignments, exists, statement.target_alias)


def build_insert(statement: r.Merge) -> r.Insert | None:
    if not statement.insert_columns or statement.insert_values is None:
        return None
    # Anti-join: source rows with no matching target row.
    target_alias = statement.target_alias
    inner_filter = r.Filter(
        r.Get(_target_schema(statement), target_alias),
        copy.deepcopy(statement.condition))
    probe = r.Project(inner_filter, [s.const_int(1)], ["_ONE"])
    not_exists = s.SubqueryExpr(kind=s.SubqueryKind.EXISTS, plan=probe,
                                negated=True)
    not_exists.type = t.BOOLEAN
    source = r.Project(
        r.Filter(copy.deepcopy(statement.source), not_exists),
        [copy.deepcopy(expr) for expr in statement.insert_values],
        [name.upper() for name in statement.insert_columns])
    return r.Insert(statement.target, list(statement.insert_columns), source)


def _target_schema(statement: r.Merge):
    schema = getattr(statement, "_target_schema", None)
    if schema is None:
        raise RuntimeError("merge emulation requires the target schema "
                           "(set by run())")
    return schema


def run(session: "HyperQSession", statement: r.Merge,
        timing: RequestTiming) -> "HQResult":
    from repro.core.engine import HQResult

    schema = session.catalog.table(statement.target)
    statement._target_schema = schema  # type: ignore[attr-defined]

    affected = 0
    target_sql: list[str] = []
    update = build_update(statement)
    if update is not None:
        result = session.run_translated(update, timing)
        affected += result.rowcount
        target_sql.extend(result.target_sql)
    insert = build_insert(statement)
    if insert is not None:
        result = session.run_translated(insert, timing)
        affected += result.rowcount
        target_sql.extend(result.target_sql)
    return HQResult(kind="count", rowcount=affected, timing=timing,
                    target_sql=target_sql)
