"""Stored procedure emulation.

Section 6: "emulation of stored procedures inside Hyper-Q requires only
maintaining the execution state (e.g., variable scopes) and driving the
procedure execution by breaking its control flow into multiple SQL
requests." The interpreter below keeps DECLARE'd variables in a mid-tier
scope, evaluates control-flow conditions locally, substitutes variable
references into embedded SQL, and issues each embedded statement through the
regular translation pipeline.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Optional

from repro.errors import EmulationError
from repro.backend.expressions import Env, EvalContext, Evaluator
from repro.core.timing import RequestTiming
from repro.frontend.teradata import ast as a
from repro.transform.capabilities import TERADATA
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.relational import OutputColumn

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HQResult, HyperQSession

_MAX_LOOP_ITERATIONS = 100_000


class _Frame:
    """Variable scope of one procedure invocation."""

    def __init__(self):
        self.variables: dict[str, object] = {}
        self.types: dict[str, t.SQLType] = {}

    def declare(self, name: str, var_type: t.SQLType, value: object) -> None:
        self.variables[name.upper()] = value
        self.types[name.upper()] = var_type

    def set(self, name: str, value: object) -> None:
        key = name.upper()
        if key not in self.variables:
            raise EmulationError(f"undeclared variable {name}")
        self.variables[key] = value

    def context(self) -> EvalContext:
        names = list(self.variables)
        env = Env([OutputColumn(name, self.types.get(name, t.UNKNOWN))
                   for name in names])
        row = tuple(self.variables[name] for name in names)
        return EvalContext(row, env)


class _Interpreter:
    def __init__(self, session: "HyperQSession", timing: RequestTiming):
        self.session = session
        self.timing = timing
        # The evaluator only needs scalar semantics; source (Teradata)
        # profile gives it the most permissive type mixing.
        self.evaluator = Evaluator(TERADATA, self._no_subquery)
        self.last_result: Optional["HQResult"] = None

    def _no_subquery(self, plan, outer):
        raise EmulationError(
            "subqueries in procedure control-flow expressions must be "
            "assigned to a variable via SELECT ... INTO first")

    # -- expression evaluation over the variable frame ----------------------------

    def eval(self, expr: s.ScalarExpr, frame: _Frame) -> object:
        substituted = _substitute_params(copy.deepcopy(expr), frame,
                                         for_eval=True)
        return self.evaluator.eval(substituted, frame.context())

    def eval_bool(self, expr: s.ScalarExpr, frame: _Frame) -> bool:
        return self.eval(expr, frame) is True

    # -- statement execution ---------------------------------------------------------

    def run_block(self, statements: list[a.TdProcStatement], frame: _Frame) -> None:
        for statement in statements:
            self.run_statement(statement, frame)

    def run_statement(self, statement: a.TdProcStatement, frame: _Frame) -> None:
        if isinstance(statement, a.TdDeclare):
            value = None
            if statement.default is not None:
                value = self.eval(statement.default, frame)
            frame.declare(statement.name, statement.type, value)
            return
        if isinstance(statement, a.TdSetVariable):
            frame.set(statement.name, self.eval(statement.value, frame))
            return
        if isinstance(statement, a.TdIf):
            if self.eval_bool(statement.condition, frame):
                self.run_block(statement.then_branch, frame)
            else:
                self.run_block(statement.else_branch, frame)
            return
        if isinstance(statement, a.TdWhile):
            iterations = 0
            while self.eval_bool(statement.condition, frame):
                iterations += 1
                if iterations > _MAX_LOOP_ITERATIONS:
                    raise EmulationError("procedure WHILE loop exceeded limit")
                self.run_block(statement.body, frame)
            return
        if isinstance(statement, a.TdSelectInto):
            self._run_select_into(statement, frame)
            return
        if isinstance(statement, a.TdProcSQL):
            self._run_sql(statement.statement, frame)
            return
        raise EmulationError(
            f"unsupported procedure statement {type(statement).__name__}")

    def _run_sql(self, ast_statement: a.TdStatement, frame: _Frame) -> None:
        prepared = _substitute_statement(copy.deepcopy(ast_statement), frame)
        with self.timing.measure("translation"):
            bound = self.session.binder.bind(prepared)
        self.last_result = self.session._dispatch(bound, prepared, self.timing)

    def _run_select_into(self, statement: a.TdSelectInto, frame: _Frame) -> None:
        query = a.TdQuery(statement.select)
        prepared = _substitute_statement(copy.deepcopy(query), frame)
        with self.timing.measure("translation"):
            bound = self.session.binder.bind(prepared)
        result = self.session._dispatch(bound, prepared, self.timing)
        rows = result.rows
        if len(rows) != 1:
            raise EmulationError(
                f"SELECT INTO expected exactly one row, got {len(rows)}")
        row = rows[0]
        if len(row) != len(statement.targets):
            raise EmulationError(
                f"SELECT INTO has {len(statement.targets)} targets for "
                f"{len(row)} columns")
        for name, value in zip(statement.targets, row):
            frame.set(name.lstrip(":"), value)


def _substitute_params(expr: s.ScalarExpr, frame: _Frame,
                       for_eval: bool = False) -> s.ScalarExpr:
    """Replace :var parameters (and, for SQL statements, bare references to
    declared variables) with constants from the frame."""

    def replace(node: s.ScalarExpr) -> s.ScalarExpr:
        if isinstance(node, s.Param):
            name = node.name.lstrip(":").upper()
            if name in frame.variables:
                return _const_of(frame.variables[name],
                                 frame.types.get(name, t.UNKNOWN))
            raise EmulationError(f"unknown procedure variable :{name}")
        if not for_eval and isinstance(node, s.ColumnRef) and node.table is None \
                and node.name.upper() in frame.variables:
            name = node.name.upper()
            return _const_of(frame.variables[name],
                             frame.types.get(name, t.UNKNOWN))
        for field_name in node.CHILD_FIELDS:
            value = getattr(node, field_name)
            if isinstance(value, s.ScalarExpr):
                setattr(node, field_name, replace(value))
            elif isinstance(value, list):
                setattr(node, field_name, [
                    replace(item) if isinstance(item, s.ScalarExpr) else item
                    for item in value
                ])
        return node

    return replace(expr)


def _const_of(value: object, declared: t.SQLType) -> s.Const:
    if declared.kind is not t.TypeKind.UNKNOWN:
        return s.Const(value, declared)
    if isinstance(value, bool):
        return s.Const(value, t.BOOLEAN)
    if isinstance(value, int):
        return s.Const(value, t.INTEGER)
    if isinstance(value, float):
        return s.Const(value, t.FLOAT)
    if isinstance(value, str):
        return s.const_str(value)
    return s.Const(value, t.UNKNOWN)


def _substitute_statement(statement: a.TdStatement, frame: _Frame) -> a.TdStatement:
    """Substitute variables into every scalar expression of a statement AST."""

    def fix_expr(expr):
        return _substitute_params(expr, frame) if expr is not None else None

    def fix_select(select: a.TdSelect) -> None:
        terms = [select.first] + [branch for __, __, branch in select.branches]
        for term in terms:
            if isinstance(term, a.TdSelect):
                fix_select(term)
                continue
            core = term
            core.items = [
                a.TdSelectItem(item.star, item.star_qualifier,
                               fix_expr(item.expr), item.alias)
                for item in core.items
            ]
            core.where = fix_expr(core.where)
            core.having = fix_expr(core.having)
            core.qualify = fix_expr(core.qualify)
            core.group_by = [fix_expr(expr) for expr in core.group_by]
            for key in core.order_by:
                key.expr = fix_expr(key.expr)
        for cte in select.ctes:
            fix_select(cte.query)

    if isinstance(statement, a.TdQuery):
        fix_select(statement.select)
    elif isinstance(statement, a.TdInsert):
        if statement.rows is not None:
            statement.rows = [[fix_expr(cell) for cell in row]
                              for row in statement.rows]
        if statement.select is not None:
            fix_select(statement.select)
    elif isinstance(statement, a.TdUpdate):
        statement.assignments = [(name, fix_expr(expr))
                                 for name, expr in statement.assignments]
        statement.where = fix_expr(statement.where)
    elif isinstance(statement, a.TdDelete):
        statement.where = fix_expr(statement.where)
    return statement


def run(session: "HyperQSession", bound: r.CallProcedure,
        timing: RequestTiming) -> "HQResult":
    """CALL: interpret the stored procedure body."""
    from repro.core.engine import HQResult

    procedure = session.engine.shadow.procedure(bound.name)
    frame = _Frame()
    interpreter = _Interpreter(session, timing)
    parameters = procedure.parameters
    if len(bound.arguments) > len(parameters):
        raise EmulationError(
            f"procedure {procedure.name} takes {len(parameters)} arguments, "
            f"got {len(bound.arguments)}")
    for index, (mode, name, param_type) in enumerate(parameters):
        value = None
        if index < len(bound.arguments):
            value = interpreter.eval(bound.arguments[index], frame)
        frame.declare(name, param_type, value)
    interpreter.run_block(procedure.body, frame)
    out_params = [(name, frame.variables.get(name.upper()))
                  for mode, name, __ in parameters if mode in ("OUT", "INOUT")]
    if out_params:
        columns = [name for name, __ in out_params]
        rows = [tuple(value for __, value in out_params)]
        return session.fabricate_result(
            columns, [t.UNKNOWN] * len(columns), rows, timing)
    if interpreter.last_result is not None:
        return interpreter.last_result
    return HQResult(kind="ok", timing=timing)
