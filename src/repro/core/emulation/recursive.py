"""Recursive query emulation via WorkTable/TempTable loops (Section 6).

When the target lacks ``WITH RECURSIVE``, Hyper-Q drives the fixpoint itself
with two temporary tables per recursive CTE:

1. seed both WorkTable (all rows so far) and TempTable (last delta),
2. run the recursive term with the self-reference redirected at TempTable,
3. append the delta to WorkTable and replace TempTable's contents,
4. stop when the delta is empty,
5. run the main query with the CTE reference redirected at WorkTable,
6. drop both tables.

The loop inspects target row counts to decide termination — mid-tier state
driving multi-request execution, exactly the paper's Figure 7 walk-through.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING

from repro.errors import EmulationError
from repro.core.timing import RequestTiming
from repro.xtra import relational as r
from repro.xtra import scalars as s_mod
from repro.xtra import types as t
from repro.xtra.relational import RelNode
from repro.xtra.schema import ColumnSchema, TableSchema
from repro.xtra.visitor import rewrite_rel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HQResult, HyperQSession

_MAX_ROUNDS = 10_000


def _redirect(plan: RelNode, name: str, table: TableSchema) -> RelNode:
    """Replace CTERef(name) nodes with scans of *table* (aliased alike)."""

    def rel_fn(node: RelNode) -> RelNode:
        if isinstance(node, r.CTERef) and node.name.upper() == name.upper():
            return r.Get(table, node.alias or name)
        return node

    return rewrite_rel(copy.deepcopy(plan), rel_fn, lambda e: e)


def _flatten_union_all(plan: RelNode) -> list[RelNode]:
    if isinstance(plan, r.SetOp) and plan.kind is r.SetOpKind.UNION and plan.all:
        return _flatten_union_all(plan.left) + _flatten_union_all(plan.right)
    return [plan]


def run(session: "HyperQSession", bound: r.Query,
        timing: RequestTiming) -> "HQResult":
    """Execute a query whose plan contains recursive CTEs."""
    plan = bound.plan
    if not isinstance(plan, r.With):
        raise EmulationError("recursive emulation expects a WITH plan")

    redirects: dict[str, TableSchema] = {}
    cleanup: list[str] = []
    target_sql: list[str] = []
    try:
        body = plan.body
        for cte in plan.ctes:
            cte_plan = _apply_redirects(cte.plan, redirects)
            if not cte.recursive:
                # Non-recursive CTE: materialize once into a temp table.
                schema = _materialize(session, cte.name, cte_plan, timing,
                                      cleanup, target_sql, cte.column_names)
                redirects[cte.name.upper()] = schema
                continue
            schema = _run_recursive(session, cte, cte_plan, timing, cleanup,
                                    target_sql, redirects)
            redirects[cte.name.upper()] = schema
        body = _apply_redirects(body, redirects)
        final = r.Query(body)
        result = session.run_translated(final, timing)
        result.target_sql = target_sql + result.target_sql
        return result
    finally:
        for name in cleanup:
            try:
                session.odbc.execute(f"DROP TABLE IF EXISTS {name}")
            except Exception:  # pragma: no cover - best-effort cleanup
                pass


def _apply_redirects(plan: RelNode, redirects: dict[str, TableSchema]) -> RelNode:
    for name, schema in redirects.items():
        plan = _redirect(plan, name, schema)
    return plan


def _temp_schema(session: "HyperQSession", prefix: str, plan: RelNode,
                 names: list[str] | None = None) -> TableSchema:
    columns = []
    output = plan.output_columns()
    for index, col in enumerate(output):
        name = names[index].upper() if names else col.name
        columns.append(ColumnSchema(name, col.type))
    return TableSchema(session.fresh_temp_name(prefix), columns, volatile=True)


def _renamed(plan: RelNode, schema: TableSchema) -> RelNode:
    """Wrap *plan* so its output carries the scratch table's column names."""
    alias = "_SEED"
    derived = r.DerivedTable(copy.deepcopy(plan), alias,
                             [col.name for col in schema.columns])
    refs = [s_mod.ColumnRef(col.name, alias, col.type)
            for col in schema.columns]
    return r.Project(derived, refs, [col.name for col in schema.columns])


def _create_temp_as(session: "HyperQSession", schema: TableSchema,
                    plan: RelNode, timing: RequestTiming, cleanup: list[str],
                    target_sql: list[str]) -> int:
    """CREATE TEMPORARY TABLE ... AS <plan>: the target infers column types
    itself, which keeps the emulation frontend-agnostic."""
    statement = r.CreateTable(schema, _renamed(plan, schema))
    with timing.measure("translation"):
        session.transformer.transform(statement)
        ddl = session.serializer.serialize(statement)
    target_sql.append(ddl)
    with timing.measure("execution"):
        result = session.odbc.execute(ddl)
    cleanup.append(schema.name)
    return result.rowcount


def _insert_from_plan(session: "HyperQSession", table: TableSchema,
                      plan: RelNode, timing: RequestTiming,
                      target_sql: list[str]) -> int:
    statement = r.Insert(table.name, None, copy.deepcopy(plan))
    with timing.measure("translation"):
        session.transformer.transform(statement)
        sql = session.serializer.serialize(statement)
    target_sql.append(sql)
    with timing.measure("execution"):
        result = session.odbc.execute(sql)
    return result.rowcount


def _materialize(session: "HyperQSession", name: str, plan: RelNode,
                 timing: RequestTiming, cleanup: list[str],
                 target_sql: list[str],
                 names: list[str] | None = None) -> TableSchema:
    schema = _temp_schema(session, name, plan, names)
    _create_temp_as(session, schema, plan, timing, cleanup, target_sql)
    return schema


def _run_recursive(session: "HyperQSession", cte: r.CTEDef, cte_plan: RelNode,
                   timing: RequestTiming, cleanup: list[str],
                   target_sql: list[str],
                   redirects: dict[str, TableSchema]) -> TableSchema:
    branches = _flatten_union_all(cte_plan)
    if len(branches) < 2:
        raise EmulationError(
            f"recursive CTE {cte.name} must be <seed> UNION ALL <recursive>")
    seed, recursive_terms = branches[0], branches[1:]

    names = cte.column_names
    work = _temp_schema(session, "WORK", seed, names)
    temp = _temp_schema(session, "TEMP", seed, names)
    delta = _temp_schema(session, "DELTA", seed, names)

    # Step 1: seed both WorkTable and TempTable (CTAS so the target infers
    # the scratch column types); DELTA starts empty.
    _create_temp_as(session, work, seed, timing, cleanup, target_sql)
    produced = _create_temp_as(session, temp, seed, timing, cleanup,
                               target_sql)
    _create_temp_as(session, delta, seed, timing, cleanup, target_sql)
    _truncate(session, delta, timing, target_sql)

    rounds = 0
    while produced:
        rounds += 1
        if rounds > _MAX_ROUNDS:
            raise EmulationError(
                f"recursive CTE {cte.name} exceeded {_MAX_ROUNDS} rounds")
        # Step 2: evaluate the recursive terms against TempTable.
        produced = 0
        for term in recursive_terms:
            redirected = _redirect(term, cte.name, temp)
            produced += _insert_from_plan(session, delta, redirected, timing,
                                          target_sql)
        # Step 3: append delta to WorkTable, move delta into TempTable.
        if produced:
            scan = r.Get(delta, None)
            _insert_from_plan(session, work, scan, timing, target_sql)
            _truncate(session, temp, timing, target_sql)
            _insert_from_plan(session, temp, r.Get(delta, None), timing,
                              target_sql)
        _truncate(session, delta, timing, target_sql)
    return work


def _truncate(session: "HyperQSession", table: TableSchema,
              timing: RequestTiming, target_sql: list[str]) -> None:
    sql = f"DELETE FROM {table.name}"
    target_sql.append(sql)
    with timing.measure("execution"):
        session.odbc.execute(sql)
