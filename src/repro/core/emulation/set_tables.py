"""SET-table semantics emulation.

Teradata SET tables silently reject duplicate rows on INSERT. Targets store
multisets, so Hyper-Q reconstructs the semantics in the mid-tier: stage the
incoming rows in a temporary table, then insert only the distinct stagers
that do not already exist in the target table (NULL-safe equality), and drop
the stage. One source INSERT becomes four target requests.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING

from repro.core.timing import RequestTiming
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.schema import ColumnSchema, TableSchema

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HQResult, HyperQSession


def _null_safe_equal(left: s.ColumnRef, right: s.ColumnRef) -> s.ScalarExpr:
    both_null = s.BoolOp(s.BoolOpKind.AND, [
        s.IsNull(copy.deepcopy(left)), s.IsNull(copy.deepcopy(right))])
    return s.BoolOp(s.BoolOpKind.OR, [s.Comp(s.CompOp.EQ, left, right), both_null])


def run_insert(session: "HyperQSession", schema: TableSchema, bound: r.Insert,
               timing: RequestTiming) -> "HQResult":
    from repro.core.engine import HQResult

    target_columns = bound.columns or [col.name for col in schema.columns]
    stage = TableSchema(
        session.fresh_temp_name("SETSTAGE"),
        [ColumnSchema(name, schema.column(name).type) for name in target_columns],
        volatile=True,
    )
    target_sql: list[str] = []

    def run_stmt(statement: r.Statement) -> int:
        with timing.measure("translation"):
            session.transformer.transform(statement)
            sql = session.serializer.serialize(statement)
        target_sql.append(sql)
        with timing.measure("execution"):
            return session.odbc.execute(sql).rowcount

    try:
        run_stmt(r.CreateTable(stage))
        run_stmt(r.Insert(stage.name, list(target_columns), bound.source))
        # Distinct stage rows that do not already exist in the target.
        stage_get = r.Get(stage, "_STG")
        probe_get = r.Get(schema, "_TGT")
        pairs = [
            _null_safe_equal(
                s.ColumnRef(name, "_TGT", schema.column(name).type),
                s.ColumnRef(name, "_STG", schema.column(name).type))
            for name in target_columns
        ]
        predicate = s.conjoin(pairs)
        assert predicate is not None
        probe = r.Project(r.Filter(probe_get, predicate),
                          [s.const_int(1)], ["_ONE"])
        anti = s.SubqueryExpr(kind=s.SubqueryKind.EXISTS, plan=probe, negated=True)
        anti.type = t.BOOLEAN
        source = r.Distinct(r.Project(
            r.Filter(stage_get, anti),
            [s.ColumnRef(name, "_STG", schema.column(name).type)
             for name in target_columns],
            list(target_columns)))
        inserted = run_stmt(r.Insert(schema.name, list(target_columns), source))
        return HQResult(kind="count", rowcount=inserted, timing=timing,
                        target_sql=target_sql)
    finally:
        try:
            session.odbc.execute(f"DROP TABLE IF EXISTS {stage.name}")
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
