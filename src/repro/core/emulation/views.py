"""DML-on-view emulation (Table 2: "Express DML operation on the base table
of the view").

Teradata permits INSERT/UPDATE/DELETE through simple views; most cloud
targets do not. Hyper-Q keeps the view's *source-dialect* definition in its
shadow catalog, re-parses it, checks updatability (single base table, plain
column projections, optional WHERE), and rewrites the DML against the base
table — folding the view predicate into UPDATE/DELETE so rows outside the
view stay untouched.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Optional

from repro.errors import EmulationError
from repro.core.timing import RequestTiming
from repro.frontend.teradata import ast as a
from repro.xtra import relational as r
from repro.xtra import scalars as s

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import HQResult, HyperQSession


class _ViewInfo:
    """Updatability analysis of one view definition."""

    def __init__(self, base_table: str, column_map: dict[str, str],
                 where: Optional[s.ScalarExpr]):
        self.base_table = base_table
        self.column_map = column_map  # view column -> base column
        self.where = where


def analyze(session: "HyperQSession", view_name: str) -> _ViewInfo:
    schema = session.catalog.resolve(view_name)
    if schema is None or not schema.is_view or not schema.view_sql:
        raise EmulationError(f"{view_name} is not an updatable view")
    ast = session.parser.parse_statement(schema.view_sql)
    if not isinstance(ast, a.TdQuery):
        raise EmulationError(f"view {view_name} does not wrap a query")
    select = ast.select
    if select.ctes or select.branches or not isinstance(select.first, a.TdSelectCore):
        raise EmulationError(f"view {view_name} is too complex for DML")
    core = select.first
    if len(core.from_refs) != 1 or not isinstance(core.from_refs[0], a.TdTableName):
        raise EmulationError(f"view {view_name} must reference one base table")
    if core.group_by or core.having or core.qualify or core.distinct or core.top:
        raise EmulationError(f"view {view_name} is not updatable")
    base = core.from_refs[0].name.upper()
    column_map: dict[str, str] = {}
    declared = [col.name for col in schema.columns]
    position = 0
    for item in core.items:
        if item.star:
            base_schema = session.catalog.table(base)
            for col in base_schema.columns:
                if position < len(declared):
                    column_map[declared[position]] = col.name
                position += 1
            continue
        if not isinstance(item.expr, s.ColumnRef):
            raise EmulationError(
                f"view {view_name}: computed columns are not updatable")
        if position < len(declared):
            column_map[declared[position]] = item.expr.name.upper()
        position += 1
    where = core.where
    return _ViewInfo(base, column_map, where)


def _map_column(info: _ViewInfo, view_name: str, name: str) -> str:
    mapped = info.column_map.get(name.upper())
    if mapped is None:
        raise EmulationError(
            f"view {view_name} has no column {name}")
    return mapped


def _rebase_predicate(session: "HyperQSession", info: _ViewInfo,
                      view_name: str, predicate: Optional[s.ScalarExpr],
                      base_alias: Optional[str]) -> Optional[s.ScalarExpr]:
    """Rewrite a bound view-DML predicate onto base-table columns and fold
    in the view's own WHERE clause."""
    rebound: Optional[s.ScalarExpr] = None
    if predicate is not None:
        def rewrite(node: s.ScalarExpr) -> s.ScalarExpr:
            if isinstance(node, s.ColumnRef):
                return s.ColumnRef(_map_column(info, view_name, node.name),
                                   base_alias or info.base_table, node.type)
            for field_name in node.CHILD_FIELDS:
                value = getattr(node, field_name)
                if isinstance(value, s.ScalarExpr):
                    setattr(node, field_name, rewrite(value))
                elif isinstance(value, list):
                    setattr(node, field_name, [
                        rewrite(item) if isinstance(item, s.ScalarExpr) else item
                        for item in value
                    ])
            return node

        rebound = rewrite(copy.deepcopy(predicate))
    view_where = None
    if info.where is not None:
        # Bind the view's stored WHERE against the base table.
        table = session.catalog.table(info.base_table)
        from repro.frontend.teradata.binder import Binder, _Scope
        from repro.xtra.relational import OutputColumn

        scope = _Scope([OutputColumn(col.name, col.type,
                                     (base_alias or info.base_table).upper())
                        for col in table.columns])
        view_where = session.binder._bind_expr(copy.deepcopy(info.where), scope)
    return s.conjoin([p for p in (rebound, view_where) if p is not None])


def run_dml(session: "HyperQSession", bound: r.Statement,
            timing: RequestTiming) -> "HQResult":
    if isinstance(bound, r.Insert):
        return _run_insert(session, bound, timing)
    if isinstance(bound, r.Update):
        return _run_update(session, bound, timing)
    if isinstance(bound, r.Delete):
        return _run_delete(session, bound, timing)
    raise EmulationError(f"unsupported view DML {type(bound).__name__}")


def _run_insert(session: "HyperQSession", bound: r.Insert,
                timing: RequestTiming) -> "HQResult":
    info = analyze(session, bound.table)
    view_schema = session.catalog.resolve(bound.table)
    assert view_schema is not None
    view_columns = bound.columns or [col.name for col in view_schema.columns]
    base_columns = [_map_column(info, bound.table, name) for name in view_columns]
    rewritten = r.Insert(info.base_table, base_columns, bound.source)
    return session.run_translated(rewritten, timing)


def _run_update(session: "HyperQSession", bound: r.Update,
                timing: RequestTiming) -> "HQResult":
    info = analyze(session, bound.table)
    assignments = [(_map_column(info, bound.table, name), expr)
                   for name, expr in bound.assignments]
    predicate = _rebase_predicate(session, info, bound.table, bound.predicate,
                                  None)
    rewritten = r.Update(info.base_table, assignments, predicate, None)
    # Assignment expressions may reference view columns; rebase those too.
    rewritten.assignments = [
        (name, _rebase_expr(info, bound.table, expr))
        for name, expr in rewritten.assignments
    ]
    return session.run_translated(rewritten, timing)


def _rebase_expr(info: _ViewInfo, view_name: str,
                 expr: s.ScalarExpr) -> s.ScalarExpr:
    def rewrite(node: s.ScalarExpr) -> s.ScalarExpr:
        if isinstance(node, s.ColumnRef):
            return s.ColumnRef(_map_column(info, view_name, node.name),
                               info.base_table, node.type)
        for field_name in node.CHILD_FIELDS:
            value = getattr(node, field_name)
            if isinstance(value, s.ScalarExpr):
                setattr(node, field_name, rewrite(value))
            elif isinstance(value, list):
                setattr(node, field_name, [
                    rewrite(item) if isinstance(item, s.ScalarExpr) else item
                    for item in value
                ])
        return node

    return rewrite(copy.deepcopy(expr))


def _run_delete(session: "HyperQSession", bound: r.Delete,
                timing: RequestTiming) -> "HQResult":
    info = analyze(session, bound.table)
    predicate = _rebase_predicate(session, info, bound.table, bound.predicate,
                                  None)
    rewritten = r.Delete(info.base_table, predicate, None)
    return session.run_translated(rewritten, timing)
