"""The Hyper-Q engine: adaptive data virtualization end to end.

One :class:`HyperQSession` per client connection. Each request runs the
paper's pipeline (Figure 3):

    Protocol Handler -> Parser -> Binder -> Transformer -> Serializer
        -> ODBC Server -> target -> TDF -> Result Converter -> client

Statements the target cannot express are routed to the emulators in
:mod:`repro.core.emulation`, which issue multiple target requests and keep
mid-tier state. Per-request stage timings (Figure 9) and tracked-feature
observations (Figure 8) are collected on the way through.
"""

from __future__ import annotations

import re
import threading

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import EmulationError, HyperQError, UnsupportedFeatureError
from repro.backend.engine import Database
from repro.core import deps as deps_mod
from repro.core import trace as trace_mod
from repro.core.budget import BatchBudget
from repro.core.cache import CacheHit, Fingerprint, TranslationCache, fingerprint
from repro.core.catalog import MacroDef, ProcedureDef, SessionCatalog, ShadowCatalog
from repro.core.faults import ResilienceStats, RetryPolicy
from repro.core.result_cache import ResultCache, ResultEntry
from repro.core.timing import RequestTiming, TimingLog
from repro.core.trace import MetricsRegistry, TraceHub, render_trace
from repro.core.tracker import FeatureTracker
from repro.frontend.teradata import ast as td_ast
from repro.frontend.teradata.binder import Binder
from repro.frontend.teradata.parser import TeradataParser
from repro.odbc.api import OdbcResult, OdbcServer
from repro.odbc.drivers import InProcessDriver
from repro.protocol.encoding import ColumnMeta, decode_rows
from repro.results.converter import ConvertedResult, ResultConverter
from repro.serializer import serializer_for
from repro.transform.capabilities import CapabilityProfile, HYPERION, PROFILES
from repro.transform.engine import Transformer
from repro.xtra import relational as r
from repro.xtra import types as t
from repro.xtra.relational import RelNode
from repro.xtra.schema import ColumnSchema, TableSchema
from repro.xtra.visitor import walk_rel


class HQResult:
    """Outcome of one Hyper-Q request as seen by the application.

    Row results carry a converted result whose chunks may still be
    streaming from the backend; :attr:`rows` and :attr:`rowcount` are
    compatibility shims that drain the stream (buffering through the
    Result Store, which spills past the memory budget) on first access.
    """

    def __init__(self, kind: str,
                 columns: Optional[list[str]] = None,
                 metas: Optional[list[ColumnMeta]] = None,
                 converted: Optional[ConvertedResult] = None,
                 rowcount: Optional[int] = None,
                 timing: Optional[RequestTiming] = None,
                 target_sql: Optional[list[str]] = None):
        self.kind = kind  # "rows" | "count" | "ok"
        self.columns = columns if columns is not None else []
        self.metas = metas if metas is not None else []
        self.converted = converted
        self._rowcount = rowcount
        self.timing = timing if timing is not None else RequestTiming()
        self.target_sql = target_sql if target_sql is not None else []

    @property
    def rowcount(self) -> int:
        if self._rowcount is not None:
            return self._rowcount
        if self.converted is not None:
            return self.converted.rowcount
        return 0

    @property
    def rows(self) -> list[tuple]:
        """Decode the converted binary payload back into Python rows."""
        if self.converted is None:
            return []
        return self.converted.rows()

    def iter_chunks(self):
        """Converted wire chunks as they arrive (the streaming fast path)."""
        if self.converted is None:
            return iter(())
        return self.converted.iter_chunks()

    def close(self) -> None:
        if self.converted is not None:
            self.converted.close()


@dataclass
class TranslationResult:
    """Outcome of translation without execution (the workload-study path)."""

    kind: str  # "sql" | "emulated" | "ok"
    statements: list[str] = field(default_factory=list)
    emulated_feature: Optional[str] = None


class HyperQ:
    """The shared virtualization engine: one per (source, target) pair."""

    def __init__(self, backend: Optional[Database] = None,
                 target: CapabilityProfile | str = HYPERION,
                 tracker: Optional[FeatureTracker] = None,
                 converter_parallelism: int = 1,
                 transformer_fixpoint: bool = True,
                 dml_batching: bool = False,
                 source: str = "teradata",
                 converter_max_memory: int = 64 * 1024 * 1024,
                 spill_dir: Optional[str] = None,
                 cache_size: int = 32 * 1024 * 1024,
                 faults=None,
                 retry: Optional[RetryPolicy] = None,
                 replica: Optional[int] = None,
                 batch_budget: Optional[BatchBudget] = None,
                 workload=None,
                 tracing: bool = True,
                 trace_ring: int = 256,
                 trace_log: Optional[str] = None,
                 slow_query_log: Optional[str] = None,
                 slow_thresholds: Optional[dict[str, float]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 cache_tier=None,
                 worker_index: Optional[int] = None,
                 fleet_size: int = 1,
                 result_cache_bytes: int = 0,
                 tenancy=None):
        if isinstance(target, str):
            target = PROFILES[target]
        if source not in ("teradata", "ansi"):
            raise HyperQError(f"unknown source dialect {source!r}")
        #: source dialect each session's frontend speaks.
        self.source = source
        self.profile = target
        #: Optional :class:`repro.core.faults.FaultSchedule`; wired into the
        #: ODBC layer, the backend executor (when the backend is engine-built),
        #: and the wire server fronting this engine.
        self.faults = faults
        #: Replica index when this engine is one member of a scaled fleet.
        self.replica = replica
        #: Gateway worker index when this engine runs inside one shard of a
        #: multi-process gateway (None = standalone). Workers draw the
        #: ``"gateway"`` fault site per request, keyed by this index.
        self.worker_index = worker_index
        #: Fleet aggregation client installed by the gateway worker; when
        #: set, ``SHOW HYPERQ METRICS/TRACES/...`` report fleet-wide.
        self.fleet = None
        #: Retry policy for transient backend failures on the target path.
        self.retry = retry if retry is not None else RetryPolicy()
        #: What the resilience machinery actually did (retries, timeouts...).
        self.resilience = ResilienceStats()
        #: Per-request stream bounds: rows per batch between layers, and the
        #: buffering memory ceiling before a layer spills to disk (§4.5/4.6).
        #: An explicit budget overrides ``converter_max_memory``.
        if batch_budget is None:
            batch_budget = BatchBudget(max_memory_bytes=converter_max_memory)
        else:
            converter_max_memory = batch_budget.max_memory_bytes
        self.batch_budget = batch_budget
        self.backend = (backend if backend is not None
                        else Database(target, faults=faults, replica=replica,
                                      batch_rows=batch_budget.batch_rows))
        self.shadow = ShadowCatalog()
        self.tracker = tracker
        #: The observability layer: request traces, metric registry, sinks
        #: (ring buffer, JSONL log, slow-query log). ``tracing=False`` keeps
        #: the registry but records no spans (the overhead-bench baseline).
        self.tracing = TraceHub(enabled=tracing, ring_size=trace_ring,
                                trace_log=trace_log,
                                slow_query_log=slow_query_log,
                                slow_thresholds=slow_thresholds,
                                metrics=metrics,
                                id_offset=worker_index or 0,
                                id_stride=max(1, fleet_size))
        if tracker is not None and tracker.metrics is None:
            tracker.metrics = self.tracing.metrics
        self.timing_log = TimingLog(metrics=self.tracing.metrics)
        #: Multi-tenant control plane: a
        #: :class:`~repro.core.tenancy.TenantRegistry` (or a
        #: :class:`~repro.core.tenancy.TenancyConfig`, promoted here).
        #: Establishes identity at LOGON, partitions the caches, and feeds
        #: ``SHOW HYPERQ TENANTS``.
        self.tenancy = None
        if tenancy is not None:
            from repro.core.tenancy import TenancyConfig, TenantRegistry

            if isinstance(tenancy, TenancyConfig):
                tenancy = TenantRegistry(tenancy, faults=faults)
            self.tenancy = tenancy
        if self.tenancy is None and workload is not None:
            # Adopt the manager's registry so LOGON resolution, cache
            # shares, and SHOW HYPERQ TENANTS see the same control plane.
            self.tenancy = getattr(workload, "tenancy", None)
        #: Shared translation cache (byte cap; 0 disables caching entirely).
        self.cache: Optional[TranslationCache] = None
        if cache_size > 0:
            self.cache = TranslationCache(
                cache_size, tier=cache_tier,
                tenant_shares=(self.tenancy.translation_cache_shares()
                               if self.tenancy is not None else None))
            # Schema epochs (DDL) invalidate translations of the touched
            # tables only; entries on disjoint tables survive.
            self.shadow.subscribe(self.cache.invalidate_tables)
        #: Semantic result cache (byte cap; 0 disables). Subscribed to the
        #: *data* channel: DML on a table drops exactly the materialized
        #: results whose dependency set includes it.
        self.result_cache: Optional[ResultCache] = None
        if result_cache_bytes > 0:
            self.result_cache = ResultCache(
                result_cache_bytes, faults=faults,
                tenant_shares=(self.tenancy.result_cache_shares()
                               if self.tenancy is not None else None))
            registry = self.tracing.metrics

            def _on_data_change(names, _rc=self.result_cache, _m=registry):
                dropped = _rc.invalidate_tables(names)
                if dropped and _m is not None:
                    _m.counter(
                        "hyperq_result_cache_invalidations_total").inc(dropped)

            self.shadow.subscribe_data(_on_data_change)
        self.converter_parallelism = converter_parallelism
        self.transformer_fixpoint = transformer_fixpoint
        #: Section 4.3's performance transformation: merge contiguous
        #: single-row VALUES inserts in execute_script into one statement.
        self.dml_batching = dml_batching
        #: Result Converter buffering budget before spilling to disk (§4.6).
        self.converter_max_memory = converter_max_memory
        self.spill_dir = spill_dir
        self._session_lock = threading.Lock()
        self._open_sessions = 0
        #: Optional :class:`repro.core.workload.WorkloadManager` fronting
        #: this engine: the wire server routes every request through it for
        #: classification, admission control, and fair scheduling. A manager
        #: constructed bare adopts the engine's tracker and fault schedule.
        self.workload = workload
        if workload is not None:
            if workload.tracker is None:
                workload.tracker = tracker
            if workload.faults is None:
                workload.faults = faults
            if self.tenancy is not None \
                    and getattr(workload, "tenancy", None) is not self.tenancy:
                raise HyperQError(
                    "tenancy requires the WorkloadManager to schedule per "
                    "tenant: construct it with "
                    "WorkloadManager(config, tenancy=<the same registry>) "
                    "instead of attaching tenancy to the engine alone")

    def create_session(self) -> "HyperQSession":
        return HyperQSession(self)

    @property
    def open_session_count(self) -> int:
        """Sessions constructed against this engine and not yet closed.

        The wire fuzz/resilience suites assert this returns to baseline
        after abusive clients disconnect — a leaked session means a wire
        path dropped its ``session.close()``."""
        with self._session_lock:
            return self._open_sessions

    def _session_opened(self) -> None:
        with self._session_lock:
            self._open_sessions += 1

    def _session_closed(self) -> None:
        with self._session_lock:
            self._open_sessions -= 1

    def execute(self, sql: str) -> HQResult:
        """One-shot convenience for scripts and tests."""
        return self.create_session().execute(sql)

    def cache_stats(self):
        """Snapshot of translation-cache counters (None when disabled)."""
        return self.cache.stats() if self.cache is not None else None

    def result_cache_stats(self):
        """Snapshot of result-cache counters (None when disabled)."""
        return (self.result_cache.stats()
                if self.result_cache is not None else None)

    def resilience_stats(self) -> dict[str, int]:
        """Snapshot of retry/failover/timeout counters."""
        return self.resilience.snapshot()

    def estimate_rows(self, name: str) -> int:
        """Estimated stored rows for table *name* — the scan statistic the
        workload classifier feeds on. Backed by the in-process backend's
        catalog; unknown names (views, volatile overlays, typos) estimate
        zero rather than failing classification."""
        try:
            catalog = self.backend.catalog
            if catalog.has_table(name):
                return len(catalog.table(name))
        except Exception:
            pass
        return 0


class HyperQSession:
    """One application connection through the virtualization layer."""

    def __init__(self, engine: HyperQ):
        self.engine = engine
        self.profile = engine.profile
        self.tracker = engine.tracker
        self.catalog = SessionCatalog(engine.shadow)
        if engine.cache is not None:
            self.catalog.overlay_listener = engine.cache.invalidate_overlay
        self.parser = TeradataParser(engine.tracker)
        self.binder = Binder(self.catalog, engine.tracker)
        rules = None
        if engine.source == "ansi":
            # ANSI sources share the target's NULL placement semantics; the
            # Teradata-specific pinning rule must not fire for them.
            from repro.transform.engine import default_rules
            from repro.transform.rules.null_ordering import NullOrderingRule

            rules = [rule for rule in default_rules()
                     if not isinstance(rule, NullOrderingRule)]
        self.transformer = Transformer(engine.profile, engine.tracker,
                                       rules=rules,
                                       fixpoint=engine.transformer_fixpoint)
        self.serializer = serializer_for(engine.profile, engine.tracker)
        self.odbc = OdbcServer(InProcessDriver(engine.backend),
                               batch_rows=engine.batch_budget.batch_rows,
                               faults=engine.faults,
                               replica=engine.replica,
                               retry=engine.retry,
                               observer=self._resilience_event)
        self.converter = ResultConverter(
            parallelism=engine.converter_parallelism,
            max_memory_bytes=engine.converter_max_memory,
            spill_dir=engine.spill_dir)
        self.ansi_frontend = None
        if engine.source == "ansi":
            from repro.frontend.ansi import AnsiFrontend

            self.ansi_frontend = AnsiFrontend(self.catalog, engine.tracker)
        self.session_params: dict[str, object] = {
            "USER": "HYPERQ",
            "TRANSACTION_SEMANTICS": "Teradata",
            "CHARACTER_SET": "UTF8",
            "SOURCE": engine.source,
            "TARGET": engine.profile.name,
        }
        if engine.tenancy is not None:
            # Connections that present no tenant id land on the default
            # tenant; the wire server overwrites this after LOGON.
            self.session_params["TENANT"] = engine.tenancy.default_tenant
        self._temp_counter = 0
        self._original_ddl: dict[str, str] = {}
        #: Armed :class:`_ResultCapture` consumed by the next
        #: :meth:`package_result` (result-cache materialize-through).
        self._pending_capture: Optional[_ResultCapture] = None
        #: Tracker-free pipeline used for translation-cache sentinel probes
        #: (built lazily; probes must not pollute Figure 8 statistics).
        self._probe_stack = None
        self._closed = False
        engine._session_opened()

    @property
    def tenant(self) -> Optional[str]:
        """The session's resolved tenant, or None outside a tenanted
        deployment (identity is set at LOGON, default-mapped otherwise)."""
        if self.engine.tenancy is None:
            return None
        value = self.session_params.get("TENANT")
        return value if isinstance(value, str) else None

    # -- public API ----------------------------------------------------------------

    def execute(self, sql: str, parameters=None, **named_parameters) -> HQResult:
        """Process one source-dialect request end to end.

        ``parameters`` feeds ``?`` positional markers; keyword arguments feed
        ``:name`` markers (Section 4.5's parameterized queries)::

            session.execute("SEL A FROM T WHERE B = ? AND C = :lim",
                            ["x"], lim=10)
        """
        admin = _ADMIN_COMMAND_RE.match(sql)
        if admin is not None:
            return self._run_admin(admin)
        with self.engine.tracing.request("request", sql):
            tenant = self.tenant
            if tenant is not None:
                # Per-tenant tagging: a trace event on the request's root
                # span and a per-tenant counter that the gateway's metric
                # merge sums fleet-wide.
                trace_mod.add_event("tenant", tenant=tenant)
                metrics = self.engine.tracing.metrics
                if metrics is not None:
                    metrics.counter("hyperq_tenant_requests_total"
                                    f'{{tenant="{tenant}"}}').inc()
            return self._execute_traced(sql, parameters, named_parameters)

    def _execute_traced(self, sql: str, parameters,
                        named_parameters) -> HQResult:
        if self.tracker is not None:
            self.tracker.begin_query()
        try:
            timing = RequestTiming()
            fp, params_key, hit = self._cache_lookup(
                sql, parameters, named_parameters, timing)
            if hit is not None:
                if hit.result_shareable:
                    rc_key = self._result_cache_key(fp, params_key)
                    if rc_key is not None:
                        replayed = self._result_cache_replay(rc_key, timing)
                        if replayed is not None:
                            replayed.timing = timing
                            self.engine.timing_log.record(timing)
                            return replayed
                        # Re-materialize on this execution: the translation
                        # entry survived a result-cache eviction (or a data
                        # bump), so its deps are already known.
                        self._arm_result_capture(rc_key, hit.deps, hit.notes)
                self._replay_notes(hit.notes)
                try:
                    with timing.measure("execution"):
                        odbc_result = self.odbc.execute(hit.target_sql)
                    result = self.package_result(
                        odbc_result, timing, [hit.target_sql])
                finally:
                    self._pending_capture = None
                result.timing = timing
                self.engine.timing_log.record(timing)
                return result
            with timing.measure("translation"):
                if self.ansi_frontend is not None:
                    if parameters or named_parameters:
                        raise HyperQError(
                            "parameter binding is implemented for the "
                            "Teradata frontend only")
                    ast = None
                    with trace_mod.span("parse"):
                        bound = self.ansi_frontend.bind_statement(sql)
                else:
                    with trace_mod.span("parse", bytes=len(sql)):
                        ast = self.parser.parse_statement(sql)
                    if parameters or named_parameters:
                        from repro.frontend.teradata.parameters import (
                            bind_parameters,
                        )

                        bind_parameters(ast, parameters, named_parameters)
                    with trace_mod.span("bind"):
                        bound = self.binder.bind(ast)
            cache_key = self._cacheable_key(fp, bound)
            stmt_deps = self._extract_deps(bound, timing)
            capture = None
            if cache_key is not None and isinstance(bound, r.Query) \
                    and stmt_deps is not None and stmt_deps.shareable:
                rc_key = self._result_cache_key(fp, params_key)
                if rc_key is not None:
                    # Translation missed but the result may still be cached
                    # (the two caches evict independently).
                    replayed = self._result_cache_replay(rc_key, timing)
                    if replayed is not None:
                        replayed.timing = timing
                        self.engine.timing_log.record(timing)
                        return replayed
                    capture = self._arm_result_capture(
                        rc_key, stmt_deps.all_tables, None)
            try:
                result = self._dispatch(bound, ast, timing)
            finally:
                self._pending_capture = None
                self._note_data_write(bound, stmt_deps)
            if capture is not None and capture.notes is None:
                capture.notes = (self.tracker.current_notes()
                                 if self.tracker is not None else ())
            if cache_key is not None and len(result.target_sql) == 1:
                with timing.measure("cache_lookup"):
                    self._cache_insert(cache_key, fp, params_key,
                                       result.target_sql[0], stmt_deps)
            result.timing = timing
            self.engine.timing_log.record(timing)
            return result
        finally:
            if self.tracker is not None:
                self.tracker.end_query()

    def execute_script(self, sql: str) -> list[HQResult]:
        """Process a ';'-separated request sequence.

        With :attr:`HyperQ.dml_batching` enabled, runs of contiguous
        compatible single-row VALUES inserts are merged into one target
        statement (Section 4.3's performance transformation); one result is
        returned per *executed* statement in that case.
        """
        if self.ansi_frontend is not None:
            results = []
            for spec in self.ansi_frontend.parse_script(sql):
                timing = RequestTiming()
                with timing.measure("translation"):
                    bound = self.ansi_frontend.lower_spec(spec)
                try:
                    result = self._dispatch(bound, None, timing)
                finally:
                    self._note_data_write(bound)
                result.timing = timing
                self.engine.timing_log.record(timing)
                results.append(result)
            return results
        if _ADMIN_COMMAND_HINT_RE.search(sql) is not None:
            # Admin commands never reach the parser, so a script holding
            # one runs statement-by-statement through the intercept.
            return [self.execute(statement)
                    for statement in self.parser.split_script(sql)]
        statements = self.parser.parse_script(sql)
        if not self.engine.dml_batching:
            return [self._execute_ast(ast) for ast in statements]
        return self._execute_script_batched(statements)

    def _execute_ast(self, ast: td_ast.TdStatement) -> HQResult:
        if self.tracker is not None:
            self.tracker.begin_query()
        try:
            with self.engine.tracing.request("request", type(ast).__name__):
                timing = RequestTiming()
                with timing.measure("translation"), trace_mod.span("bind"):
                    bound = self.binder.bind(ast)
                try:
                    result = self._dispatch(bound, ast, timing)
                finally:
                    self._note_data_write(bound)
                result.timing = timing
                self.engine.timing_log.record(timing)
                return result
        finally:
            if self.tracker is not None:
                self.tracker.end_query()

    def _execute_script_batched(self, statements) -> list[HQResult]:
        from repro.transform.rules.dml_batching import (
            _is_batchable_insert, batch_statements,
        )

        results: list[HQResult] = []
        pending: list[tuple[r.Insert, td_ast.TdStatement]] = []

        def flush() -> None:
            if not pending:
                return
            merged = batch_statements([bound for bound, __ in pending])
            for bound in merged:
                timing = RequestTiming()
                try:
                    result = self._dispatch(bound, pending[0][1], timing)
                finally:
                    self._note_data_write(bound)
                result.timing = timing
                self.engine.timing_log.record(timing)
                results.append(result)
            pending.clear()

        for ast in statements:
            if self.tracker is not None:
                self.tracker.begin_query()
            try:
                timing = RequestTiming()
                with timing.measure("translation"):
                    bound = self.binder.bind(ast)
                if isinstance(bound, r.Insert) and _is_batchable_insert(bound) \
                        and self._emulated_feature(bound) is None:
                    pending.append((bound, ast))
                    continue
                flush()
                try:
                    result = self._dispatch(bound, ast, timing)
                finally:
                    self._note_data_write(bound)
                result.timing = timing
                self.engine.timing_log.record(timing)
                results.append(result)
            finally:
                if self.tracker is not None:
                    self.tracker.end_query()
        flush()
        return results

    def translate(self, sql: str) -> TranslationResult:
        """Translate without executing — the workload-study entry point.

        Emulated statements report the feature that routes them to the
        mid-tier instead of producing target SQL. Shares the translation
        cache with :meth:`execute`.
        """
        if self.tracker is not None:
            self.tracker.begin_query()
        try:
            with self.engine.tracing.request("translate", sql):
                return self._translate_traced(sql)
        finally:
            if self.tracker is not None:
                self.tracker.end_query()

    def _translate_traced(self, sql: str) -> TranslationResult:
        fp, params_key, hit = self._cache_lookup(sql, None, {}, None)
        if hit is not None:
            self._replay_notes(hit.notes)
            return TranslationResult("sql", [hit.target_sql])
        if self.ansi_frontend is not None:
            with trace_mod.span("parse"):
                bound = self.ansi_frontend.bind_statement(sql)
        else:
            with trace_mod.span("parse", bytes=len(sql)):
                ast = self.parser.parse_statement(sql)
            with trace_mod.span("bind"):
                bound = self.binder.bind(ast)
        feature = self._emulated_feature(bound)
        if feature is not None:
            self._note(feature)
            trace_mod.add_event("emulated", feature=feature)
            if fp is not None:
                self.engine.cache.note_bypass()
            return TranslationResult("emulated", emulated_feature=feature)
        cache_key = self._cacheable_key(fp, bound)
        if isinstance(bound, (r.NoOp, r.SetSessionParam)):
            return TranslationResult("ok")
        stmt_deps = (self._extract_deps(bound, None)
                     if cache_key is not None else None)
        with trace_mod.span("transform"):
            self.transformer.transform(bound)
        with trace_mod.span("serialize") as span:
            target_sql = self.serializer.serialize(bound)
            if span is not None:
                span.annotate("bytes", len(target_sql))
        if cache_key is not None:
            self._cache_insert(cache_key, fp, params_key, target_sql,
                               stmt_deps)
        return TranslationResult("sql", [target_sql])

    def close(self) -> None:
        self.odbc.close()
        self.converter.close()
        if not self._closed:
            self._closed = True
            self.engine._session_closed()

    # -- observability admin commands --------------------------------------------------

    def _run_admin(self, match: "re.Match[str]") -> HQResult:
        """Serve a ``SHOW HYPERQ ...`` observability command from the
        mid-tier: metrics dump, trace listing, one rendered span tree, or
        the slow-query records — as an ordinary row result, so any wire
        client (or bteq stand-in) can read them."""
        import json

        hub = self.engine.tracing
        fleet = self.engine.fleet
        what = match.group("what").upper()
        timing = RequestTiming()
        if what == "METRICS":
            lines = None
            if fleet is not None:
                try:
                    lines = fleet.metrics_text().splitlines()
                except Exception as exc:  # degraded to the local view
                    lines = hub.render_metrics().splitlines()
                    lines.append(f"# fleet aggregation unavailable: {exc}")
            if lines is None:
                lines = hub.render_metrics().splitlines()
            lines = lines or ["(no metrics recorded)"]
        elif what == "TRACES":
            lines = None
            if fleet is not None:
                try:
                    lines = fleet.trace_index()
                except Exception as exc:
                    lines = [f"# fleet aggregation unavailable: {exc}"]
            if lines is None:
                lines = []
                for trace_id in hub.trace_ids():
                    trace = hub.get_trace(trace_id)
                    if trace is not None:
                        lines.append(
                            f"{trace_id}\t{trace.spans[0].outcome}\t"
                            f"{trace.duration * 1e3:.3f}ms\t{trace.sql[:80]}")
            lines = lines or ["(no traces recorded)"]
        elif what == "TENANTS":
            from repro.core import tenancy as tenancy_mod

            report = None
            workers = 1
            if fleet is not None:
                try:
                    report, workers = fleet.tenants()
                except Exception as exc:  # degraded to the local view
                    report = tenancy_mod.tenant_report(self.engine)
                    lines = (tenancy_mod.render_tenants(report).splitlines()
                             if report else ["(tenancy disabled)"])
                    lines.append(f"# fleet aggregation unavailable: {exc}")
                    return self.fabricate_result(
                        ["LINE"], [t.varchar(2048)],
                        [(line,) for line in lines], timing)
            if report is None:
                report = tenancy_mod.tenant_report(self.engine)
            lines = (tenancy_mod.render_tenants(report, workers).splitlines()
                     if report else ["(tenancy disabled)"])
        elif what.startswith("SLOW"):
            records = hub.slow_queries
            if fleet is not None:
                try:
                    records = fleet.slow_queries()
                except Exception:
                    pass
            lines = [json.dumps(record, sort_keys=True)
                     for record in records] or ["(no slow queries)"]
        else:
            trace_id = int(match.group("id"))
            lines = None
            if fleet is not None:
                try:
                    lines = fleet.find_trace(trace_id)
                except Exception:
                    lines = None
            if lines is None:
                trace = hub.get_trace(trace_id)
                if trace is None:
                    raise HyperQError(
                        f"no trace {trace_id} in the ring buffer "
                        f"(ids: {hub.trace_ids() or 'none'})")
                lines = render_trace(trace)
        return self.fabricate_result(
            ["LINE"], [t.varchar(2048)], [(line,) for line in lines], timing)

    # -- workload management ---------------------------------------------------------

    def workload_features(self, sql: str):
        """``(QueryFeatures, cache_hit)`` for the workload classifier.

        Parses and binds on the tracker-free probe pipeline so
        classification never pollutes the Figure 8 statistics, and probes
        the translation cache without counting (the classifier's cache-hit
        signal must not distort the hit rate). Unparseable requests return
        ``(None, cache_hit)`` — they will fail fast in :meth:`execute`, so
        the classifier routes them interactive.
        """
        from repro.core.workload import extract_features

        cache = self.engine.cache
        cache_hit = False
        if cache is not None and self.ansi_frontend is None:
            try:
                fp = cache.fingerprint_cached(sql, self.parser.lexer)
                cache_hit = cache.contains(self._cache_key_base(fp), fp, None)
            except Exception:
                cache_hit = False
        try:
            if self.ansi_frontend is not None:
                bound = self.ansi_frontend.bind_statement(sql)
            else:
                parser, binder, __, __ = self._ensure_probe_stack()
                bound = binder.bind(parser.parse_statement(sql))
        except Exception:
            return None, cache_hit
        return extract_features(bound, self.engine.estimate_rows,
                                catalog=self.catalog), cache_hit

    def apply_batch_budget(self, budget: Optional[BatchBudget]) -> None:
        """Apply a per-request stream-budget override (workload classes
        tighten or widen the engine default); ``None`` restores the
        engine's budget. Sessions are driven serially by the wire server,
        so the override cannot race an in-flight request."""
        if budget is None:
            budget = self.engine.batch_budget
        self.odbc.set_batch_rows(budget.batch_rows)
        self.converter.set_max_memory(budget.max_memory_bytes)

    # -- translation cache ---------------------------------------------------------

    #: Statement kinds whose translation may be memoized: single-statement,
    #: catalog-read-only requests on the plain run_translated path. Emulated
    #: statements (multi-request, mid-tier state) and DDL/INSERT (catalog
    #: mutation, mid-tier default evaluation) always bypass.
    _CACHEABLE_KINDS = (r.Query, r.Update, r.Delete)

    def _cache_lookup(self, sql: str, parameters, named_parameters,
                      timing: Optional[RequestTiming]):
        """Fingerprint *sql* and probe the shared cache.

        Returns ``(fingerprint, params_key, hit)``; everything is ``None``
        when caching is off or inapplicable (ANSI frontend, unhashable
        parameter values, lexer errors).
        """
        cache = self.engine.cache
        if cache is None or self.ansi_frontend is not None:
            return None, None, None
        from contextlib import nullcontext

        stage = (timing.measure("cache_lookup") if timing is not None
                 else nullcontext())
        with stage, trace_mod.span("cache_lookup") as span:
            try:
                fp = cache.fingerprint_cached(sql, self.parser.lexer)
            except Exception:
                return None, None, None
            params_key = None
            if parameters or named_parameters:
                params_key = _freeze_params(parameters, named_parameters)
                if params_key is None:
                    return None, None, None
            hit = cache.lookup(self._cache_key_base(fp), fp, params_key)
            if span is not None:
                span.annotate("hit", hit is not None)
        return fp, params_key, hit

    def _cache_key_base(self, fp: Fingerprint) -> tuple:
        return TranslationCache.key_base(
            self.engine.source, self.profile.name, fp.text,
            self.catalog.overlay_key)

    def _cacheable_key(self, fp: Optional[Fingerprint], bound: r.Statement):
        """Key base if this statement's translation may be memoized, else
        None (reclassifying the lookup miss as a bypass)."""
        cache = self.engine.cache
        if cache is None or fp is None:
            return None
        if not isinstance(bound, self._CACHEABLE_KINDS) \
                or self._emulated_feature(bound) is not None:
            cache.note_bypass()
            return None
        return self._cache_key_base(fp)

    def _cache_insert(self, key_base: tuple, fp: Fingerprint,
                      params_key, target_sql: str, stmt_deps=None) -> None:
        notes = (self.tracker.current_notes()
                 if self.tracker is not None else ())
        deps = (stmt_deps.all_tables if stmt_deps is not None
                else (deps_mod.WILDCARD,))
        shareable = stmt_deps.shareable if stmt_deps is not None else False
        self.engine.cache.insert(key_base, fp, params_key, target_sql, notes,
                                 deps=deps, result_shareable=shareable,
                                 probe=self._probe_translate,
                                 tenant=self.tenant)

    def _replay_notes(self, notes) -> None:
        if self.tracker is not None:
            for feature, stage in notes:
                self.tracker.note(feature, stage)

    # -- semantic dependencies and the result cache ------------------------------------

    def _extract_deps(self, bound: r.Statement, timing):
        """Dependency footprint of *bound* (timed as ``dependency_extract``).

        Extraction failures degrade to ``None`` — callers treat that as
        "unknown deps": wildcard translation entries, no result caching,
        no data bump (the schema channel still catches DDL).
        """
        from contextlib import nullcontext

        stage = (timing.measure("dependency_extract") if timing is not None
                 else nullcontext())
        try:
            with stage, trace_mod.span("dependency_extract") as span:
                stmt_deps = deps_mod.extract(bound, self.catalog)
                if span is not None:
                    span.annotate("tables", len(stmt_deps.all_tables))
                    span.annotate("shareable", stmt_deps.shareable)
            return stmt_deps
        except Exception:
            return None

    def _note_data_write(self, bound: r.Statement, stmt_deps=None) -> None:
        """Bump the data epoch of every table *bound* writes.

        Runs after dispatch on every execution path (including script
        batching), so result-cache entries depending on the written tables
        drop immediately and their stored vectors can never match again.
        Macro/procedure calls have opaque bodies — they bump the wildcard.
        """
        if isinstance(bound, (r.Insert, r.Update, r.Delete, r.Merge)):
            if stmt_deps is None:
                stmt_deps = self._extract_deps(bound, None)
            if stmt_deps is not None and stmt_deps.write_tables:
                self.engine.shadow.bump_data(*stmt_deps.write_tables)
            elif stmt_deps is None:
                self.engine.shadow.bump_data(deps_mod.WILDCARD)
        elif isinstance(bound, (r.ExecMacro, r.CallProcedure)):
            self.engine.shadow.bump_data(deps_mod.WILDCARD)

    def _result_cache_key(self, fp: Optional[Fingerprint], params_key):
        """Result-cache key for this request, or None when result caching
        is off, the statement has no fingerprint, or a session volatile
        overlay makes results non-shareable across sessions."""
        if self.engine.result_cache is None or fp is None \
                or self.catalog.overlay_key is not None:
            return None
        return (self.engine.source, self.profile.name, fp.text,
                fp.values_key(), params_key)

    def _result_cache_replay(self, rc_key: tuple, timing) -> Optional[HQResult]:
        """Serve a materialized result with zero backend calls, or None.

        A hit replays the stored TDF packets through the normal Result
        Converter path, so the client-visible bytes match a live run; the
        cache itself re-checks the dependency version vector before
        serving.
        """
        rcache = self.engine.result_cache
        metrics = self.engine.tracing.metrics
        with timing.measure("dependency_extract"), \
                trace_mod.span("result_cache") as span:
            entry = rcache.lookup(rc_key, self.engine.shadow.version_vector)
            if span is not None:
                span.annotate("hit", entry is not None)
        if entry is None:
            if metrics is not None:
                metrics.counter("hyperq_result_cache_misses_total").inc()
            return None
        if metrics is not None:
            metrics.counter("hyperq_result_cache_hits_total").inc()
        self._replay_notes(entry.notes)
        with timing.measure("result_conversion"):
            converted = self.converter.convert(list(entry.packets),
                                               list(entry.types))
        timing.mark_first_row()
        return HQResult(
            kind="rows", columns=list(entry.columns), metas=converted.metas,
            converted=converted, rowcount=converted.rowcount, timing=timing,
            target_sql=[entry.target_sql] if entry.target_sql else [],
        )

    def _arm_result_capture(self, rc_key: tuple, dep_tables, notes):
        """Prepare to materialize the next packaged result into the result
        cache. The dependency version vector is captured *now* — before
        execution — so DML racing the execution makes the stored vector
        stale (a conservative drop on next lookup), never a stale serve."""
        capture = _ResultCapture(
            key=rc_key, deps=tuple(dep_tables),
            vector=self.engine.shadow.version_vector(dep_tables),
            notes=notes)
        self._pending_capture = capture
        return capture

    def _capturing_batches(self, capture, packets, columns, types,
                           target_sql: str, timing=None):
        """Tee the streamed TDF packets into a result-cache entry.

        Accumulation aborts (and counts a reject) the moment the running
        packet size crosses the per-entry cap, so an oversized scan never
        buffers unbounded bytes; the entry is inserted only when the
        consumer drains the stream to completion."""
        rcache = self.engine.result_cache
        collected: Optional[list[bytes]] = []
        size = 0
        for packet in packets:
            if collected is not None:
                size += len(packet)
                if size > rcache.max_entry_bytes:
                    collected = None
                    rcache.note_reject()
                else:
                    collected.append(packet)
            yield packet
        if collected is None:
            return
        notes = capture.notes
        if notes is None:
            notes = (self.tracker.current_notes()
                     if self.tracker is not None else ())
        entry = ResultEntry(
            columns=tuple(columns), types=tuple(types),
            packets=tuple(collected), notes=tuple(notes),
            deps=capture.deps, vector=capture.vector, target_sql=target_sql)
        backend_ms = timing.execution * 1e3 if timing is not None else 0.0
        if rcache.insert(capture.key, entry, tenant=self.tenant,
                         backend_ms=backend_ms):
            metrics = self.engine.tracing.metrics
            if metrics is not None:
                metrics.counter("hyperq_result_cache_inserts_total").inc()

    def _probe_translate(self, probe_sql: str) -> str:
        """Run the full pipeline over sentinel SQL, tracker-free.

        Used by the cache to validate that a translation is safe to
        parameterize; shares the session catalog so name resolution matches
        the real translation exactly. Tracing is suppressed for the same
        reason the tracker is: probes must not pollute the real request's
        span tree with sentinel rule firings.
        """
        parser, binder, transformer, serializer = self._ensure_probe_stack()
        with trace_mod.activate(None):
            bound = binder.bind(parser.parse_statement(probe_sql))
            transformer.transform(bound)
            return serializer.serialize(bound)

    def _ensure_probe_stack(self):
        """The lazily-built tracker-free pipeline (shared by cache sentinel
        probes and workload classification)."""
        if self._probe_stack is None:
            self._probe_stack = (
                TeradataParser(),
                Binder(self.catalog),
                Transformer(self.engine.profile,
                            fixpoint=self.engine.transformer_fixpoint),
                serializer_for(self.engine.profile),
            )
        return self._probe_stack

    # -- resilience ------------------------------------------------------------------

    def _resilience_event(self, event: str, detail: dict) -> None:
        """ODBC-layer observer: fold a resilience action into the engine's
        counters, the workload tracker, and the fault schedule's event log
        (so retries land next to the faults that provoked them)."""
        self.engine.resilience.note(event)
        if self.tracker is not None:
            self.tracker.note_resilience(event)
        if self.engine.faults is not None:
            self.engine.faults.record(event, **detail)

    # -- helpers shared with emulators -----------------------------------------------

    def _note(self, feature: str, stage: str = "emulator") -> None:
        if self.tracker is not None:
            self.tracker.note(feature, stage)

    def fresh_temp_name(self, prefix: str) -> str:
        self._temp_counter += 1
        return f"_HQ_{prefix}_{self._temp_counter}"

    def run_translated(self, bound: r.Statement, timing: RequestTiming) -> HQResult:
        """Transform + serialize + execute one statement on the target."""
        with timing.measure("translation"):
            with trace_mod.span("transform"):
                self.transformer.transform(bound)
            with trace_mod.span("serialize") as span:
                sql = self.serializer.serialize(bound)
                if span is not None:
                    span.annotate("bytes", len(sql))
        with timing.measure("execution"):
            odbc_result = self.odbc.execute(sql)
        return self.package_result(odbc_result, timing, [sql])

    def run_target_sql(self, sql: str, timing: RequestTiming) -> OdbcResult:
        """Execute already-serialized target SQL (emulator building block)."""
        with timing.measure("execution"):
            return self.odbc.execute(sql)

    def package_result(self, odbc_result: OdbcResult, timing: RequestTiming,
                       target_sql: list[str]) -> HQResult:
        """Set up the TDF -> source-binary conversion path on a target result.

        The returned result streams: TDF packets are pulled from the ODBC
        Server and converted chunk by chunk as the caller consumes them, so
        no layer holds more than one batch (plus the bounded Result Store,
        if the consumer buffers). Backend pull time lands in the
        ``execution`` timing stage, decode/encode in ``result_conversion``.
        """
        capture, self._pending_capture = self._pending_capture, None
        if odbc_result.kind != "rows":
            return HQResult(kind=odbc_result.kind, rowcount=odbc_result.rowcount,
                            timing=timing, target_sql=target_sql)
        packets = self._timed_batches(odbc_result, timing)
        if capture is not None and self.engine.result_cache is not None:
            packets = self._capturing_batches(
                capture, packets, odbc_result.columns,
                odbc_result.column_types,
                target_sql[0] if len(target_sql) == 1 else "",
                timing=timing)
        converted = self.converter.convert_stream(
            packets,
            odbc_result.column_types,
            timing=timing,
            on_first_chunk=timing.mark_first_row)
        return HQResult(
            kind="rows",
            columns=odbc_result.columns,
            metas=converted.metas,
            converted=converted,
            timing=timing,
            target_sql=target_sql,
        )

    @staticmethod
    def _timed_batches(odbc_result: OdbcResult, timing: RequestTiming):
        """Charge lazy backend batch pulls to the ``execution`` stage."""
        source = odbc_result.fetch_batches()
        while True:
            with timing.measure("execution"):
                packet = next(source, None)
            if packet is None:
                return
            yield packet

    def fabricate_result(self, columns: list[str], types: list[t.SQLType],
                         rows: list[tuple], timing: RequestTiming,
                         target_sql: Optional[list[str]] = None) -> HQResult:
        """Build a result entirely in the mid-tier (HELP/SHOW commands),
        still flowing through TDF + conversion so the client sees the same
        binary shape as real query results."""
        from repro import tdf as tdf_mod

        batches = list(tdf_mod.batches_of(columns, rows))
        with timing.measure("result_conversion"):
            converted = self.converter.convert(batches, types)
        return HQResult(
            kind="rows", columns=columns, metas=converted.metas,
            converted=converted, rowcount=converted.rowcount, timing=timing,
            target_sql=target_sql or [],
        )

    # -- dispatch ---------------------------------------------------------------------

    def _emulated_feature(self, bound: r.Statement) -> Optional[str]:
        """Which tracked feature (if any) forces this statement into the
        mid-tier for the current target."""
        profile = self.profile
        if isinstance(bound, r.Query) and not profile.recursive_cte \
                and _has_recursive_cte(bound.plan):
            return "recursive_query"
        if isinstance(bound, (r.CreateMacro, r.DropMacro, r.ExecMacro)) \
                and not profile.macros:
            return "macro"
        if isinstance(bound, (r.CreateProcedure, r.DropProcedure,
                              r.CallProcedure)) and not profile.stored_procedures:
            return "stored_procedure"
        if isinstance(bound, r.Merge) and not profile.merge_statement:
            return "merge_statement"
        if isinstance(bound, (r.HelpCommand, r.ShowCommand)) \
                and not profile.help_commands:
            return "help_command"
        if isinstance(bound, (r.Insert, r.Update, r.Delete)) \
                and not profile.updatable_views \
                and self.catalog.is_view(bound.table):
            return "dml_on_view"
        if isinstance(bound, r.Insert) and not profile.set_tables:
            schema = self.catalog.resolve(bound.table)
            if schema is not None and schema.set_semantics:
                return "set_table"
        if isinstance(bound, r.CreateTable) and bound.schema.volatile \
                and not profile.volatile_tables:
            return "volatile_table"
        return None

    def _dispatch(self, bound: r.Statement, ast: td_ast.TdStatement,
                  timing: RequestTiming) -> HQResult:
        from repro.core.emulation import (
            column_props, help_commands, macros, merge, procedures, recursive,
            set_tables, views,
        )

        if isinstance(bound, r.NoOp):
            return HQResult(kind="ok", timing=timing)
        if isinstance(bound, r.SetSessionParam):
            self.session_params[bound.name.upper()] = bound.value
            return HQResult(kind="ok", timing=timing)
        if isinstance(bound, r.Transaction):
            with timing.measure("execution"):
                self.odbc.execute(bound.action)
            return HQResult(kind="ok", timing=timing)
        if isinstance(bound, (r.HelpCommand, r.ShowCommand)):
            self._note("help_command")
            return help_commands.run(self, bound, timing)

        if isinstance(bound, r.Query):
            if not self.profile.recursive_cte and _has_recursive_cte(bound.plan):
                self._note("recursive_query")
                return recursive.run(self, bound, timing)
            return self.run_translated(bound, timing)

        if isinstance(bound, r.Insert):
            return self._dispatch_insert(bound, timing, column_props,
                                         set_tables, views)
        if isinstance(bound, (r.Update, r.Delete)):
            if not self.profile.updatable_views and self.catalog.is_view(bound.table):
                self._note("dml_on_view")
                return views.run_dml(self, bound, timing)
            return self.run_translated(bound, timing)

        if isinstance(bound, r.Merge):
            if self.profile.merge_statement:
                return self.run_translated(bound, timing)
            self._note("merge_statement")
            return merge.run(self, bound, timing)

        if isinstance(bound, r.CreateTable):
            return self._dispatch_create_table(bound, timing)
        if isinstance(bound, r.DropTable):
            return self._dispatch_drop_table(bound, timing)
        if isinstance(bound, r.CreateView):
            return self._dispatch_create_view(bound, timing)
        if isinstance(bound, r.DropView):
            self.engine.shadow.drop_view(bound.name)
            with timing.measure("execution"):
                self.odbc.execute(f"DROP VIEW {bound.name}")
            return HQResult(kind="ok", timing=timing)

        if isinstance(bound, r.CreateMacro):
            self._note("macro")
            self.engine.shadow.add_macro(
                MacroDef(bound.name, bound.parameters, bound.body_sql),
                replace=bound.replace)
            return HQResult(kind="ok", timing=timing)
        if isinstance(bound, r.DropMacro):
            self._note("macro")
            self.engine.shadow.drop_macro(bound.name)
            return HQResult(kind="ok", timing=timing)
        if isinstance(bound, r.ExecMacro):
            self._note("macro")
            return macros.run(self, bound, timing)

        if isinstance(bound, r.CreateProcedure):
            self._note("stored_procedure")
            self.engine.shadow.add_procedure(
                ProcedureDef(bound.name, bound.parameters, bound.body),
                replace=bound.replace)
            return HQResult(kind="ok", timing=timing)
        if isinstance(bound, r.DropProcedure):
            self._note("stored_procedure")
            self.engine.shadow.drop_procedure(bound.name)
            return HQResult(kind="ok", timing=timing)
        if isinstance(bound, r.CallProcedure):
            self._note("stored_procedure")
            return procedures.run(self, bound, timing)

        raise UnsupportedFeatureError(
            f"no execution path for {type(bound).__name__}")

    def _dispatch_insert(self, bound: r.Insert, timing: RequestTiming,
                         column_props, set_tables, views) -> HQResult:
        if not self.profile.updatable_views and self.catalog.is_view(bound.table):
            self._note("dml_on_view")
            return views.run_dml(self, bound, timing)
        schema = self.catalog.resolve(bound.table)
        if schema is not None:
            bound = column_props.fill_nonconstant_defaults(self, schema, bound)
            if schema.set_semantics and not self.profile.set_tables:
                self._note("set_table")
                return set_tables.run_insert(self, schema, bound, timing)
        return self.run_translated(bound, timing)

    def _dispatch_create_table(self, bound: r.CreateTable,
                               timing: RequestTiming) -> HQResult:
        from repro.core.emulation import column_props

        schema = bound.schema
        # PERIOD columns: split into begin/end DATE columns (Section 2.2.2).
        schema, split = column_props.split_period_columns(self, schema)
        bound.schema = schema
        if schema.set_semantics and not self.profile.set_tables:
            self._note("set_table")
        if any(col.default_sql and not _is_constant_default(col.default_sql)
               for col in schema.columns):
            self._note("column_properties")
        if schema.volatile and not self.profile.volatile_tables:
            self._note("volatile_table")
            self.catalog.add_volatile(schema)
        else:
            self.engine.shadow.add_table(schema)
        result = self.run_translated(bound, timing)
        return result

    def _dispatch_drop_table(self, bound: r.DropTable,
                             timing: RequestTiming) -> HQResult:
        if self.catalog.is_volatile(bound.name):
            self.catalog.drop_volatile(bound.name)
        else:
            self.engine.shadow.drop_table(bound.name)
        with timing.measure("execution"):
            self.odbc.execute(f"DROP TABLE {bound.name}")
        return HQResult(kind="ok", timing=timing)

    def _dispatch_create_view(self, bound: r.CreateView,
                              timing: RequestTiming) -> HQResult:
        columns = [ColumnSchema(name, col.type)
                   for name, col in zip(bound.column_names or [],
                                        bound.plan.output_columns())]
        if not columns:
            columns = [ColumnSchema(col.name, col.type)
                       for col in bound.plan.output_columns()]
        schema = TableSchema(bound.name, columns, is_view=True,
                             view_sql=bound.source_sql)
        # Store the base-table closure so dependency extraction can expand
        # references through this view (nested views flatten transitively).
        closure = deps_mod.view_closure(bound.plan, self.catalog)
        self.engine.shadow.add_view(schema, replace=bound.replace,
                                    deps=closure)
        return self.run_translated(bound, timing)


class _ResultCapture:
    """State armed before execution for result-cache materialization.

    ``notes`` may be ``None`` until translation completes; the capturing
    generator falls back to the tracker's in-flight notes in that case.
    """

    __slots__ = ("key", "deps", "vector", "notes")

    def __init__(self, key: tuple, deps: tuple, vector: tuple, notes):
        self.key = key
        self.deps = deps
        self.vector = vector
        self.notes = notes


#: ``SHOW HYPERQ ...`` observability commands, intercepted before the parser
#: (they are Hyper-Q's own, not source-dialect SQL).
_ADMIN_COMMAND_RE = re.compile(
    r"^\s*SHOW\s+HYPERQ\s+(?P<what>METRICS|TRACES|TENANTS|SLOW\s+QUERIES"
    r"|TRACE\s+(?P<id>\d+))\s*;?\s*$",
    re.IGNORECASE)

#: Cheap presence probe deciding whether a *script* might hold an admin
#: command (scripts without one keep the single-parse fast path).
_ADMIN_COMMAND_HINT_RE = re.compile(r"SHOW\s+HYPERQ", re.IGNORECASE)


def _freeze_params(parameters, named_parameters):
    """Hashable projection of explicit parameter values, or None when the
    values cannot key a cache entry (unhashable types bypass caching)."""
    try:
        positional = tuple(parameters or ())
        named = tuple(sorted((name.upper(), value)
                             for name, value in named_parameters.items()))
        hash((positional, named))
    except TypeError:
        return None
    return (positional, named)


def _has_recursive_cte(plan: RelNode) -> bool:
    for node in walk_rel(plan):
        if isinstance(node, r.With) and any(cte.recursive for cte in node.ctes):
            return True
    return False


def _is_constant_default(sql: str) -> bool:
    text = sql.strip().upper()
    if text == "NULL" or text.startswith("'"):
        return True
    try:
        float(text)
    except ValueError:
        return False
    return True
