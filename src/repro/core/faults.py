"""Deterministic fault injection for the resilience battery (Section 7.3).

The paper positions Hyper-Q as drop-in production middleware; the stress test
of Section 7.3 and the replica scale-out of Appendix B.3 only hold up if the
proxy survives backend hiccups, replica loss, and abrupt client disconnects.
This module is the plane that lets CI *deliberately* cause those events.

A :class:`FaultSchedule` scripts fault points against three injection sites:

* ``"odbc"`` — the ODBC Server, just before a statement reaches the target
  driver (:mod:`repro.odbc.api`);
* ``"executor"`` — the backend plan executor, modeling the warehouse itself
  hiccuping mid-plan (:mod:`repro.backend.executor`);
* ``"wire"`` — the Protocol Handler, per client request
  (:mod:`repro.protocol.server`);
* ``"admission"`` — the workload manager, per admission decision
  (:mod:`repro.core.workload`): :data:`ADMISSION_REJECT` forces a shed and
  :data:`SLOW_RESULT` injects *synthetic* queue age (added to the request's
  recorded wait instead of sleeping), so queue-full and deadline storms are
  scriptable without real clock pressure.

Everything is seeded and counted, never clocked: a schedule decides whether
to fire from deterministic per-site call counters and a ``random.Random``
seeded at construction, so the same seed replays the identical fault
sequence — and the identical :meth:`FaultSchedule.event_log` — on every run.
That determinism is what makes the resilience suite CI-able rather than
flaky.

The resilience machinery that *reacts* to faults also lives here:
:class:`RetryPolicy` (bounded retry, exponential backoff + seeded jitter)
and :class:`ResilienceStats` (retry/failover/timeout counters shared by the
engine, the wire server, and the scale-out fleet).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    BackendTimeoutError,
    ReplicaUnavailableError,
    TransientBackendError,
)
from repro.core import trace as trace_mod

# -- fault vocabulary ----------------------------------------------------------------

#: The target reported a retryable error (deadlock victim, connection reset).
BACKEND_TRANSIENT = "backend-transient-error"
#: The target exceeded its response deadline (also retryable).
BACKEND_TIMEOUT = "backend-timeout"
#: A whole replica stopped answering (scale-out failover territory).
REPLICA_DOWN = "replica-down"
#: The client connection drops mid-conversation, no LOGOFF.
WIRE_DISCONNECT = "wire-disconnect"
#: The result arrives, but late (exercises per-request timeouts).
SLOW_RESULT = "slow-result"
#: The workload manager sheds the request at admission (queue-full storm).
ADMISSION_REJECT = "admission-reject"
#: A gateway worker process dies abruptly mid-request (``os._exit``) — the
#: deterministic stand-in for a segfaulted/OOM-killed shard; the gateway
#: supervisor must restart it within one supervision tick with every other
#: worker's sessions unaffected.
WORKER_CRASH = "worker-crash"
#: A result-cache entry is force-evicted right after insertion (seeded
#: churn: the warm path must fall back to the backend, never error).
RESULT_CACHE_EVICT = "result-cache-evict"
#: A result-cache lookup is forced to treat its entry as version-stale and
#: drop it (the paranoid probe: correctness must not depend on the eager
#: invalidation index, only on the version-vector check).
RESULT_CACHE_STALE = "result-cache-stale"
#: The tenancy control plane rejects the request at admission as if a
#: per-tenant quota tripped (QUOTA_EXCEEDED shed with a retry-after hint),
#: regardless of the tenant's actual budget — the scripted stand-in for a
#: tenant hitting its QPS bucket or concurrency cap.
QUOTA_EXCEEDED = "quota-exceeded"

FAULT_KINDS = (BACKEND_TRANSIENT, BACKEND_TIMEOUT, REPLICA_DOWN,
               WIRE_DISCONNECT, SLOW_RESULT, ADMISSION_REJECT, WORKER_CRASH,
               RESULT_CACHE_EVICT, RESULT_CACHE_STALE, QUOTA_EXCEEDED)

#: Injection sites a spec may target. ``"gateway"`` is drawn once per
#: request inside a gateway worker process (the spec's ``replica`` field
#: selects the worker index), so a scripted :data:`WORKER_CRASH` kills a
#: chosen shard at a chosen request deterministically. ``"result_cache"``
#: is drawn per result-cache lookup/insert and only the two
#: ``RESULT_CACHE_*`` kinds act there. ``"tenancy"`` is drawn once per
#: tenant admission decision (``op`` carries ``tenant:class``) and only
#: :data:`QUOTA_EXCEEDED` acts there.
SITES = ("odbc", "executor", "wire", "admission", "gateway", "result_cache",
         "tenancy")


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault point.

    A spec fires at a *site* when the site's call counter satisfies any of
    the triggers: an explicit 1-based index in ``at``, a period ``every``,
    a window ``[after, until]`` (``until=0`` means forever — the shape of a
    replica that stays dead), or a seeded coin flip ``probability``.
    ``times`` bounds total firings (-1 = unlimited); ``match`` restricts to
    statements containing a substring; ``replica`` restricts to one replica
    of a scaled fleet (-1 = any); ``delay`` is the stall, in seconds, for
    :data:`SLOW_RESULT` faults.
    """

    kind: str
    site: str
    at: tuple[int, ...] = ()
    every: int = 0
    after: int = 0
    until: int = 0
    probability: float = 0.0
    times: int = -1
    match: str = ""
    replica: int = -1
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}")


@dataclass(frozen=True)
class Fault:
    """A fault the schedule decided to fire on the current call."""

    kind: str
    site: str
    seq: int
    replica: Optional[int] = None
    delay: float = 0.0


class FaultSchedule:
    """A seeded, scripted fault plan plus the event log it produces.

    The log records every injected fault *and* every resilience action taken
    in response (retries, failovers, quarantines, write replays), each as a
    deterministic text line — no timestamps, no object ids — so two
    single-threaded runs from the same seed compare byte-identical.
    """

    def __init__(self, seed: int = 0, specs: Optional[list[FaultSpec]] = None,
                 name: str = "custom"):
        self.seed = seed
        self.name = name
        self.specs = list(specs or ())
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, Optional[int]], int] = {}
        self._firings: dict[int, int] = {}
        self._events: list[str] = []

    # -- scripting -------------------------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        self.specs.append(spec)
        return self

    # -- the injection-site entry point ----------------------------------------------

    def draw(self, site: str, op: str = "",
             replica: Optional[int] = None) -> Optional[Fault]:
        """Advance the (site, replica) call counter and return the fault to
        fire on this call, if any. At most one spec fires per call (first
        match in script order wins)."""
        with self._lock:
            key = (site, replica)
            seq = self._counters.get(key, 0) + 1
            self._counters[key] = seq
            fired: Optional[Fault] = None
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.replica >= 0 and spec.replica != replica:
                    continue
                # A probability spec consumes exactly one rng draw per
                # eligible call whether or not it fires — and whether or not
                # an earlier spec already fired — keeping the rng stream a
                # pure function of the call sequence.
                coin = (self._rng.random() < spec.probability
                        if spec.probability > 0 else False)
                if fired is not None:
                    continue
                if spec.match and spec.match.upper() not in op.upper():
                    continue
                if spec.times >= 0 and self._firings.get(index, 0) >= spec.times:
                    continue
                due = coin
                if spec.at and seq in spec.at:
                    due = True
                if spec.every and seq % spec.every == 0:
                    due = True
                if spec.after and seq >= spec.after \
                        and (spec.until == 0 or seq <= spec.until):
                    due = True
                if not due:
                    continue
                self._firings[index] = self._firings.get(index, 0) + 1
                fired = Fault(spec.kind, site, seq, replica, spec.delay)
                self._events.append(_event_line(
                    "inject", kind=spec.kind, site=site, seq=seq,
                    replica=replica))
        if fired is not None:
            trace_mod.add_event("fault_injected", kind=fired.kind,
                                site=site, seq=fired.seq, replica=replica)
        return fired

    # -- the resilience-machinery entry point ----------------------------------------

    def record(self, action: str, **detail) -> None:
        """Log a resilience action (retry, failover, quarantine, replay...)
        so it lands in the same deterministic event stream as the faults
        that provoked it. The active trace span (if any) gets the same
        event, so resilience actions show up in the request's span tree."""
        with self._lock:
            self._events.append(_event_line(action, **detail))
        trace_mod.add_event(action, **detail)

    # -- inspection ------------------------------------------------------------------

    def event_log(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._events)

    def event_log_bytes(self) -> bytes:
        """The log as one byte string — the unit of the determinism check."""
        return "\n".join(self.event_log()).encode("utf-8")

    def injected_count(self) -> int:
        with self._lock:
            return sum(self._firings.values())


def _event_line(action: str, **detail) -> str:
    parts = [action]
    for key in sorted(detail):
        value = detail[key]
        if value is None:
            continue
        parts.append(f"{key}={value}")
    return " ".join(parts)


def apply_fault(fault: Optional[Fault]) -> Optional[Fault]:
    """Standard behavior of a drawn fault at a backend-facing site.

    Error kinds raise their exception; :data:`SLOW_RESULT` stalls in place.
    :data:`WIRE_DISCONNECT` is returned unchanged — only the wire server can
    act on it (by dropping the socket).
    """
    if fault is None:
        return None
    if fault.kind == BACKEND_TRANSIENT:
        raise TransientBackendError(
            f"injected transient backend error ({fault.site} call #{fault.seq})")
    if fault.kind == BACKEND_TIMEOUT:
        raise BackendTimeoutError(
            f"injected backend timeout ({fault.site} call #{fault.seq})")
    if fault.kind == REPLICA_DOWN:
        raise ReplicaUnavailableError(
            f"replica {fault.replica} is down "
            f"({fault.site} call #{fault.seq})")
    if fault.kind == SLOW_RESULT:
        if fault.delay > 0:
            time.sleep(fault.delay)
        return None
    return fault


# -- retry policy --------------------------------------------------------------------


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    ``max_attempts`` counts executions, not re-executions: 4 means one try
    plus up to three retries. Jitter comes from the policy's own seeded rng,
    so sleep durations are reproducible too (they never enter the event log,
    which keeps the log independent of scheduler timing)."""

    max_attempts: int = 4
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._rng = random.Random(self.seed)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        raw = self.base_delay * (self.multiplier ** (attempt - 1))
        capped = min(self.max_delay, raw)
        return capped * (1.0 + self.jitter * self._rng.random())


#: A policy that never retries (for tests that want the raw error).
NO_RETRY = RetryPolicy(max_attempts=1)


# -- resilience counters -------------------------------------------------------------


class ResilienceStats:
    """Thread-safe counters for what the resilience machinery actually did.

    The acceptance bar for the fault battery reads straight off these:
    transient errors retried to success means ``retries > 0`` with zero
    client-visible errors; replica loss handled means ``failovers > 0``."""

    FIELDS = ("retries", "retry_exhausted", "timeouts", "failovers",
              "quarantines", "recoveries", "replayed_writes",
              "wire_disconnects", "queued_writes")

    #: Event names (as logged by the machinery) -> counter field.
    EVENT_FIELDS = {
        "retry": "retries", "retry_exhausted": "retry_exhausted",
        "timeout": "timeouts", "failover": "failovers",
        "quarantine": "quarantines", "recovery": "recoveries",
        "replayed_write": "replayed_writes",
        "wire_disconnect": "wire_disconnects",
        "queued_write": "queued_writes",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self.FIELDS}

    def note(self, event: str, count: int = 1) -> None:
        field_name = self.EVENT_FIELDS.get(event, event)
        with self._lock:
            if field_name not in self._counts:
                raise KeyError(f"unknown resilience event {event!r}")
            self._counts[field_name] += count

    def __getattr__(self, name: str) -> int:
        counts = self.__dict__.get("_counts")
        if counts is not None and name in counts:
            with self.__dict__["_lock"]:
                return counts[name]
        raise AttributeError(name)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResilienceStats({self.snapshot()})"


# -- named schedules (the CI fault matrix) -------------------------------------------


def named_schedule(name: str, seed: int = 0) -> FaultSchedule:
    """The three schedules the CI fault-matrix job runs.

    * ``transient-errors`` — every 3rd target statement fails transiently,
      every 7th times out; both must be retried to success with zero
      client-visible errors.
    * ``replica-loss`` — replica 1 stops answering from its 3rd through its
      9th target call, then recovers; reads must fail over, queued writes
      must replay.
    * ``disconnect-storm`` — every 2nd wire request the client connection
      is cut before a response, plus a periodic slow result; sessions must
      be reclaimed and survivors unaffected.
    * ``admission-storm`` — every 3rd admission decision is shed outright,
      every 5th arrives with 30s of synthetic queue age (an instant
      deadline miss for any deadline-bearing class), and replica 1 drops
      out for a window; the workload manager must reject gracefully, keep
      sessions alive, and fail reads over — with a byte-reproducible log.
    * ``result-cache-churn`` — every 4th result-cache operation evicts the
      just-touched entry, every 7th forces a stale-version drop; answers
      must stay byte-identical to an uncached run (misses re-execute).
    * ``tenant-quota-storm`` — every 3rd tenant admission decision is shed
      as QUOTA_EXCEEDED; sessions must survive, the shed must carry a
      retry-after hint, and untouched tenants must be unaffected.
    """
    if name == "transient-errors":
        return FaultSchedule(seed, [
            FaultSpec(BACKEND_TRANSIENT, "odbc", every=3),
            FaultSpec(BACKEND_TIMEOUT, "odbc", every=7),
        ], name=name)
    if name == "replica-loss":
        return FaultSchedule(seed, [
            FaultSpec(REPLICA_DOWN, "odbc", replica=1, after=3, until=9),
        ], name=name)
    if name == "disconnect-storm":
        return FaultSchedule(seed, [
            FaultSpec(WIRE_DISCONNECT, "wire", every=2),
            FaultSpec(SLOW_RESULT, "wire", every=5, delay=0.005),
        ], name=name)
    if name == "admission-storm":
        return FaultSchedule(seed, [
            FaultSpec(ADMISSION_REJECT, "admission", every=3),
            FaultSpec(SLOW_RESULT, "admission", every=5, delay=30.0),
            FaultSpec(REPLICA_DOWN, "odbc", replica=1, after=4, until=10),
        ], name=name)
    if name == "result-cache-churn":
        return FaultSchedule(seed, [
            FaultSpec(RESULT_CACHE_EVICT, "result_cache", every=4),
            FaultSpec(RESULT_CACHE_STALE, "result_cache", every=7),
        ], name=name)
    if name == "tenant-quota-storm":
        return FaultSchedule(seed, [
            FaultSpec(QUOTA_EXCEEDED, "tenancy", every=3),
        ], name=name)
    raise ValueError(f"unknown fault schedule {name!r}")


NAMED_SCHEDULES = ("transient-errors", "replica-loss", "disconnect-storm",
                   "admission-storm", "result-cache-churn",
                   "tenant-quota-storm")
