"""Multi-process sharded gateway: process-per-core Hyper-Q workers.

A single Python process tops out one core: translation is pure CPU work
and the GIL serializes it no matter how many wire threads the server
runs. The gateway breaks that ceiling the way the real appliance does —
one **acceptor/supervisor** process owns the listening socket and routes
each accepted session to one of *N* forked **worker** processes over a
Unix-domain handoff socket (``SCM_RIGHTS`` file-descriptor passing, so
the client's TCP socket is served directly by the worker — no proxying,
no double copy). Each worker runs the ordinary engine + wire stack
(:class:`repro.protocol.server.HyperQServer`) unchanged; the only
difference is that sockets arrive by handoff instead of ``accept()``.

Routing is a consistent-hash ring over the client address, so a given
client endpoint lands on the same worker while the fleet is stable, and
only ``1/N`` of the keyspace moves when a worker dies. Dead ring nodes
are skipped to the next live worker; a supervision loop restarts crashed
workers within one tick.

Two pieces of cross-process glue keep the fleet coherent:

* **Shared translation-cache tier** — a cache-service process holding an
  L2 of memoized translations keyed exactly like the per-worker L1
  (:mod:`repro.core.cache` fingerprint + catalog-version keys). Workers
  keep their lock-free L1 in front; only on an L1 miss do they consult
  the tier, so one worker's translation warms the whole fleet without
  putting an RPC on the hot path. Only overlay-free entries are shared
  (session-overlay uids are process-local and would collide).
* **Fleet-wide observability** — every worker answers a control RPC
  (metrics state, trace index, one trace, slow queries) and the
  supervisor aggregates: ``SHOW HYPERQ METRICS`` on *any* session
  reports fleet-wide numbers (mergeable histogram states, summed
  counters) and ``SHOW HYPERQ TRACE <id>`` finds the trace in whichever
  worker recorded it (trace-id sequences are interleaved per worker, so
  ids are unique fleet-wide).

All control sockets live in a private ``tempfile.mkdtemp`` directory and
speak length-prefixed pickle — internal, same-user, same-machine IPC
only, never exposed on the network.

Platform: Linux (``fork`` start method + ``socket.send_fds``). The
supervisor falls back to ``spawn`` where ``fork`` is unavailable; all
worker arguments are picklable.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import os
import pickle
import shutil
import signal
import socket
import struct
import tempfile
import threading
import time

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.cache import CacheEntry, CacheTier
from repro.core.deps import WILDCARD
from repro.core.faults import FaultSchedule, FaultSpec
from repro.core.trace import MetricsRegistry, aggregate_metrics, render_trace
from repro.errors import HyperQError


class GatewayError(HyperQError):
    """A gateway control-plane failure (RPC, spawn, or routing)."""


# -- length-prefixed pickle framing ---------------------------------------------------
#
# The gateway's internal RPC: 4-byte big-endian length + pickle. Used on
# Unix-domain sockets inside a mkdtemp'd directory only (trusted,
# same-user IPC); never on the TCP wire.

_LEN = struct.Struct(">I")


def _send_obj(sock: socket.socket, obj) -> None:
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    buf = bytearray()
    while len(buf) < size:
        chunk = sock.recv(size - len(buf))
        if not chunk:
            raise EOFError("peer closed")
        buf += chunk
    return bytes(buf)


def _recv_obj(sock: socket.socket):
    (length,) = _LEN.unpack(_recv_exact(sock, 4))
    return pickle.loads(_recv_exact(sock, length))


def _serve_rpc_conn(conn: socket.socket, handler) -> None:
    try:
        while True:
            request = _recv_obj(conn)
            try:
                reply = ("ok", handler(request))
            except Exception as error:  # noqa: BLE001 — report to caller
                reply = ("err", f"{type(error).__name__}: {error}")
            _send_obj(conn, reply)
    except (OSError, EOFError):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _serve_rpc(listener: socket.socket, handler) -> None:
    """Accept loop: one daemon thread per RPC connection. Returns when the
    listener is closed."""
    while True:
        try:
            conn, _ = listener.accept()
        except OSError:
            return
        threading.Thread(target=_serve_rpc_conn, args=(conn, handler),
                         name="hq-gw-rpc", daemon=True).start()


class _RpcClient:
    """One persistent RPC connection, reconnecting once per call on error.

    Thread-safe: calls serialize on an internal lock (request/reply
    framing cannot interleave)."""

    def __init__(self, path: str, timeout: float = 10.0):
        self._path = path
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def _connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        sock.connect(self._path)
        self._sock = sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def call(self, *request):
        with self._lock:
            last: Optional[BaseException] = None
            for _attempt in range(2):
                try:
                    if self._sock is None:
                        self._connect()
                    _send_obj(self._sock, request)
                    status, value = _recv_obj(self._sock)
                except (OSError, EOFError) as error:
                    last = error
                    self._drop()
                    continue
                if status == "err":
                    raise GatewayError(value)
                return value
            raise GatewayError(f"rpc to {self._path} failed: {last!r}")

    def wait_ready(self, timeout: float) -> None:
        """Poll ``ping`` until the peer answers (bounds process startup)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.call("ping")
                return
            except GatewayError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)

    def fileno(self) -> Optional[int]:
        return self._sock.fileno() if self._sock is not None else None

    def close(self) -> None:
        with self._lock:
            self._drop()


def _bind_unix(path: str, backlog: int = 16) -> socket.socket:
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(backlog)
    return listener


def _connect_unix_retry(path: str, timeout: float) -> socket.socket:
    deadline = time.monotonic() + timeout
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError as error:
            sock.close()
            if time.monotonic() >= deadline:
                raise GatewayError(
                    f"worker socket {path} never came up: {error}") from error
            time.sleep(0.02)


def _ceil_div(value: int, parts: int) -> int:
    return -(-value // parts)


# -- socket paths ---------------------------------------------------------------------
#
# Handoff/control paths carry a generation suffix so a restarted worker
# binds a fresh path — the supervisor can never accidentally connect to
# the dead predecessor's stale socket file.


def _handoff_path(run_dir: str, index: int, generation: int) -> str:
    return os.path.join(run_dir, f"handoff-{index}-{generation}.sock")


def _control_path(run_dir: str, index: int, generation: int) -> str:
    return os.path.join(run_dir, f"control-{index}-{generation}.sock")


def _fleet_path(run_dir: str) -> str:
    return os.path.join(run_dir, "fleet.sock")


def _cache_path(run_dir: str) -> str:
    return os.path.join(run_dir, "cache.sock")


# -- the shared translation-cache tier ------------------------------------------------


class _TierStore:
    """Byte-capped LRU of :class:`CacheEntry` for the cache service.

    Mirrors the L1's semantic invalidation: every entry carries its
    dependency table set and an inverted table→keys index drops exactly
    the entries a DDL epoch bump affects, fleet-wide."""

    def __init__(self, max_bytes: int):
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self._dep_index: dict[str, set] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.invalidated = 0

    def get(self, key: tuple) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, entry: CacheEntry) -> None:
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._bytes -= previous.size
            self._index_remove(key, previous)
        self._entries[key] = entry
        self._bytes += entry.size
        self._index_add(key, entry)
        self.inserts += 1
        while self._bytes > self.max_bytes and self._entries:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.size
            self._index_remove(evicted_key, evicted)
            self.evictions += 1

    def invalidate_tables(self, names) -> int:
        touched = {str(name).upper() for name in names}
        if WILDCARD in touched:
            stale = set(self._entries)
        else:
            stale = set()
            for name in touched | {WILDCARD}:
                stale |= self._dep_index.get(name, set())
        for key in stale:
            entry = self._entries.pop(key)
            self._bytes -= entry.size
            self._index_remove(key, entry)
        self.invalidated += len(stale)
        return len(stale)

    def _index_add(self, key: tuple, entry: CacheEntry) -> None:
        for name in entry.deps:
            self._dep_index.setdefault(name, set()).add(key)

    def _index_remove(self, key: tuple, entry: CacheEntry) -> None:
        for name in entry.deps:
            keys = self._dep_index.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._dep_index[name]

    def stats(self) -> dict:
        return {"entries": len(self._entries), "bytes": self._bytes,
                "hits": self.hits, "misses": self.misses,
                "inserts": self.inserts, "evictions": self.evictions,
                "invalidated": self.invalidated}


def _cache_service_main(path: str, max_bytes: int,
                        close_fds: tuple[int, ...]) -> None:
    """Entry point of the cache-service process."""
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    store = _TierStore(max_bytes)
    lock = threading.Lock()

    def handle(request):
        op = request[0]
        if op == "ping":
            return "pong"
        if op == "shutdown":
            threading.Timer(0.05, lambda: os._exit(0)).start()
            return "bye"
        with lock:
            if op == "get":
                return store.get(request[1])
            if op == "put":
                store.put(request[1], request[2])
                return True
            if op == "invalidate_tables":
                return store.invalidate_tables(request[1])
            if op == "stats":
                return store.stats()
        raise GatewayError(f"unknown cache op {op!r}")

    _serve_rpc(_bind_unix(path, backlog=64), handle)


class CacheServiceClient(CacheTier):
    """Worker-side :class:`CacheTier` speaking to the cache service.

    Deliberately short-timeout: a wedged cache service must degrade the
    fleet to per-worker L1s, not stall translation. The
    :class:`~repro.core.cache.TranslationCache` treats any exception from
    the tier as a miss."""

    def __init__(self, path: str, timeout: float = 2.0):
        self._rpc = _RpcClient(path, timeout=timeout)

    def get(self, key: tuple) -> Optional[CacheEntry]:
        return self._rpc.call("get", key)

    def put(self, key: tuple, entry: CacheEntry) -> None:
        self._rpc.call("put", key, entry)

    def invalidate_tables(self, names) -> None:
        self._rpc.call("invalidate_tables", tuple(names))

    def stats(self) -> dict:
        return self._rpc.call("stats")

    def close(self) -> None:
        self._rpc.close()


# -- consistent-hash session routing --------------------------------------------------


class _HashRing:
    """Consistent-hash ring with virtual nodes over worker indexes.

    ``route`` walks clockwise from the key's point to the first vnode of
    a *live* member, so a dead worker's arc spills onto its successors
    without remapping the rest of the keyspace."""

    def __init__(self, members: list[int], vnodes: int = 64):
        points = [(self._hash(f"{member}:{vnode}"), member)
                  for member in members for vnode in range(vnodes)]
        points.sort()
        self._ring = points
        self._points = [point for point, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.md5(key.encode("utf-8")).digest()[:8], "big")

    def route(self, key: str, alive: set[int]) -> Optional[int]:
        if not alive or not self._ring:
            return None
        start = bisect.bisect(self._points, self._hash(key))
        size = len(self._ring)
        for step in range(size):
            _, member = self._ring[(start + step) % size]
            if member in alive:
                return member
        return None


# -- configuration --------------------------------------------------------------------


@dataclass(frozen=True)
class GatewayConfig:
    """Everything a worker needs to rebuild the engine — picklable, so
    restarts and ``spawn`` fallback both work from the same value.

    ``max_connections`` is the fleet-wide bound; each worker enforces a
    ceiling share. ``workload`` (a ``WorkloadConfig``) is likewise split
    per worker via :meth:`~repro.core.workload.WorkloadConfig.per_worker`
    so fleet-wide admission limits hold. ``setup_sql`` runs once per
    worker at boot against its in-process backend — each worker owns an
    identically-initialized backend (the reproduction's stand-in for the
    one shared cloud warehouse all gateway processes would really point
    at), so cross-worker data visibility of post-boot DML is out of
    scope here.
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    target: str = "hyperion"
    source: str = "teradata"
    cache_size: int = 32 * 1024 * 1024
    shared_cache: bool = True
    shared_cache_bytes: int = 32 * 1024 * 1024
    #: Per-worker semantic result cache (0 disables). Kept per worker —
    #: results are large and replaying them through a shared-tier RPC
    #: would cost more than re-executing most statements.
    result_cache_bytes: int = 0
    setup_sql: str = ""
    request_timeout: Optional[float] = None
    max_connections: int = 64
    workload: Optional[object] = None  # WorkloadConfig
    #: Multi-tenant control plane (a ``TenancyConfig``): split per worker
    #: like the workload config so fleet-wide quotas hold, and wired into
    #: each worker's WorkloadManager, engine, and caches.
    tenancy: Optional[object] = None  # TenancyConfig
    tracing: bool = True
    fault_specs: tuple[FaultSpec, ...] = ()
    fault_seed: int = 0
    supervision_interval: float = 0.2
    route_timeout: float = 5.0
    start_timeout: float = 30.0
    engine_options: dict = field(default_factory=dict)
    #: Wire path each worker serves its sessions on: ``"threaded"`` (one
    #: connection-pool thread per session) or ``"async"`` (all of a
    #: worker's sessions multiplexed on one event loop —
    #: :class:`repro.protocol.aio_server.AioHyperQServer`). The default
    #: follows ``HQ_WIRE`` so CI's wire-matrix job flips gateway tests
    #: without touching them; passing ``wire=`` explicitly always wins.
    wire: str = field(default_factory=lambda: (
        "async" if os.environ.get("HQ_WIRE", "").lower() == "async"
        else "threaded"))

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("gateway needs at least one worker")
        if self.wire not in ("threaded", "async"):
            raise ValueError(f"unknown wire path {self.wire!r}")


# -- the worker process ---------------------------------------------------------------


class _FleetClient:
    """Worker-side handle on the supervisor's fleet-aggregation RPC.

    Installed as ``engine.fleet`` so ``SHOW HYPERQ METRICS/TRACES/...``
    report fleet-wide (see ``HyperQSession._run_admin``)."""

    def __init__(self, path: str):
        self._rpc = _RpcClient(path, timeout=10.0)

    def metrics_text(self) -> str:
        return self._rpc.call("metrics_text")

    def trace_index(self) -> list[str]:
        return self._rpc.call("trace_index")

    def find_trace(self, trace_id: int) -> Optional[list[str]]:
        return self._rpc.call("find_trace", trace_id)

    def slow_queries(self) -> list[dict]:
        return self._rpc.call("slow_queries")

    def tenants(self) -> tuple[dict, int]:
        return self._rpc.call("tenants")


def _trace_index_lines(hub) -> list[str]:
    lines = []
    for trace_id in hub.trace_ids():
        trace = hub.get_trace(trace_id)
        if trace is not None:
            lines.append(f"{trace_id}\t{trace.spans[0].outcome}\t"
                         f"{trace.duration * 1e3:.3f}ms\t{trace.sql[:80]}")
    return lines


def _worker_main(config: GatewayConfig, index: int, generation: int,
                 run_dir: str, close_fds: tuple[int, ...]) -> None:
    """Entry point of one gateway worker process."""
    # Forked children inherit the supervisor's listening/control fds;
    # close them so the TCP port and dead workers' sockets don't stay
    # half-alive in every worker.
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass

    from repro.core.engine import HyperQ
    from repro.core.workload import WorkloadManager
    from repro.protocol.server import HyperQServer

    tier = CacheServiceClient(_cache_path(run_dir)) \
        if config.shared_cache else None
    faults = FaultSchedule(config.fault_seed, list(config.fault_specs),
                           name="gateway") if config.fault_specs else None
    tenancy = None
    if config.tenancy is not None:
        from repro.core.tenancy import TenantRegistry
        tenancy = TenantRegistry(config.tenancy.per_worker(config.workers),
                                 faults=faults)
    workload = None
    if config.workload is not None:
        workload = WorkloadManager(config.workload.per_worker(config.workers),
                                   tenancy=tenancy)
    engine = HyperQ(target=config.target, source=config.source,
                    cache_size=config.cache_size, cache_tier=tier,
                    faults=faults, workload=workload, tracing=config.tracing,
                    worker_index=index, fleet_size=config.workers,
                    result_cache_bytes=config.result_cache_bytes,
                    tenancy=tenancy,
                    **dict(config.engine_options))
    if config.setup_sql:
        boot = engine.create_session()
        boot.execute_script(config.setup_sql)
    engine.fleet = _FleetClient(_fleet_path(run_dir))

    worker_cap = max(1, _ceil_div(config.max_connections, config.workers))
    if config.wire == "async":
        from repro.protocol.aio_server import AioHyperQServer
        server = AioHyperQServer(
            engine, request_timeout=config.request_timeout,
            max_connections=worker_cap, bind=False)
        # Unbound: the event loop only serves sockets handed over through
        # process_request(), but it must be running before the first one.
        server.start()
    else:
        server = HyperQServer(
            engine, request_timeout=config.request_timeout,
            max_connections=worker_cap, bind=False)

    stop = threading.Event()
    draining = threading.Event()
    handoff_listener = _bind_unix(_handoff_path(run_dir, index, generation))
    #: The live supervisor handoff connection, if any — drain must shut it
    #: down to unblock the main thread's recv_fds().
    conn_holder: list = []

    def begin_drain() -> None:
        """Stop taking new work; let every in-flight request finish.

        Idempotent. Triggered by SIGTERM (supervisor-driven graceful
        shutdown) or the ``drain`` control RPC. The main thread notices
        the closed handoff sockets, waits for the wire server to drain,
        and exits cleanly — no reply in flight is ever cut."""
        if draining.is_set():
            return
        draining.set()
        stop.set()
        server.begin_drain()
        try:
            handoff_listener.close()
        except OSError:
            pass
        for conn in list(conn_holder):
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    signal.signal(signal.SIGTERM, lambda signum, frame: begin_drain())

    def handle_control(request):
        op = request[0]
        hub = engine.tracing
        if op == "ping":
            return "pong"
        if op == "metrics_state":
            return hub.metrics.dump_state()
        if op == "trace_index":
            return _trace_index_lines(hub)
        if op == "get_trace":
            trace = hub.get_trace(request[1])
            return render_trace(trace) if trace is not None else None
        if op == "slow_queries":
            return list(hub.slow_queries)
        if op == "cache_stats":
            return engine.cache.stats().as_dict() \
                if engine.cache is not None else None
        if op == "result_cache_stats":
            stats = engine.result_cache_stats()
            return stats.as_dict() if stats is not None else None
        if op == "tenant_stats":
            if engine.tenancy is None:
                return None
            from repro.core.tenancy import tenant_report
            return tenant_report(engine)
        if op == "drain":
            begin_drain()
            return "draining"
        if op == "shutdown":
            stop.set()
            try:
                handoff_listener.close()
            except OSError:
                pass
            return "bye"
        raise GatewayError(f"unknown control op {op!r}")

    control_listener = _bind_unix(_control_path(run_dir, index, generation))
    threading.Thread(target=_serve_rpc,
                     args=(control_listener, handle_control),
                     name="hq-gw-control", daemon=True).start()

    _worker_handoff_loop(handoff_listener, server, stop, conn_holder)
    if draining.is_set():
        # Graceful path: every registered connection either finished its
        # in-flight request or was idle and is now closed. Wait for the
        # stragglers to land before tearing the server down.
        deadline = time.monotonic() + 30.0
        while not server.drained() and time.monotonic() < deadline:
            time.sleep(0.01)
    server.server_close()
    # Daemon threads (control RPC, pool) may still be parked; exit hard so
    # the process never outlives its supervisor's join.
    os._exit(0)


def _worker_handoff_loop(listener: socket.socket, server, stop,
                         conn_holder: Optional[list] = None) -> None:
    """Receive handed-off client sockets and serve them on the worker's
    connection pool. Runs on the worker's main thread until shutdown."""
    while not stop.is_set():
        try:
            supervisor, _ = listener.accept()
        except OSError:
            return
        if conn_holder is not None:
            conn_holder.append(supervisor)
        try:
            while not stop.is_set():
                data, fds, _, _ = socket.recv_fds(supervisor, 16, 4)
                if not data and not fds:
                    break  # supervisor hung up
                for fd in fds:
                    conn = socket.socket(fileno=fd)
                    try:
                        peer = conn.getpeername()
                    except OSError:
                        peer = ("?", 0)
                    server.process_request(conn, peer)
        except OSError:
            continue
        finally:
            if conn_holder is not None:
                try:
                    conn_holder.remove(supervisor)
                except ValueError:
                    pass
            try:
                supervisor.close()
            except OSError:
                pass


# -- the supervisor -------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    index: int
    generation: int
    process: "multiprocessing.process.BaseProcess"
    handoff: socket.socket
    control: _RpcClient


class Gateway:
    """Acceptor/supervisor: owns the TCP port, routes sessions, restarts
    dead workers, aggregates fleet observability.

    Usage::

        with Gateway(GatewayConfig(workers=4, setup_sql=ddl)) as address:
            client = TdClient(*address)
    """

    def __init__(self, config: GatewayConfig):
        self.config = config
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError:  # non-Unix fallback; config is picklable
            self._mp = multiprocessing.get_context("spawn")
        self._ring = _HashRing(list(range(config.workers)))
        self._lock = threading.Lock()
        self._workers: dict[int, _WorkerHandle] = {}
        self._alive: set[int] = set()
        self._generation: dict[int, int] = {}
        self._restarts: dict[int, int] = {
            index: 0 for index in range(config.workers)}
        self._stopping = threading.Event()
        self._wake_monitor = threading.Event()
        self._metrics = MetricsRegistry()
        self._run_dir: Optional[str] = None
        self._listen: Optional[socket.socket] = None
        self._fleet_listener: Optional[socket.socket] = None
        self._cache_process = None
        self._cache_client: Optional[_RpcClient] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._monitor_thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        config = self.config
        self._run_dir = tempfile.mkdtemp(prefix="hq-gateway-")
        if config.shared_cache:
            path = _cache_path(self._run_dir)
            self._cache_process = self._mp.Process(
                target=_cache_service_main,
                args=(path, config.shared_cache_bytes,
                      tuple(self._inherited_fds())),
                name="hq-gw-cache", daemon=True)
            self._cache_process.start()
            self._cache_client = _RpcClient(path, timeout=5.0)
            self._cache_client.wait_ready(config.start_timeout)
        self._fleet_listener = _bind_unix(_fleet_path(self._run_dir),
                                          backlog=config.workers + 4)
        threading.Thread(target=_serve_rpc,
                         args=(self._fleet_listener, self._fleet_handler),
                         name="hq-gw-fleet", daemon=True).start()
        for index in range(config.workers):
            self._spawn_worker(index, generation=0)
        self._metrics.gauge("gateway_workers").set(config.workers)
        self._listen = socket.create_server(
            (config.host, config.port), backlog=128, reuse_port=False)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="hq-gw-accept", daemon=True)
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="hq-gw-monitor", daemon=True)
        self._monitor_thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._listen is None:
            raise GatewayError("gateway not started")
        host, port = self._listen.getsockname()[:2]
        return str(host), int(port)

    def stop(self) -> None:
        self._stopping.set()
        self._wake_monitor.set()
        if self._listen is not None:
            try:
                self._listen.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5)
        with self._lock:
            handles = list(self._workers.values())
            self._workers.clear()
            self._alive.clear()
        for handle in handles:
            try:
                handle.control.call("shutdown")
            except GatewayError:
                pass
            try:
                handle.handoff.close()
            except OSError:
                pass
        for handle in handles:
            handle.process.join(timeout=2)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2)
            handle.control.close()
        if self._cache_client is not None:
            try:
                self._cache_client.call("shutdown")
            except GatewayError:
                pass
            self._cache_client.close()
        if self._cache_process is not None:
            self._cache_process.join(timeout=2)
            if self._cache_process.is_alive():
                self._cache_process.terminate()
                self._cache_process.join(timeout=2)
        if self._fleet_listener is not None:
            try:
                self._fleet_listener.close()
            except OSError:
                pass
        if self._run_dir is not None:
            shutil.rmtree(self._run_dir, ignore_errors=True)

    def drain(self, deadline: float = 10.0) -> dict[int, str]:
        """Graceful fleet shutdown: SIGTERM every worker, let in-flight
        requests finish, SIGKILL whoever overruns *deadline* seconds.

        The accept loop stops first (no new sessions), then each worker's
        SIGTERM handler drains its wire server — idle connections close
        immediately, busy ones ship their current reply — and the process
        exits on its own. Returns ``{worker_index: "drained" | "killed"}``.
        """
        self._stopping.set()
        self._wake_monitor.set()
        if self._listen is not None:
            try:
                self._listen.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5)
        with self._lock:
            handles = list(self._workers.values())
            self._workers.clear()
            self._alive.clear()
        for handle in handles:
            pid = handle.process.pid
            if pid is not None and handle.process.is_alive():
                try:
                    os.kill(pid, signal.SIGTERM)
                except OSError:
                    pass
        outcomes: dict[int, str] = {}
        until = time.monotonic() + deadline
        for handle in handles:
            handle.process.join(timeout=max(0.0, until - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=2)
                outcomes[handle.index] = "killed"
            else:
                outcomes[handle.index] = "drained"
            handle.control.close()
            try:
                handle.handoff.close()
            except OSError:
                pass
        # Remaining shared infrastructure (cache service, fleet RPC, run
        # dir) tears down on the normal path; workers are already gone.
        self.stop()
        return outcomes

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- worker management -----------------------------------------------------------

    def _inherited_fds(self) -> list[int]:
        """Supervisor-side fds a forked child must close immediately: the
        TCP listener (else the port survives worker crashes) and every
        sibling's handoff/control sockets."""
        fds = []
        if self._listen is not None:
            fds.append(self._listen.fileno())
        if self._fleet_listener is not None:
            fds.append(self._fleet_listener.fileno())
        if self._cache_client is not None:
            fd = self._cache_client.fileno()
            if fd is not None:
                fds.append(fd)
        for handle in self._workers.values():
            try:
                fds.append(handle.handoff.fileno())
            except OSError:
                pass
            fd = handle.control.fileno()
            if fd is not None:
                fds.append(fd)
        return fds

    def _spawn_worker(self, index: int, generation: int) -> None:
        config = self.config
        with self._lock:
            close_fds = tuple(self._inherited_fds())
        process = self._mp.Process(
            target=_worker_main,
            args=(config, index, generation, self._run_dir, close_fds),
            name=f"hq-gw-worker-{index}", daemon=True)
        process.start()
        handoff = _connect_unix_retry(
            _handoff_path(self._run_dir, index, generation),
            timeout=config.start_timeout)
        control = _RpcClient(
            _control_path(self._run_dir, index, generation), timeout=10.0)
        try:
            control.wait_ready(config.start_timeout)
        except GatewayError:
            handoff.close()
            process.terminate()
            raise
        handle = _WorkerHandle(index=index, generation=generation,
                               process=process, handoff=handoff,
                               control=control)
        with self._lock:
            self._workers[index] = handle
            self._generation[index] = generation
            self._alive.add(index)

    def _note_dead(self, index: int) -> None:
        with self._lock:
            self._alive.discard(index)
        self._wake_monitor.set()

    def _monitor_loop(self) -> None:
        """Supervision: every tick (or immediately on a routing failure),
        restart any worker whose process died or whose handoff socket
        broke. One tick covers detection + restart."""
        while True:
            self._wake_monitor.wait(timeout=self.config.supervision_interval)
            self._wake_monitor.clear()
            if self._stopping.is_set():
                return
            for index in range(self.config.workers):
                if self._stopping.is_set():
                    return
                with self._lock:
                    handle = self._workers.get(index)
                    live = index in self._alive
                if handle is not None and live and handle.process.is_alive():
                    continue
                self._restart_worker(index)

    def _restart_worker(self, index: int) -> None:
        with self._lock:
            old = self._workers.pop(index, None)
            self._alive.discard(index)
        if old is not None:
            try:
                old.handoff.close()
            except OSError:
                pass
            old.control.close()
            if old.process.is_alive():
                old.process.terminate()
            old.process.join(timeout=2)
        generation = self._generation.get(index, 0) + 1
        try:
            self._spawn_worker(index, generation)
        except GatewayError:
            # Leave the worker dead; the next tick retries the spawn.
            return
        self._restarts[index] += 1
        self._metrics.counter("gateway_worker_restarts_total").inc()

    # -- session routing -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, addr = self._listen.accept()
            except OSError:
                return
            self._route_connection(conn, addr)

    def _route_connection(self, conn: socket.socket, addr) -> None:
        """Hand the accepted socket to the ring-selected worker. On a
        broken handoff the worker is marked dead (waking the monitor) and
        the session re-routes to the next live node."""
        key = f"{addr[0]}:{addr[1]}"
        deadline = time.monotonic() + self.config.route_timeout
        try:
            while not self._stopping.is_set() \
                    and time.monotonic() < deadline:
                with self._lock:
                    alive = set(self._alive)
                target = self._ring.route(key, alive)
                if target is None:
                    time.sleep(0.02)
                    continue
                with self._lock:
                    handle = self._workers.get(target)
                if handle is None:
                    time.sleep(0.02)
                    continue
                try:
                    socket.send_fds(handle.handoff, [b"s"], [conn.fileno()])
                except OSError:
                    self._note_dead(target)
                    continue
                self._metrics.counter(
                    "gateway_connections_routed_total").inc()
                return
        finally:
            # Routed or not, the supervisor's reference closes: on success
            # the worker holds the only live fd, on failure the client
            # sees the connection drop.
            try:
                conn.close()
            except OSError:
                pass

    def worker_for(self, addr: tuple[str, int]) -> Optional[int]:
        """Ring preview: which live worker would serve this client
        address right now (tests and operators)."""
        with self._lock:
            alive = set(self._alive)
        return self._ring.route(f"{addr[0]}:{addr[1]}", alive)

    # -- fleet observability ---------------------------------------------------------

    def _collect(self, *request) -> list[tuple[int, object]]:
        """Fan one control RPC out to every worker; skip the unreachable
        (a worker mid-restart must not fail the whole view)."""
        with self._lock:
            handles = sorted(self._workers.items())
        out = []
        for index, handle in handles:
            try:
                out.append((index, handle.control.call(*request)))
            except GatewayError:
                continue
        return out

    def _fleet_handler(self, request):
        op = request[0]
        if op == "ping":
            return "pong"
        if op == "metrics_text":
            return self.metrics_text()
        if op == "trace_index":
            return self.trace_index()
        if op == "find_trace":
            return self.find_trace(request[1])
        if op == "slow_queries":
            return self.slow_queries()
        if op == "tenants":
            return self.tenants()
        raise GatewayError(f"unknown fleet op {op!r}")

    def worker_metrics_states(self) -> list[tuple[int, dict]]:
        """Per-worker ``MetricsRegistry.dump_state`` snapshots."""
        return self._collect("metrics_state")

    def metrics_text(self) -> str:
        """Fleet-wide metrics: every worker's registry merged (counters
        sum, histograms merge by bucket) plus the supervisor's own."""
        fleet = aggregate_metrics(
            [state for _, state in self._collect("metrics_state")])
        fleet.merge_state(self._metrics.dump_state())
        return fleet.render_text()

    def trace_index(self) -> list[str]:
        lines = []
        for index, chunk in self._collect("trace_index"):
            lines.extend(f"w{index}\t{line}" for line in chunk)
        return lines

    def find_trace(self, trace_id: int) -> Optional[list[str]]:
        for index, rendered in self._collect("get_trace", trace_id):
            if rendered is not None:
                return [f"(worker {index})"] + rendered
        return None

    def slow_queries(self) -> list[dict]:
        records = []
        for index, chunk in self._collect("slow_queries"):
            for record in chunk:
                records.append({**record, "worker": index})
        return records

    def tenants(self) -> tuple[dict, int]:
        """Fleet-wide tenant report: every worker's per-tenant counters,
        QPS, queue-wait histograms, and cache bytes merged (counters and
        bytes sum, histograms merge bucket-wise). Returns ``(report,
        reporting_workers)``."""
        from repro.core.tenancy import merge_reports

        reports = [report for _, report in self._collect("tenant_stats")
                   if report is not None]
        return merge_reports(reports), len(reports)

    def cache_service_stats(self) -> Optional[dict]:
        if self._cache_client is None:
            return None
        return self._cache_client.call("stats")

    def result_cache_stats(self) -> Optional[dict]:
        """Fleet-wide result-cache counters: every worker's snapshot
        summed (None when no worker has a result cache)."""
        per_worker = [stats for _, stats
                      in self._collect("result_cache_stats")
                      if stats is not None]
        if not per_worker:
            return None
        fleet: dict[str, float] = {}
        for stats in per_worker:
            for name, value in stats.items():
                if name == "hit_rate":
                    continue
                fleet[name] = fleet.get(name, 0) + value
        lookups = fleet.get("hits", 0) + fleet.get("misses", 0)
        fleet["hit_rate"] = fleet.get("hits", 0) / lookups if lookups else 0.0
        fleet["workers"] = len(per_worker)
        return fleet

    @property
    def restarts(self) -> dict[int, int]:
        return dict(self._restarts)

    def alive_workers(self) -> list[int]:
        with self._lock:
            return sorted(self._alive)
