"""Fingerprint-keyed result cache for repeated read-only statements.

The workload the paper targets (Table 1) and the dashboard traffic Sigma
Worksheet describes re-issue near-identical read-only queries constantly.
The translation cache already makes those skip parse→bind→transform→
serialize; this layer makes them skip the *backend* too: a hit replays the
stored result batches through the normal TDF → Result Converter pipeline
(:meth:`HyperQSession.fabricate_result`) with zero executor calls.

Safety model (two independent layers):

1. **Version vectors in the entry.**  Every entry stores the dependency
   set the extractor (``core/deps.py``) computed for its statement and the
   shadow catalog's ``(name, schema_epoch, data_epoch)`` vector over that
   set, captured before first execution.  A lookup recomputes the current
   vector and serves only on exact equality — a stale serve is impossible
   by construction, even if the eager index below were broken.
2. **Eager invalidation index.**  The same inverted table→entries index
   the translation cache uses drops affected entries the moment DDL/DML
   touches a dependency, reclaiming memory immediately and making entry
   survival across disjoint-table DML measurable.

Only *shareable* statements are stored: read-only, deterministic (no
``CURRENT_TIMESTAMP`` and friends), no volatile-table references, no
session overlay active, and no parameter values the key cannot freeze.
Entries are byte-bounded with LRU eviction and a per-entry cap so one
giant scan cannot monopolize (or thrash) the cache; oversized results
abort materialization mid-stream and are simply not stored.

The ``"result_cache"`` fault site injects seeded churn: forced eviction
after insert and forced stale-version drops on lookup, so the resilience
battery can prove answers never depend on the cache's health.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Optional

from repro.core.deps import WILDCARD
from repro.core.faults import RESULT_CACHE_EVICT, RESULT_CACHE_STALE

#: Upper bound on the per-key miss-count table driving cost admission, so
#: an adversarial stream of unique fingerprints cannot grow it unbounded.
_MISS_TABLE_CAP = 4096


@dataclass
class ResultCacheStats:
    """Monotonic counters; snapshot with :meth:`ResultCache.stats`."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale_drops: int = 0     # vector mismatch (or forced stale probe)
    rejects: int = 0         # result too large / not shareable
    injected_evictions: int = 0  # fault-plane forced evictions
    expired: int = 0         # TTL lapsed between insert and lookup
    admission_rejects: int = 0  # cost model said "not worth the bytes"

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        snapshot = {f.name: getattr(self, f.name)
                    for f in fields(ResultCacheStats)}
        snapshot["hit_rate"] = self.hit_rate
        return snapshot


@dataclass
class ResultEntry:
    """One materialized result: the exact TDF packets the backend produced.

    Storing the *encoded* batches (not decoded rows) means a replay pushes
    byte-identical packets through the same Result Converter path a live
    execution uses — the client cannot tell a hit from a backend run — and
    sizing is exact instead of estimated.
    """

    columns: tuple[str, ...]
    types: tuple                      # declared backend column types
    packets: tuple[bytes, ...]        # encoded TDF batches, in order
    notes: tuple[tuple[str, str], ...]  # tracker bits to replay on a hit
    deps: tuple[str, ...]             # dependency tables (upper-cased)
    vector: tuple                     # shadow version vector over ``deps``
    target_sql: str = ""              # what a backend run would have sent
    size: int = 0
    #: Seconds the entry stays servable after insert; 0 inherits the
    #: cache-wide default (which itself defaults to "never expires").
    ttl: float = 0.0
    created_at: float = 0.0           # stamped by :meth:`ResultCache.insert`

    def __post_init__(self):
        if not self.size:
            self.size = sum(len(packet) for packet in self.packets) \
                + 16 * len(self.columns) + 32 * len(self.notes) \
                + sum(16 + len(name) for name in self.deps) + 256


class ResultCache:
    """Thread-safe byte-capped LRU over :class:`ResultEntry`.

    Keys are ``(source, profile, fingerprint_text, literal_values,
    params_key)`` — the dependency *versions* live in the entry and are
    checked on every lookup, so a key never needs to embed them.

    Three optional layers on top of plain LRU, all off by default:

    * ``default_ttl`` — entries older than their TTL are dropped at lookup
      (wall clock injectable for tests; 0 = never expire).
    * ``admission_ms_per_mb`` — cost-based admission: an entry is stored
      only when ``backend_ms × expected_repeats`` (per-key miss count) is
      at least ``size_mb × admission_ms_per_mb``, so cheap-but-huge
      results cannot wash out small expensive ones (0 = admit all).
    * ``tenant_shares`` — ``{tenant: fraction}`` reserved byte shares.
      Per-tenant usage is tracked exactly, and eviction never pushes a
      tenant below its reserved share on another tenant's behalf.
    """

    def __init__(self, max_bytes: int,
                 max_entry_bytes: Optional[int] = None,
                 faults=None,
                 tenant_shares: Optional[dict] = None,
                 default_ttl: float = 0.0,
                 admission_ms_per_mb: float = 0.0,
                 clock=time.monotonic):
        if max_bytes <= 0:
            raise ValueError("ResultCache needs a positive byte cap; "
                             "leave result_cache_bytes=0 to disable")
        if default_ttl < 0 or admission_ms_per_mb < 0:
            raise ValueError("default_ttl and admission_ms_per_mb must be "
                             "non-negative")
        self.max_bytes = max_bytes
        #: Largest single result worth storing (default: an eighth of the
        #: cache, so churn from one big scan cannot evict everything).
        self.max_entry_bytes = (max_entry_bytes if max_entry_bytes
                                else max(1, max_bytes // 8))
        self.default_ttl = default_ttl
        self.admission_ms_per_mb = admission_ms_per_mb
        self._clock = clock
        self._faults = faults
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, ResultEntry]" = OrderedDict()
        self._dep_index: dict[str, set] = {}
        self._bytes = 0
        self._stats = ResultCacheStats()
        shares = dict(tenant_shares) if tenant_shares else {}
        if sum(shares.values()) > 1.0 + 1e-9:
            raise ValueError("tenant result-cache shares sum to more than "
                             "the whole cache")
        #: Reserved floor in bytes per tenant (eviction protection).
        self._reserved = {tenant: int(share * max_bytes)
                          for tenant, share in shares.items()}
        self._owner: dict[tuple, Optional[str]] = {}
        self._tenant_bytes: dict[str, int] = {}
        self._miss_counts: "OrderedDict[tuple, int]" = OrderedDict()

    # -- lookup / insert --------------------------------------------------------------

    def lookup(self, key: tuple, current_vector) -> Optional[ResultEntry]:
        """Return the entry iff its dependency vector is still current.

        *current_vector* is ``ShadowCatalog.version_vector`` (or any
        callable mapping a name set to a comparable vector).  A vector
        mismatch drops the entry — it can never become valid again because
        epochs are monotonic.
        """
        fault = (self._faults.draw("result_cache", op="lookup")
                 if self._faults is not None else None)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                self._note_miss(key)
                return None
            ttl = entry.ttl or self.default_ttl
            if ttl and self._clock() - entry.created_at > ttl:
                self._drop(key, entry)
                self._stats.expired += 1
                self._stats.misses += 1
                self._note_miss(key)
                return None
            stale_forced = fault is not None and fault.kind == RESULT_CACHE_STALE
            if stale_forced or current_vector(entry.deps) != entry.vector:
                self._drop(key, entry)
                self._stats.stale_drops += 1
                self._stats.misses += 1
                self._note_miss(key)
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
        return entry

    def insert(self, key: tuple, entry: ResultEntry,
               tenant: Optional[str] = None, backend_ms: float = 0.0) -> bool:
        """Store *entry*; returns False (and counts a reject) when it does
        not fit under the per-entry cap or fails cost admission.

        *tenant* attributes the bytes for share accounting; *backend_ms*
        is what the backend spent producing the result (the cost the cache
        would save on each future hit), feeding the admission model.
        """
        if entry.size > self.max_entry_bytes:
            with self._lock:
                self._stats.rejects += 1
            return False
        fault = (self._faults.draw("result_cache", op="insert")
                 if self._faults is not None else None)
        with self._lock:
            if not self._admit(key, entry, backend_ms):
                self._stats.admission_rejects += 1
                self._stats.rejects += 1
                return False
            entry.created_at = self._clock()
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._account(key, -previous.size)
                self._index_remove(key, previous)
            self._entries[key] = entry
            self._owner[key] = tenant
            self._account(key, entry.size)
            self._index_add(key, entry)
            self._stats.inserts += 1
            self._evict_over_budget(inserting=tenant)
            if fault is not None and fault.kind == RESULT_CACHE_EVICT \
                    and key in self._entries:
                self._drop(key, self._entries[key])
                self._stats.injected_evictions += 1
        return True

    # -- cost admission / tenant accounting (all under self._lock) ---------------------

    def _note_miss(self, key: tuple) -> None:
        """Bounded per-key miss counter — the admission model's estimate
        of how often a stored entry would actually be reused."""
        if self.admission_ms_per_mb <= 0:
            return
        self._miss_counts[key] = self._miss_counts.pop(key, 0) + 1
        while len(self._miss_counts) > _MISS_TABLE_CAP:
            self._miss_counts.popitem(last=False)

    def _admit(self, key: tuple, entry: ResultEntry,
               backend_ms: float) -> bool:
        """``backend_ms × expected_repeats ≥ size_mb × threshold``: storing
        is worth it when the backend time the cache stands to save scales
        with the bytes the entry will occupy."""
        if self.admission_ms_per_mb <= 0:
            return True
        expected_repeats = self._miss_counts.get(key, 1)
        threshold = (entry.size / (1024 * 1024)) * self.admission_ms_per_mb
        return backend_ms * expected_repeats >= threshold

    def _account(self, key: tuple, delta: int) -> None:
        self._bytes += delta
        tenant = self._owner.get(key)
        if tenant is None:
            return
        total = self._tenant_bytes.get(tenant, 0) + delta
        if total > 0:
            self._tenant_bytes[tenant] = total
        else:
            self._tenant_bytes.pop(tenant, None)

    def _evictable(self, key: tuple, inserting: Optional[str]) -> bool:
        """May *key* be evicted on behalf of tenant *inserting*?  A tenant
        may always shed its own entries; another tenant's entries are fair
        game only while that tenant sits above its reserved share."""
        owner = self._owner.get(key)
        if owner is None or owner == inserting:
            return True
        return self._tenant_bytes.get(owner, 0) > self._reserved.get(owner, 0)

    def _evict_over_budget(self, inserting: Optional[str]) -> None:
        while self._bytes > self.max_bytes and self._entries:
            victim = next((k for k in self._entries
                           if self._evictable(k, inserting)), None)
            if victim is None:
                # Every other tenant is at or below its floor: progress
                # beats protection, evict the global LRU head.
                victim = next(iter(self._entries))
            self._drop(victim, self._entries[victim])
            self._stats.evictions += 1

    # -- invalidation -----------------------------------------------------------------

    def invalidate_tables(self, names) -> int:
        """Drop entries whose dependency set intersects *names*."""
        touched = {name.upper() for name in names}
        with self._lock:
            if WILDCARD in touched:
                stale = set(self._entries)
            else:
                stale = set()
                for name in touched | {WILDCARD}:
                    stale |= self._dep_index.get(name, set())
            for key in stale:
                self._drop(key, self._entries[key])
            self._stats.invalidations += len(stale)
            return len(stale)

    def _drop(self, key: tuple, entry: ResultEntry) -> None:
        del self._entries[key]
        self._account(key, -entry.size)
        self._owner.pop(key, None)
        self._index_remove(key, entry)

    def _index_add(self, key: tuple, entry: ResultEntry) -> None:
        for name in entry.deps:
            self._dep_index.setdefault(name, set()).add(key)

    def _index_remove(self, key: tuple, entry: ResultEntry) -> None:
        for name in entry.deps:
            keys = self._dep_index.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._dep_index[name]

    def note_reject(self) -> None:
        """Count a result that was not storable (non-shareable statement,
        oversized materialization aborted mid-stream)."""
        with self._lock:
            self._stats.rejects += 1

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                **{f.name: getattr(self._stats, f.name)
                   for f in fields(ResultCacheStats)})

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def tenant_bytes(self) -> dict[str, int]:
        """Bytes currently resident per tenant (insert-attributed)."""
        with self._lock:
            return dict(self._tenant_bytes)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dep_index.clear()
            self._owner.clear()
            self._tenant_bytes.clear()
            self._miss_counts.clear()
            self._bytes = 0
