"""Fingerprint-keyed result cache for repeated read-only statements.

The workload the paper targets (Table 1) and the dashboard traffic Sigma
Worksheet describes re-issue near-identical read-only queries constantly.
The translation cache already makes those skip parse→bind→transform→
serialize; this layer makes them skip the *backend* too: a hit replays the
stored result batches through the normal TDF → Result Converter pipeline
(:meth:`HyperQSession.fabricate_result`) with zero executor calls.

Safety model (two independent layers):

1. **Version vectors in the entry.**  Every entry stores the dependency
   set the extractor (``core/deps.py``) computed for its statement and the
   shadow catalog's ``(name, schema_epoch, data_epoch)`` vector over that
   set, captured before first execution.  A lookup recomputes the current
   vector and serves only on exact equality — a stale serve is impossible
   by construction, even if the eager index below were broken.
2. **Eager invalidation index.**  The same inverted table→entries index
   the translation cache uses drops affected entries the moment DDL/DML
   touches a dependency, reclaiming memory immediately and making entry
   survival across disjoint-table DML measurable.

Only *shareable* statements are stored: read-only, deterministic (no
``CURRENT_TIMESTAMP`` and friends), no volatile-table references, no
session overlay active, and no parameter values the key cannot freeze.
Entries are byte-bounded with LRU eviction and a per-entry cap so one
giant scan cannot monopolize (or thrash) the cache; oversized results
abort materialization mid-stream and are simply not stored.

The ``"result_cache"`` fault site injects seeded churn: forced eviction
after insert and forced stale-version drops on lookup, so the resilience
battery can prove answers never depend on the cache's health.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Optional

from repro.core.deps import WILDCARD
from repro.core.faults import RESULT_CACHE_EVICT, RESULT_CACHE_STALE


@dataclass
class ResultCacheStats:
    """Monotonic counters; snapshot with :meth:`ResultCache.stats`."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale_drops: int = 0     # vector mismatch (or forced stale probe)
    rejects: int = 0         # result too large / not shareable
    injected_evictions: int = 0  # fault-plane forced evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        snapshot = {f.name: getattr(self, f.name)
                    for f in fields(ResultCacheStats)}
        snapshot["hit_rate"] = self.hit_rate
        return snapshot


@dataclass
class ResultEntry:
    """One materialized result: the exact TDF packets the backend produced.

    Storing the *encoded* batches (not decoded rows) means a replay pushes
    byte-identical packets through the same Result Converter path a live
    execution uses — the client cannot tell a hit from a backend run — and
    sizing is exact instead of estimated.
    """

    columns: tuple[str, ...]
    types: tuple                      # declared backend column types
    packets: tuple[bytes, ...]        # encoded TDF batches, in order
    notes: tuple[tuple[str, str], ...]  # tracker bits to replay on a hit
    deps: tuple[str, ...]             # dependency tables (upper-cased)
    vector: tuple                     # shadow version vector over ``deps``
    target_sql: str = ""              # what a backend run would have sent
    size: int = 0

    def __post_init__(self):
        if not self.size:
            self.size = sum(len(packet) for packet in self.packets) \
                + 16 * len(self.columns) + 32 * len(self.notes) \
                + sum(16 + len(name) for name in self.deps) + 256


class ResultCache:
    """Thread-safe byte-capped LRU over :class:`ResultEntry`.

    Keys are ``(source, profile, fingerprint_text, literal_values,
    params_key)`` — the dependency *versions* live in the entry and are
    checked on every lookup, so a key never needs to embed them.
    """

    def __init__(self, max_bytes: int,
                 max_entry_bytes: Optional[int] = None,
                 faults=None):
        if max_bytes <= 0:
            raise ValueError("ResultCache needs a positive byte cap; "
                             "leave result_cache_bytes=0 to disable")
        self.max_bytes = max_bytes
        #: Largest single result worth storing (default: an eighth of the
        #: cache, so churn from one big scan cannot evict everything).
        self.max_entry_bytes = (max_entry_bytes if max_entry_bytes
                                else max(1, max_bytes // 8))
        self._faults = faults
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, ResultEntry]" = OrderedDict()
        self._dep_index: dict[str, set] = {}
        self._bytes = 0
        self._stats = ResultCacheStats()

    # -- lookup / insert --------------------------------------------------------------

    def lookup(self, key: tuple, current_vector) -> Optional[ResultEntry]:
        """Return the entry iff its dependency vector is still current.

        *current_vector* is ``ShadowCatalog.version_vector`` (or any
        callable mapping a name set to a comparable vector).  A vector
        mismatch drops the entry — it can never become valid again because
        epochs are monotonic.
        """
        fault = (self._faults.draw("result_cache", op="lookup")
                 if self._faults is not None else None)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                return None
            stale_forced = fault is not None and fault.kind == RESULT_CACHE_STALE
            if stale_forced or current_vector(entry.deps) != entry.vector:
                self._drop(key, entry)
                self._stats.stale_drops += 1
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
        return entry

    def insert(self, key: tuple, entry: ResultEntry) -> bool:
        """Store *entry*; returns False (and counts a reject) when it does
        not fit under the per-entry cap."""
        if entry.size > self.max_entry_bytes:
            with self._lock:
                self._stats.rejects += 1
            return False
        fault = (self._faults.draw("result_cache", op="insert")
                 if self._faults is not None else None)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.size
                self._index_remove(key, previous)
            self._entries[key] = entry
            self._bytes += entry.size
            self._index_add(key, entry)
            self._stats.inserts += 1
            while self._bytes > self.max_bytes and self._entries:
                evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.size
                self._index_remove(evicted_key, evicted)
                self._stats.evictions += 1
            if fault is not None and fault.kind == RESULT_CACHE_EVICT \
                    and key in self._entries:
                self._drop(key, self._entries[key])
                self._stats.injected_evictions += 1
        return True

    # -- invalidation -----------------------------------------------------------------

    def invalidate_tables(self, names) -> int:
        """Drop entries whose dependency set intersects *names*."""
        touched = {name.upper() for name in names}
        with self._lock:
            if WILDCARD in touched:
                stale = set(self._entries)
            else:
                stale = set()
                for name in touched | {WILDCARD}:
                    stale |= self._dep_index.get(name, set())
            for key in stale:
                self._drop(key, self._entries[key])
            self._stats.invalidations += len(stale)
            return len(stale)

    def _drop(self, key: tuple, entry: ResultEntry) -> None:
        del self._entries[key]
        self._bytes -= entry.size
        self._index_remove(key, entry)

    def _index_add(self, key: tuple, entry: ResultEntry) -> None:
        for name in entry.deps:
            self._dep_index.setdefault(name, set()).add(key)

    def _index_remove(self, key: tuple, entry: ResultEntry) -> None:
        for name in entry.deps:
            keys = self._dep_index.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._dep_index[name]

    def note_reject(self) -> None:
        """Count a result that was not storable (non-shareable statement,
        oversized materialization aborted mid-stream)."""
        with self._lock:
            self._stats.rejects += 1

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                **{f.name: getattr(self._stats, f.name)
                   for f in fields(ResultCacheStats)})

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dep_index.clear()
            self._bytes = 0
