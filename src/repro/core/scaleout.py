"""Scale-out virtualization (Appendix B.3 — the paper's future work).

"A common solution ... is to maintain multiple replicas of the data warehouse
and load balance queries across them. The ADV solution on top can then
automatically route the queries to the different replicas, without
sacrificing consistency, and without requiring changes to the application
logic. We are currently working on extending Hyper-Q to handle this
scenario."

This module implements that extension for the reproduction: a
:class:`ScaledHyperQ` fronts N independent replica warehouses, each behind
its own Hyper-Q engine. Statement classification decides routing:

* **reads** (SELECT without side effects, HELP/SHOW) go to one replica,
  chosen by the balancing policy;
* **writes** (DML, DDL, macros/procedures — anything that could mutate
  state) are applied to *every* replica synchronously, preserving
  consistency at the cost of write fan-out.

Session-scoped state (volatile tables, recursion work tables) stays
consistent because a session pins each *read* to the replica that owns its
session-scoped objects only when such objects exist; otherwise reads rotate
freely.

Replica loss is a first-class event, not an exception path: each replica
carries a :class:`ReplicaHealth` record. Infrastructure failures (a replica
that stops answering, a retry budget exhausted against it) count against the
replica; at ``failure_threshold`` consecutive failures it is **quarantined**.
Reads re-route around quarantined replicas; writes destined for one are
**queued** and **replayed in order** when the replica recovers (detected by
a drain attempt on the next write, or forced via :meth:`revive_replica`) —
so a healed replica converges back to the fleet state instead of silently
diverging. Query-level errors (a typo that fails identically everywhere)
never count against health: only failures other replicas do not share do.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Callable, Optional

from repro.errors import (
    HyperQError, ReplicaUnavailableError, RetryExhaustedError,
    TransientBackendError,
)
from repro.core import trace as trace_mod
from repro.core.engine import HQResult, HyperQ, HyperQSession
from repro.core.faults import ResilienceStats, RetryPolicy
from repro.frontend.teradata import ast as a
from repro.frontend.teradata.parser import TeradataParser
from repro.transform.capabilities import CapabilityProfile, HYPERION

Policy = Callable[[int, int], int]  # (request_index, replica_count) -> index

#: Failures that indict the replica rather than the query.
_INFRA_ERRORS = (ReplicaUnavailableError, RetryExhaustedError,
                 TransientBackendError)


def round_robin(request_index: int, replica_count: int) -> int:
    """The default balancing policy."""
    return request_index % replica_count


class ReplicaHealth:
    """Liveness bookkeeping for one replica of the fleet."""

    def __init__(self, index: int):
        self.index = index
        self.up = True
        #: Administratively downed: no automatic recovery probes until an
        #: explicit :meth:`ScaledHyperQ.revive_replica`.
        self.held_down = False
        self.consecutive_failures = 0
        #: Writes this replica missed while quarantined, in arrival order.
        self.pending_writes: deque[str] = deque()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "quarantined"
        return (f"ReplicaHealth(#{self.index} {state}, "
                f"{len(self.pending_writes)} queued)")


class ScaledHyperQ:
    """A load-balanced fleet of replica warehouses behind one virtual front."""

    def __init__(self, replicas: int = 2,
                 target: CapabilityProfile | str = HYPERION,
                 policy: Policy = round_robin,
                 faults=None,
                 retry: Optional[RetryPolicy] = None,
                 failure_threshold: int = 2,
                 workload=None):
        if replicas < 1:
            raise HyperQError("at least one replica is required")
        if failure_threshold < 1:
            raise HyperQError("failure_threshold must be >= 1")
        self.faults = faults
        #: Optional :class:`repro.core.workload.WorkloadManager` fronting
        #: the fleet: sessions classify each request and route through it,
        #: and workload class steers replica placement (ETL reads prefer
        #: the primary, interactive reads spread across healthy replicas).
        self.workload = workload
        if workload is not None and workload.faults is None:
            workload.faults = faults
        self.engines = [HyperQ(target=target, faults=faults, retry=retry,
                               replica=index)
                        for index in range(replicas)]
        self.policy = policy
        self.failure_threshold = failure_threshold
        self._counter = itertools.count()
        self._lock = threading.Lock()
        #: reads served per replica (observability for the balance tests).
        self.reads_per_replica = [0] * replicas
        self.health = [ReplicaHealth(index) for index in range(replicas)]
        #: fleet-level failover/quarantine/replay counters.
        self.resilience = ResilienceStats()

    @property
    def replica_count(self) -> int:
        return len(self.engines)

    def create_session(self) -> "ScaledSession":
        return ScaledSession(self)

    # -- health ------------------------------------------------------------------

    def is_up(self, index: int) -> bool:
        with self._lock:
            return self.health[index].up

    def up_replicas(self) -> list[int]:
        with self._lock:
            return [h.index for h in self.health if h.up]

    def pending_writes(self, index: int) -> list[str]:
        with self._lock:
            return list(self.health[index].pending_writes)

    def record_success(self, index: int) -> None:
        with self._lock:
            self.health[index].consecutive_failures = 0

    def record_failure(self, index: int, error: Exception) -> None:
        """Count one replica-indicting failure; quarantine at threshold."""
        with self._lock:
            health = self.health[index]
            health.consecutive_failures += 1
            if health.up and health.consecutive_failures >= self.failure_threshold:
                health.up = False
                self._record_event("quarantine", replica=index,
                                   failures=health.consecutive_failures)
                self.resilience.note("quarantine")

    def kill_replica(self, index: int, hold: bool = True) -> None:
        """Mark a replica down. With ``hold`` (the administrative axe the
        test battery swings), automatic recovery probes are suppressed until
        :meth:`revive_replica`; without it, the next write probes as usual."""
        with self._lock:
            health = self.health[index]
            health.held_down = health.held_down or hold
            if health.up:
                health.up = False
                self._record_event("quarantine", replica=index,
                                   failures="manual" if hold
                                   else health.consecutive_failures)
                self.resilience.note("quarantine")

    def queue_write(self, index: int, sql: str) -> None:
        with self._lock:
            self.health[index].pending_writes.append(sql)
            self._record_event("queued_write", replica=index)
            self.resilience.note("queued_write")

    def _record_event(self, action: str, **detail) -> None:
        if self.faults is not None:
            self.faults.record(action, **detail)  # also traces the event
        else:
            trace_mod.add_event(action, **detail)

    # -- recovery ----------------------------------------------------------------

    def try_recover(self, index: int,
                    session: Optional[HyperQSession] = None) -> bool:
        """Attempt to drain a quarantined replica's write queue.

        Replays queued writes in arrival order through *session* (or a
        throwaway engine session); stops at the first statement the replica
        still refuses. Only when the queue fully drains does the replica
        rejoin the fleet — a half-replayed replica must never serve reads.
        Returns True if the replica is up afterwards.
        """
        with self._lock:
            health = self.health[index]
            if health.up:
                return True
            if health.held_down:
                return False
        replay_session = session if session is not None \
            else self.engines[index].create_session()
        replayed = 0
        try:
            while True:
                with self._lock:
                    if not self.health[index].pending_writes:
                        break
                    sql = self.health[index].pending_writes[0]
                try:
                    replay_session.execute(sql)
                except _INFRA_ERRORS:
                    # Still down: keep the statement queued for next time.
                    return False
                with self._lock:
                    self.health[index].pending_writes.popleft()
                replayed += 1
                self._record_event("replayed_write", replica=index)
                self.resilience.note("replayed_write")
        finally:
            if session is None:
                replay_session.close()
        with self._lock:
            self.health[index].up = True
            self.health[index].consecutive_failures = 0
        self._record_event("recovery", replica=index, replayed=replayed)
        self.resilience.note("recovery")
        return True

    def revive_replica(self, index: int,
                       session: Optional[HyperQSession] = None) -> bool:
        """Explicit recovery: drain the queue and rejoin the fleet."""
        with self._lock:
            self.health[index].held_down = False
        return self.try_recover(index, session)

    # -- routing -----------------------------------------------------------------

    def _next_read_index(self) -> int:
        """One policy draw over the healthy replicas."""
        with self._lock:
            up = [h.index for h in self.health if h.up]
            if not up:
                raise ReplicaUnavailableError(
                    "no healthy replicas available for reads")
            slot = self.policy(next(self._counter), len(up))
            return up[slot % len(up)]

    def read_order(self) -> list[int]:
        """Healthy replicas in preference order for one read: the policy's
        pick first, the rest as failover fallbacks."""
        first = self._next_read_index()
        with self._lock:
            rest = [h.index for h in self.health if h.up and h.index != first]
        return [first] + rest

    def primary_read_order(self) -> list[int]:
        """Healthy replicas with the primary (replica 0, or the lowest
        healthy index) first — the ETL read path. Bulk scans pile onto the
        same replica the write fan-out hits first, keeping the policy-
        balanced replicas free for interactive traffic."""
        with self._lock:
            up = sorted(h.index for h in self.health if h.up)
        if not up:
            raise ReplicaUnavailableError(
                "no healthy replicas available for reads")
        return up

    def count_read(self, index: int) -> None:
        with self._lock:
            self.reads_per_replica[index] += 1


class ScaledSession:
    """One application session spanning all replicas."""

    def __init__(self, fleet: ScaledHyperQ):
        self._fleet = fleet
        self._sessions: list[HyperQSession] = [
            engine.create_session() for engine in fleet.engines
        ]
        self._parser = TeradataParser()
        #: replica owning this session's volatile/session-scoped objects
        #: (None until the first session-scoped DDL pins one).
        self._pinned: Optional[int] = None

    # -- classification ---------------------------------------------------------

    def _classify(self, statement: a.TdStatement) -> str:
        """"read" | "write" | "session" (session-scoped state)."""
        if isinstance(statement, (a.TdQuery, a.TdHelp, a.TdShow)):
            return "read"
        if isinstance(statement, a.TdCreateTable) and (
                statement.volatile or statement.global_temporary):
            return "session"
        if isinstance(statement, (a.TdCollectStatistics, a.TdSetSession,
                                  a.TdTransaction)):
            return "session"
        # DML against this session's volatile objects stays on the replica
        # that owns them.
        if isinstance(statement, (a.TdInsert, a.TdUpdate, a.TdDelete)) \
                and self._pinned is not None \
                and self._sessions[self._pinned].catalog.is_volatile(
                    statement.table):
            return "session"
        if isinstance(statement, a.TdDropTable) and self._pinned is not None \
                and self._sessions[self._pinned].catalog.is_volatile(
                    statement.name):
            return "session"
        # DML, DDL, macros, procedures, MERGE: conservative write fan-out
        # (EXEC/CALL bodies may contain DML).
        return "write"

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str) -> HQResult:
        fleet = self._fleet
        manager = fleet.workload
        if manager is None:
            return self._execute_classified(sql)
        # Classification runs on the replica-0 session (every replica holds
        # the same shadow catalog); admission, fair scheduling, and deadline
        # propagation then wrap the whole fan-out/failover execution.
        decision = manager.decide(self._sessions[0], sql)
        return manager.run(self._sessions[0], sql,
                           lambda: self._execute_classified(sql, decision),
                           decision)

    def _execute_classified(self, sql: str, decision=None) -> HQResult:
        statement = self._parser.parse_statement(sql)
        kind = self._classify(statement)
        if kind == "read":
            return self._execute_read(sql, decision)
        if kind == "session":
            return self._execute_session_scoped(sql)
        # Writes fan out in replica order — the primary (replica 0) always
        # applies first, so ETL mutations land where ETL reads are routed.
        return self._execute_write(sql)

    def _execute_read(self, sql: str, decision=None) -> HQResult:
        fleet = self._fleet
        if self._pinned is not None:
            # Volatile state lives on exactly one replica; a read against it
            # cannot re-route without losing the session's overlay.
            if not fleet.is_up(self._pinned):
                raise ReplicaUnavailableError(
                    f"replica {self._pinned} holding this session's "
                    f"volatile state is quarantined")
            return self._sessions[self._pinned].execute(sql)
        from repro.core.workload import ETL

        # ETL-class scans stick to the primary; everything else spreads
        # across the healthy replicas under the balancing policy.
        if decision is not None and decision.wl_class == ETL:
            order = fleet.primary_read_order()
        else:
            order = fleet.read_order()
        failures: list[tuple[int, HyperQError]] = []
        for index in order:
            try:
                with trace_mod.span("replica_attempt", replica=index):
                    result = self._sessions[index].execute(sql)
            except HyperQError as error:
                failures.append((index, error))
                continue
            if failures:
                # The request succeeded elsewhere, so the earlier failures
                # indict those replicas, not the query.
                for failed_index, error in failures:
                    fleet.record_failure(failed_index, error)
                fleet.resilience.note("failover")
                fleet._record_event(
                    "failover", replica=index,
                    skipped=",".join(str(i) for i, __ in failures))
            fleet.record_success(index)
            fleet.count_read(index)
            return result
        # Every healthy replica failed. Infrastructure errors still count
        # against health (a fleet-wide outage is N replica outages); plain
        # query errors do not — the query itself is at fault.
        for index, error in failures:
            if isinstance(error, _INFRA_ERRORS):
                fleet.record_failure(index, error)
        raise failures[-1][1]

    def _execute_session_scoped(self, sql: str) -> HQResult:
        if self._pinned is None:
            self._pinned = self._fleet._next_read_index()
            self._fleet.count_read(self._pinned)
        return self._sessions[self._pinned].execute(sql)

    def _execute_write(self, sql: str) -> HQResult:
        fleet = self._fleet
        results: dict[int, HQResult] = {}
        infra_failures: list[tuple[int, HyperQError]] = []
        for index, session in enumerate(self._sessions):
            if not fleet.is_up(index):
                # Queue first, then probe: if the replica has recovered the
                # drain applies this very write and the fleet reconverges.
                fleet.queue_write(index, sql)
                fleet.try_recover(index, session)
                continue
            try:
                results[index] = session.execute(sql)
            except _INFRA_ERRORS as error:
                infra_failures.append((index, error))
                fleet.record_failure(index, error)
                # A replica that missed a write is diverged until replay:
                # quarantine immediately, regardless of the consecutive-
                # failure threshold, so it cannot serve stale reads. Not
                # held: the next write probes for organic recovery.
                fleet.kill_replica(index, hold=False)
                fleet.queue_write(index, sql)
        if not results:
            if infra_failures:
                raise ReplicaUnavailableError(
                    f"write failed on every replica: {infra_failures[-1][1]}")
            raise ReplicaUnavailableError(
                "no healthy replicas available for writes")
        # All replicas that applied the write must agree on the effect;
        # surfacing divergence beats silently returning one answer.
        counts = {result.rowcount for result in results.values()}
        if len(counts) > 1:
            raise HyperQError(
                f"replica divergence: write affected {sorted(counts)} rows")
        return next(iter(results.values()))

    def close(self) -> None:
        for session in self._sessions:
            session.close()
