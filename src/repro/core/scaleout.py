"""Scale-out virtualization (Appendix B.3 — the paper's future work).

"A common solution ... is to maintain multiple replicas of the data warehouse
and load balance queries across them. The ADV solution on top can then
automatically route the queries to the different replicas, without
sacrificing consistency, and without requiring changes to the application
logic. We are currently working on extending Hyper-Q to handle this
scenario."

This module implements that extension for the reproduction: a
:class:`ScaledHyperQ` fronts N independent replica warehouses, each behind
its own Hyper-Q engine. Statement classification decides routing:

* **reads** (SELECT without side effects, HELP/SHOW) go to one replica,
  chosen by the balancing policy;
* **writes** (DML, DDL, macros/procedures — anything that could mutate
  state) are applied to *every* replica synchronously, preserving
  consistency at the cost of write fan-out.

Session-scoped state (volatile tables, recursion work tables) stays
consistent because a session pins each *read* to the replica that owns its
session-scoped objects only when such objects exist; otherwise reads rotate
freely.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Optional

from repro.errors import HyperQError
from repro.core.engine import HQResult, HyperQ, HyperQSession
from repro.frontend.teradata import ast as a
from repro.frontend.teradata.parser import TeradataParser
from repro.transform.capabilities import CapabilityProfile, HYPERION

Policy = Callable[[int, int], int]  # (request_index, replica_count) -> index


def round_robin(request_index: int, replica_count: int) -> int:
    """The default balancing policy."""
    return request_index % replica_count


class ScaledHyperQ:
    """A load-balanced fleet of replica warehouses behind one virtual front."""

    def __init__(self, replicas: int = 2,
                 target: CapabilityProfile | str = HYPERION,
                 policy: Policy = round_robin):
        if replicas < 1:
            raise HyperQError("at least one replica is required")
        self.engines = [HyperQ(target=target) for __ in range(replicas)]
        self.policy = policy
        self._counter = itertools.count()
        self._lock = threading.Lock()
        #: reads served per replica (observability for the balance tests).
        self.reads_per_replica = [0] * replicas

    @property
    def replica_count(self) -> int:
        return len(self.engines)

    def create_session(self) -> "ScaledSession":
        return ScaledSession(self)

    def _next_read_index(self) -> int:
        with self._lock:
            index = self.policy(next(self._counter), len(self.engines))
            self.reads_per_replica[index] += 1
            return index


class ScaledSession:
    """One application session spanning all replicas."""

    def __init__(self, fleet: ScaledHyperQ):
        self._fleet = fleet
        self._sessions: list[HyperQSession] = [
            engine.create_session() for engine in fleet.engines
        ]
        self._parser = TeradataParser()
        #: replica owning this session's volatile/session-scoped objects
        #: (None until the first session-scoped DDL pins one).
        self._pinned: Optional[int] = None

    # -- classification ---------------------------------------------------------

    def _classify(self, statement: a.TdStatement) -> str:
        """"read" | "write" | "session" (session-scoped state)."""
        if isinstance(statement, (a.TdQuery, a.TdHelp, a.TdShow)):
            return "read"
        if isinstance(statement, a.TdCreateTable) and (
                statement.volatile or statement.global_temporary):
            return "session"
        if isinstance(statement, (a.TdCollectStatistics, a.TdSetSession,
                                  a.TdTransaction)):
            return "session"
        # DML against this session's volatile objects stays on the replica
        # that owns them.
        if isinstance(statement, (a.TdInsert, a.TdUpdate, a.TdDelete)) \
                and self._pinned is not None \
                and self._sessions[self._pinned].catalog.is_volatile(
                    statement.table):
            return "session"
        if isinstance(statement, a.TdDropTable) and self._pinned is not None \
                and self._sessions[self._pinned].catalog.is_volatile(
                    statement.name):
            return "session"
        # DML, DDL, macros, procedures, MERGE: conservative write fan-out
        # (EXEC/CALL bodies may contain DML).
        return "write"

    # -- execution -----------------------------------------------------------------

    def execute(self, sql: str) -> HQResult:
        statement = self._parser.parse_statement(sql)
        kind = self._classify(statement)
        if kind == "read":
            return self._execute_read(sql)
        if kind == "session":
            return self._execute_session_scoped(sql)
        return self._execute_write(sql)

    def _execute_read(self, sql: str) -> HQResult:
        if self._pinned is not None:
            return self._sessions[self._pinned].execute(sql)
        index = self._fleet._next_read_index()
        try:
            return self._sessions[index].execute(sql)
        except HyperQError:
            # Failover: a broken replica must not break the application.
            for fallback, session in enumerate(self._sessions):
                if fallback != index:
                    try:
                        return session.execute(sql)
                    except HyperQError:
                        continue
            raise

    def _execute_session_scoped(self, sql: str) -> HQResult:
        if self._pinned is None:
            self._pinned = self._fleet._next_read_index()
        return self._sessions[self._pinned].execute(sql)

    def _execute_write(self, sql: str) -> HQResult:
        results = [session.execute(sql) for session in self._sessions]
        # All replicas must agree on the effect; surfacing divergence beats
        # silently returning one replica's answer.
        counts = {result.rowcount for result in results}
        if len(counts) > 1:
            raise HyperQError(
                f"replica divergence: write affected {sorted(counts)} rows")
        return results[0]

    def close(self) -> None:
        for session in self._sessions:
            session.close()
