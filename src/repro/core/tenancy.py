"""Multi-tenant control plane: identity, quotas, fair shares, accounting.

The paper sells Hyper-Q as shared middleware: many customers' unchanged BI
fleets funnel through one proxy tier onto one cloud warehouse. Shared
infrastructure without tenancy is a noisy-neighbor machine — one tenant's
ETL storm starves every other tenant's dashboards — so this module makes
the tenant a first-class scheduling and accounting dimension:

* **Identity** is established at connect time. The LOGON payload carries an
  optional tenant id after the credentials (``user\\0password\\0tenant``);
  :meth:`TenantRegistry.resolve` maps it to a configured tenant (unknown
  ids fail the logon with a clean :class:`~repro.errors.UnknownTenantError`
  instead of a stack trace) and the resolved name rides the session's
  ``session_params["TENANT"]`` through the engine, the workload manager,
  the caches, and the trace/metrics plane.
* **Quotas** (:class:`TenantQuota`): per-tenant concurrency slots, queue
  depth, and a token-bucket QPS limit, enforced at admission *before* any
  per-class policy. A tripped quota sheds with
  :class:`~repro.errors.TenantQuotaError` — ``QUOTA_EXCEEDED`` plus a
  ``retry after`` hint — and the ``tenancy`` fault site can script the
  same shed deterministically for the resilience battery.
* **Fair shares**: the workload manager's deficit-round-robin scheduler
  runs over (tenant, class) queues with weight ``tenant.weight ×
  class.weight``, so tenants divide the worker pool by their shares and
  classes divide each tenant's share exactly as before.
* **Cache shares**: ``result_cache_share`` / ``translation_cache_share``
  reserve a fraction of each cache's byte budget. The caches account bytes
  per inserting tenant and never evict a tenant below its reservation on
  another tenant's behalf (:mod:`repro.core.result_cache`,
  :mod:`repro.core.cache`).
* **Observability**: :func:`tenant_report` assembles per-tenant QPS, shed
  counts, queue-wait histograms, and cache bytes from one engine;
  :func:`merge_reports` sums them across gateway workers so ``SHOW HYPERQ
  TENANTS`` on any session reports fleet-wide numbers.

Everything is clock-injectable and lock-protected; the registry is shared
by the wire server, the workload manager, and the admin command path.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Optional

from repro.errors import (
    TenancyConfigError,
    TenantQuotaError,
    UnknownTenantError,
)
from repro.core import faults as flt
from repro.core import trace as trace_mod
from repro.core.workload import (
    ADMIN,
    HISTOGRAM_BOUNDS,
    LatencyHistogram,
    TokenBucket,
)

#: The tenant a connection lands on when it presents no tenant id.
DEFAULT_TENANT = "default"

#: Sliding window, in seconds, over which per-tenant QPS is measured.
QPS_WINDOW = 10.0


# -- configuration -------------------------------------------------------------------


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's control-plane budget.

    ``weight`` is the tenant's deficit-round-robin share of the worker
    pool; ``max_concurrency`` bounds the tenant's simultaneously *running*
    requests across all classes (0 = only class/pool limits apply);
    ``queue_depth`` bounds its *waiting* requests (0 = unbounded);
    ``rate`` / ``burst`` form a QPS token bucket consumed at admission
    (``rate`` = 0 disables it); ``result_cache_share`` /
    ``translation_cache_share`` reserve fractions of the cache byte
    budgets that other tenants' insertions may never evict below.
    """

    name: str
    weight: float = 1.0
    max_concurrency: int = 0
    queue_depth: int = 0
    rate: float = 0.0
    burst: int = 8
    result_cache_share: float = 0.0
    translation_cache_share: float = 0.0

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise TenancyConfigError("tenant name must be a non-empty string")
        if self.weight <= 0:
            raise TenancyConfigError(
                f"tenant {self.name!r}: weight must be positive, "
                f"got {self.weight!r}")
        for attr in ("max_concurrency", "queue_depth", "burst"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value < 0:
                raise TenancyConfigError(
                    f"tenant {self.name!r}: {attr} must be a non-negative "
                    f"integer, got {value!r}")
        if self.rate < 0:
            raise TenancyConfigError(
                f"tenant {self.name!r}: rate must be >= 0, got {self.rate!r}")
        for attr in ("result_cache_share", "translation_cache_share"):
            share = getattr(self, attr)
            if not 0.0 <= share <= 1.0:
                raise TenancyConfigError(
                    f"tenant {self.name!r}: {attr} must be a fraction in "
                    f"[0, 1], got {share!r}")

    @property
    def retry_after(self) -> float:
        """Client back-off hint attached to QUOTA_EXCEEDED sheds."""
        if self.rate > 0:
            return max(0.1, 1.0 / self.rate)
        return 0.5


@dataclass(frozen=True)
class TenancyConfig:
    """The whole control plane: tenant table plus the default mapping.

    ``default`` names the tenant that connections without a tenant id land
    on; a tenant of that name is created implicitly (with an unbounded
    quota) when the table does not define one.
    """

    tenants: tuple[TenantQuota, ...] = ()
    default: str = DEFAULT_TENANT

    def __post_init__(self):
        seen: dict[str, TenantQuota] = {}
        for quota in self.tenants:
            if quota.name in seen:
                raise TenancyConfigError(
                    f"tenant {quota.name!r} is configured twice")
            seen[quota.name] = quota
        if self.default not in seen:
            if self.tenants and self.default != DEFAULT_TENANT:
                raise TenancyConfigError(
                    f"default tenant {self.default!r} is not in the tenant "
                    f"table {sorted(seen)}")
            object.__setattr__(self, "tenants",
                               self.tenants + (TenantQuota(self.default),))
            seen[self.default] = self.quotas()[self.default]
        for attr in ("result_cache_share", "translation_cache_share"):
            total = sum(getattr(q, attr) for q in self.tenants)
            if total > 1.0 + 1e-9:
                raise TenancyConfigError(
                    f"{attr} reservations sum to {total:.3f} > 1.0; "
                    f"shares must leave the cache partitionable")

    def quotas(self) -> dict[str, TenantQuota]:
        return {quota.name: quota for quota in self.tenants}

    @classmethod
    def from_dict(cls, data: dict) -> "TenancyConfig":
        """Build a config from the ``--tenants`` / ``HQ_TENANCY_CONFIG``
        JSON shape::

            {"default": "starter",
             "tenants": {"acme":    {"weight": 4, "max_concurrency": 8,
                                     "rate": 50, "result_cache_share": 0.4},
                         "starter": {"weight": 1}}}

        Every malformed shape — non-dict tenants, unknown quota keys, bad
        value types — raises :class:`~repro.errors.TenancyConfigError`
        naming the offending tenant and field, never a raw KeyError.
        """
        if not isinstance(data, dict):
            raise TenancyConfigError(
                f"tenancy config must be a JSON object, got "
                f"{type(data).__name__}")
        data = dict(data)
        table = data.pop("tenants", {})
        default = data.pop("default", DEFAULT_TENANT)
        if data:
            raise TenancyConfigError(
                f"unknown tenancy config keys {sorted(data)}; expected "
                f"'tenants' and optional 'default'")
        if not isinstance(table, dict):
            raise TenancyConfigError(
                f"'tenants' must map tenant name -> quota object, got "
                f"{type(table).__name__}")
        known = {f.name for f in fields(TenantQuota)} - {"name"}
        quotas = []
        for name, spec in table.items():
            if not isinstance(spec, dict):
                raise TenancyConfigError(
                    f"tenant {name!r}: quota must be a JSON object, got "
                    f"{type(spec).__name__}")
            unknown = set(spec) - known
            if unknown:
                raise TenancyConfigError(
                    f"tenant {name!r}: unknown quota keys "
                    f"{sorted(unknown)}; known keys are {sorted(known)}")
            try:
                quotas.append(TenantQuota(name=name, **spec))
            except TypeError as error:
                raise TenancyConfigError(
                    f"tenant {name!r}: {error}") from error
        return cls(tenants=tuple(quotas), default=default)

    @classmethod
    def parse(cls, value: str) -> "TenancyConfig":
        """Config from inline JSON or ``@path`` / bare path to a JSON file
        (the ``serve --tenants`` argument shape)."""
        text = value.strip()
        if text.startswith("@"):
            text = text[1:]
        if not text.lstrip().startswith("{"):
            try:
                with open(text, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as error:
                raise TenancyConfigError(
                    f"cannot read tenancy config file {text!r}: "
                    f"{error}") from error
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise TenancyConfigError(
                f"tenancy config is not valid JSON: {error}") from error
        return cls.from_dict(data)

    @classmethod
    def from_env(cls, env: Optional[dict] = None) -> Optional["TenancyConfig"]:
        """Config from ``HQ_TENANCY_CONFIG``; unset/empty means no tenancy."""
        value = (env if env is not None else os.environ).get(
            "HQ_TENANCY_CONFIG", "").strip()
        if not value:
            return None
        return cls.parse(value)

    def per_worker(self, fleet_size: int) -> "TenancyConfig":
        """This config's share for one of *fleet_size* gateway workers.

        Mirrors :meth:`~repro.core.workload.WorkloadConfig.per_worker`:
        bounded capacities split by ceiling division, rates split exactly,
        0 sentinels stay 0. Cache *shares* are fractions of each worker's
        own byte budget and pass through unchanged — the reservation holds
        per worker, hence fleet-wide.
        """
        if fleet_size <= 1:
            return self

        def ceil_share(value: int) -> int:
            return -(-value // fleet_size) if value > 0 else value

        quotas = tuple(
            replace(q,
                    max_concurrency=ceil_share(q.max_concurrency),
                    queue_depth=ceil_share(q.queue_depth),
                    rate=q.rate / fleet_size if q.rate > 0 else 0.0,
                    burst=max(1, ceil_share(q.burst)))
            for q in self.tenants
        )
        return replace(self, tenants=quotas)


# -- runtime state -------------------------------------------------------------------


class _TenantState:
    """One tenant's live counters inside a registry."""

    __slots__ = ("quota", "bucket", "running", "queued", "counts",
                 "queue_wait", "arrivals")

    COUNTS = ("requests", "admitted", "shed", "quota_sheds")

    def __init__(self, quota: TenantQuota, clock: Callable[[], float]):
        self.quota = quota
        self.bucket = TokenBucket(quota.rate, quota.burst, clock)
        self.running = 0
        self.queued = 0
        self.counts = {name: 0 for name in self.COUNTS}
        self.queue_wait = LatencyHistogram()
        self.arrivals: deque[float] = deque()


class TenantRegistry:
    """Live per-tenant state shared by the server, manager, and engine.

    All methods are thread-safe under the registry's own lock; the
    scheduling-path calls are O(1) so holding the workload manager's lock
    across them is fine.
    """

    def __init__(self, config: TenancyConfig,
                 clock: Callable[[], float] = time.monotonic,
                 faults=None):
        self.config = config
        self.faults = faults
        self._clock = clock
        self._lock = threading.Lock()
        self._states = {name: _TenantState(quota, clock)
                        for name, quota in config.quotas().items()}

    # -- identity ----------------------------------------------------------------

    @property
    def tenant_names(self) -> tuple[str, ...]:
        return tuple(self._states)

    @property
    def default_tenant(self) -> str:
        return self.config.default

    def resolve(self, tenant_id: Optional[str]) -> str:
        """Map a connection's presented tenant id to a configured tenant.

        ``None``/empty lands on the default tenant; an explicit id must
        name a configured tenant or the logon fails cleanly.
        """
        if not tenant_id:
            return self.config.default
        name = tenant_id.strip().lower()
        if name not in self._states:
            raise UnknownTenantError(
                f"unknown tenant {name!r}; configured tenants are "
                f"{sorted(self._states)} (check the --tenants config or "
                f"the client's tenant id)")
        return name

    def quota(self, tenant: str) -> TenantQuota:
        return self._states[tenant].quota

    # -- admission (quotas) ------------------------------------------------------

    def admit(self, tenant: str, wl_class: str, sql: str = "") -> None:
        """Enforce the tenant's quotas for one arriving request.

        Counts the arrival, then sheds with
        :class:`~repro.errors.TenantQuotaError` when the queue-depth quota
        or the QPS bucket rejects it — or when the ``tenancy`` fault site
        scripts a :data:`~repro.core.faults.QUOTA_EXCEEDED`. Concurrency
        is enforced at dispatch (:meth:`has_slot`), not here: a tenant at
        its running cap may still queue up to its queue depth. ``admin``
        requests (the SHOW HYPERQ observability verbs) skip the QPS
        bucket — a throttled tenant must still be able to inspect its
        own sheds — but stay bounded by queue depth.
        """
        state = self._states[tenant]
        now = self._clock()
        with self._lock:
            state.counts["requests"] += 1
            state.arrivals.append(now)
            while state.arrivals and state.arrivals[0] < now - QPS_WINDOW:
                state.arrivals.popleft()
        fault = None
        if self.faults is not None:
            fault = self.faults.draw("tenancy", op=f"{tenant}:{wl_class}")
        if fault is not None and fault.kind == flt.QUOTA_EXCEEDED:
            self._shed(state, "injected quota fault")
        quota = state.quota
        if quota.queue_depth and state.queued >= quota.queue_depth:
            self._shed(state, f"queue depth {quota.queue_depth} reached")
        if wl_class != ADMIN and not state.bucket.take(now):
            self._shed(state, f"QPS limit {quota.rate:g}/s exceeded")

    def _shed(self, state: _TenantState, reason: str) -> None:
        with self._lock:
            state.counts["shed"] += 1
            state.counts["quota_sheds"] += 1
        trace_mod.add_event("quota_exceeded", tenant=state.quota.name,
                            reason=reason)
        raise TenantQuotaError(
            f"QUOTA_EXCEEDED for tenant '{state.quota.name}' ({reason}), "
            f"retry after {state.quota.retry_after:g}s")

    # -- scheduling hooks (called by the workload manager) -----------------------

    def has_slot(self, tenant: str) -> bool:
        state = self._states[tenant]
        quota = state.quota
        return not quota.max_concurrency \
            or state.running < quota.max_concurrency

    def note_queued(self, tenant: str) -> None:
        with self._lock:
            self._states[tenant].queued += 1

    def note_unqueued(self, tenant: str) -> None:
        with self._lock:
            self._states[tenant].queued -= 1

    def note_dispatch(self, tenant: str, wait: float) -> None:
        state = self._states[tenant]
        with self._lock:
            state.queued -= 1
            state.running += 1
            state.counts["admitted"] += 1
            state.queue_wait.observe(wait)

    def note_finish(self, tenant: str) -> None:
        with self._lock:
            self._states[tenant].running -= 1

    # -- scheduler wiring --------------------------------------------------------

    def scheduler_weights(self, class_weights: dict[str, float]) \
            -> dict[tuple[str, str], float]:
        """(tenant, class) -> tenant share × class share, the weight table
        the workload manager's DRR runs over."""
        return {(tenant, wl_class): state.quota.weight * weight
                for tenant, state in self._states.items()
                for wl_class, weight in class_weights.items()}

    def result_cache_shares(self) -> dict[str, float]:
        return {name: state.quota.result_cache_share
                for name, state in self._states.items()
                if state.quota.result_cache_share > 0}

    def translation_cache_shares(self) -> dict[str, float]:
        return {name: state.quota.translation_cache_share
                for name, state in self._states.items()
                if state.quota.translation_cache_share > 0}

    # -- observability -----------------------------------------------------------

    def qps(self, tenant: str) -> float:
        state = self._states[tenant]
        now = self._clock()
        with self._lock:
            while state.arrivals and state.arrivals[0] < now - QPS_WINDOW:
                state.arrivals.popleft()
            return len(state.arrivals) / QPS_WINDOW

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant counters + queue-wait histogram + live gauges."""
        now = self._clock()
        with self._lock:
            report = {}
            for name, state in self._states.items():
                arrivals = sum(1 for t in state.arrivals
                               if t >= now - QPS_WINDOW)
                report[name] = {
                    **dict(state.counts),
                    "running": state.running,
                    "queued": state.queued,
                    "qps": arrivals / QPS_WINDOW,
                    "queue_wait": state.queue_wait.snapshot(),
                }
            return report


# -- fleet-wide reporting ------------------------------------------------------------


def histogram_quantile(snapshot: dict, fraction: float) -> float:
    """Upper-bound estimate of a quantile from a
    :class:`~repro.core.workload.LatencyHistogram` snapshot (the last,
    unbounded bucket reports the observed max)."""
    count = snapshot.get("count", 0)
    if not count:
        return 0.0
    target = fraction * count
    cumulative = 0
    for index, bucket in enumerate(snapshot["buckets"]):
        cumulative += bucket
        if cumulative >= target:
            if index < len(HISTOGRAM_BOUNDS):
                return HISTOGRAM_BOUNDS[index]
            break
    return snapshot.get("max", HISTOGRAM_BOUNDS[-1])


def tenant_report(engine) -> dict[str, dict]:
    """One engine's per-tenant stats: registry counters plus the byte
    accounting the caches keep per inserting tenant. Plain dicts all the
    way down, so the gateway can pickle a worker's report over control
    RPC and :func:`merge_reports` can sum reports fleet-wide."""
    registry = getattr(engine, "tenancy", None)
    if registry is None:
        return {}
    report = registry.snapshot()
    result_bytes = {}
    translation_bytes = {}
    result_cache = getattr(engine, "result_cache", None)
    if result_cache is not None:
        result_bytes = result_cache.tenant_bytes()
    cache = getattr(engine, "cache", None)
    if cache is not None:
        translation_bytes = cache.tenant_bytes()
    for name, stats in report.items():
        stats["result_cache_bytes"] = result_bytes.get(name, 0)
        stats["translation_cache_bytes"] = translation_bytes.get(name, 0)
        stats["cache_bytes"] = (stats["result_cache_bytes"]
                                + stats["translation_cache_bytes"])
    return report


def merge_reports(reports) -> dict[str, dict]:
    """Sum per-worker tenant reports into one fleet-wide view: counters,
    gauges, QPS, and cache bytes add; queue-wait histograms merge
    bucket-wise (max of maxes)."""
    merged: dict[str, dict] = {}
    for report in reports:
        for tenant, stats in report.items():
            into = merged.get(tenant)
            if into is None:
                into = {key: (dict(value) if isinstance(value, dict)
                              else value)
                        for key, value in stats.items()}
                merged[tenant] = into
                continue
            for key, value in stats.items():
                if key == "queue_wait":
                    hist = into["queue_wait"]
                    hist["buckets"] = [a + b for a, b in zip(
                        hist["buckets"], value["buckets"])]
                    total = hist["count"] + value["count"]
                    if total:
                        hist["mean"] = (
                            hist["mean"] * hist["count"]
                            + value["mean"] * value["count"]) / total
                    hist["count"] = total
                    hist["max"] = max(hist["max"], value["max"])
                else:
                    into[key] = into.get(key, 0) + value
    return merged


def render_tenants(report: dict[str, dict], workers: int = 1) -> str:
    """The ``SHOW HYPERQ TENANTS`` text: one line per tenant with the
    fleet-summed QPS, shed count, queue-wait p99, and cache bytes."""
    lines = [f"# hyperq tenants ({len(report)} tenants, "
             f"{workers} worker{'s' if workers != 1 else ''})",
             "tenant\tqps\trequests\tadmitted\tshed\trunning\tqueued"
             "\tqueue_wait_p99_ms\tcache_bytes"]
    for name in sorted(report):
        stats = report[name]
        p99 = histogram_quantile(stats.get("queue_wait", {}), 0.99)
        lines.append(
            f"{name}\t{stats.get('qps', 0.0):.2f}"
            f"\t{stats.get('requests', 0)}"
            f"\t{stats.get('admitted', 0)}"
            f"\t{stats.get('shed', 0)}"
            f"\t{stats.get('running', 0)}"
            f"\t{stats.get('queued', 0)}"
            f"\t{p99 * 1e3:.1f}"
            f"\t{stats.get('cache_bytes', 0)}")
    return "\n".join(lines)
