"""Per-request timing breakdown (the instrumentation behind Figure 9).

The paper reports three components of end-to-end response time:

* *query translation* — parse + bind + transform + serialize inside Hyper-Q,
* *execution* — time spent in the target database,
* *result transformation* — TDF decode + conversion to the source binary
  format.

The reproduction adds a fourth, *cache lookup* — fingerprinting plus
translation-cache probe/insert time — so memoized requests keep the Figure 9
instrumentation honest: a cache hit reports near-zero translation time but
still accounts for the lookup work it did.

The workload manager adds *queue wait*: time a request spent in its class's
admission queue before a worker picked it up. It accumulates into ``total``
and ``overhead`` — queueing is proxy-imposed latency the application would
not see against the original warehouse.

The streaming result pipeline adds *first row*: the latency from request
start until the first converted chunk is available to the wire. It is a
point-in-time mark, not an accumulating stage — it overlaps translation and
execution — so it is reported separately and never folded into ``total``.

:class:`RequestTiming` collects these for one request; :class:`TimingLog`
aggregates them across a workload run. A log constructed with a
:class:`~repro.core.trace.MetricsRegistry` additionally feeds per-stage
latency histograms (``hyperq_stage_seconds_<stage>``) and the request
counter on every record, so the Figure 9 instrumentation and the
observability layer read from one stream.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

#: Stage names accepted by :meth:`RequestTiming.measure`.
STAGES = ("translation", "execution", "result_conversion", "cache_lookup",
          "dependency_extract", "queue_wait")


@dataclass
class RequestTiming:
    """Wall-clock seconds spent in each pipeline stage for one request."""

    translation: float = 0.0
    execution: float = 0.0
    result_conversion: float = 0.0
    cache_lookup: float = 0.0
    #: Dependency extraction over the bound plan plus result-cache
    #: bookkeeping (0.0 when the semantic layers are disabled).
    dependency_extract: float = 0.0
    #: Time spent queued in the workload manager before execution began
    #: (0.0 when no workload manager is configured).
    queue_wait: float = 0.0
    #: Latency from request start to the first converted chunk (0.0 until
    #: :meth:`mark_first_row` fires; excluded from :attr:`total`).
    first_row: float = 0.0
    started: float = field(default_factory=time.perf_counter, repr=False,
                           compare=False)

    @property
    def total(self) -> float:
        return (self.translation + self.execution + self.result_conversion
                + self.cache_lookup + self.dependency_extract
                + self.queue_wait)

    @property
    def overhead(self) -> float:
        """Hyper-Q's share of the request (everything but execution)."""
        return (self.translation + self.result_conversion + self.cache_lookup
                + self.dependency_extract + self.queue_wait)

    @property
    def overhead_fraction(self) -> float:
        return self.overhead / self.total if self.total else 0.0

    @contextmanager
    def measure(self, stage: str):
        """Accumulate elapsed time into one of the stage buckets."""
        if stage not in STAGES:
            raise ValueError(f"unknown timing stage {stage!r}")
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            setattr(self, stage, getattr(self, stage) + elapsed)

    def mark_first_row(self) -> None:
        """Record time-to-first-row once; later calls are no-ops."""
        if not self.first_row:
            self.first_row = time.perf_counter() - self.started


@dataclass
class TimingLog:
    """Aggregated timings across many requests (Figure 9 series)."""

    requests: list[RequestTiming] = field(default_factory=list)
    #: Optional :class:`~repro.core.trace.MetricsRegistry` mirrored into on
    #: every :meth:`record` (typed loosely to keep this module import-light).
    metrics: Optional[object] = field(default=None, repr=False, compare=False)

    def record(self, timing: RequestTiming) -> None:
        self.requests.append(timing)
        registry = self.metrics
        if registry is None:
            return
        registry.counter("hyperq_timed_requests_total").inc()
        for stage in STAGES:
            value = getattr(timing, stage)
            if value > 0.0:
                registry.histogram(
                    f"hyperq_stage_seconds_{stage}").observe(value)
        registry.histogram("hyperq_pipeline_seconds").observe(timing.total)
        if timing.first_row:
            registry.histogram("hyperq_first_row_seconds").observe(
                timing.first_row)

    @property
    def translation(self) -> float:
        return sum(t.translation for t in self.requests)

    @property
    def execution(self) -> float:
        return sum(t.execution for t in self.requests)

    @property
    def result_conversion(self) -> float:
        return sum(t.result_conversion for t in self.requests)

    @property
    def cache_lookup(self) -> float:
        return sum(t.cache_lookup for t in self.requests)

    @property
    def dependency_extract(self) -> float:
        return sum(t.dependency_extract for t in self.requests)

    @property
    def queue_wait(self) -> float:
        return sum(t.queue_wait for t in self.requests)

    @property
    def mean_first_row(self) -> float:
        """Mean time-to-first-row across requests that produced rows."""
        marked = [t.first_row for t in self.requests if t.first_row]
        return sum(marked) / len(marked) if marked else 0.0

    @property
    def total(self) -> float:
        return (self.translation + self.execution + self.result_conversion
                + self.cache_lookup + self.dependency_extract
                + self.queue_wait)

    def breakdown(self) -> dict[str, float]:
        """Fractions of end-to-end time per stage (sums to 1.0)."""
        total = self.total
        if not total:
            return {stage: 0.0 for stage in STAGES}
        return {stage: getattr(self, stage) / total for stage in STAGES}

    @property
    def overhead_fraction(self) -> float:
        """Hyper-Q overhead as a fraction of end-to-end time (Figure 9)."""
        total = self.total
        if not total:
            return 0.0
        return (self.translation + self.result_conversion + self.cache_lookup
                + self.dependency_extract + self.queue_wait) / total
