"""Request-scoped tracing and process-wide metrics (the observability layer).

Hyper-Q sits invisibly on the wire while rewriting every request — which
makes it exactly the kind of system you cannot debug or tune blind. This
module gives every wire request a **trace**: a tree of spans covering the
pipeline of Figure 3 (protocol decode → parse → bind → transform → serialize
→ cache lookup → admission wait → ODBC execute → convert → wire encode),
each span carrying its duration, byte/row counts, and outcome. Rewrite rules
that fire appear as child spans of ``transform`` with before/after XTRA
digests; emulator child statements, retries, and failovers appear as child
spans of ``execution`` via context propagation.

Alongside traces, a :class:`MetricsRegistry` holds process-wide counters,
gauges, and mergeable log-linear histograms (p50/p95/p99) — the single home
for the ad-hoc counters that used to live in :mod:`repro.core.timing` and
:mod:`repro.core.tracker`.

Sinks (owned by :class:`TraceHub`, one per engine, typically one per
process):

* a bounded in-memory **ring buffer** of finished traces, queryable over the
  wire via ``SHOW HYPERQ TRACE <id>`` / ``SHOW HYPERQ TRACES``;
* an optional structured **JSONL trace log** (one trace per line);
* a **slow-query log** gated on per-workload-class latency thresholds;
* a **text metrics dump** via ``SHOW HYPERQ METRICS`` and the CLI.

Context propagation uses a :mod:`contextvars` variable holding the active
span. Worker threads (the workload manager's pool, converter encode workers)
start with an empty context; callers hand the active span across explicitly
with :func:`activate`. When no trace is active every instrumentation point
degrades to a cheap no-op, which is what keeps the warm-cache hot path
within the ~5% overhead budget (``benchmarks/bench_trace_overhead.py``).
"""

from __future__ import annotations

import contextvars
import enum
import json
import math
import threading
import time
import weakref
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

#: The active span for the current thread/context (None = not tracing).
_ACTIVE: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "hyperq_active_span", default=None)


# -- spans and traces ----------------------------------------------------------------


class Span:
    """One timed operation inside a trace.

    Spans form a tree through ``parent_id``; intervals are perf-counter
    offsets (seconds) relative to the trace's start, so children can be
    checked to nest within their parent without wall-clock skew.
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "start", "end",
                 "attrs", "events", "outcome", "__weakref__")

    def __init__(self, trace: "Trace", span_id: int, parent_id: Optional[int],
                 name: str, start: float):
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: dict[str, object] = {}
        self.events: list[tuple[str, dict]] = []
        self.outcome = "ok"

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def event(self, name: str, **attrs: object) -> None:
        """Attach a point-in-time event (fault injected, retry, failover...)."""
        self.events.append((name, attrs))

    def finish(self, outcome: Optional[str] = None) -> None:
        if self.end is None:
            self.end = self.trace.clock()
        if outcome is not None:
            self.outcome = outcome

    def to_dict(self) -> dict:
        out: dict[str, object] = {
            "id": self.span_id,
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "outcome": self.outcome,
        }
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = [{"name": name, **attrs}
                             for name, attrs in self.events]
        return out


class Trace:
    """One request's span tree, identified by a hub-scoped integer id."""

    def __init__(self, trace_id: int, name: str, sql: str = ""):
        self.trace_id = trace_id
        self.name = name
        self.sql = sql
        self.wall_started = time.time()
        self._t0 = time.perf_counter()
        self._next_span = 0
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.done = False
        self.root = self.new_span(name, parent=None)
        if sql:
            self.root.annotate("sql", sql[:200])

    def clock(self) -> float:
        return time.perf_counter() - self._t0

    def new_span(self, name: str, parent: Optional[Span],
                 start: Optional[float] = None) -> Optional[Span]:
        """Allocate a span; returns None once the trace has finished (a
        timed-out straggler must not mutate an already-recorded trace)."""
        with self._lock:
            if self.done and self.spans:
                return None
            span = Span(self, self._next_span,
                        parent.span_id if parent is not None else None,
                        name, self.clock() if start is None else start)
            self._next_span += 1
            self.spans.append(span)
        return span

    def finish(self, outcome: str = "ok") -> None:
        """End the trace: the root closes and every still-open span is
        clamped to the root's end, so children always nest within parents
        even when a consumer abandoned a lazy stream mid-pull."""
        with self._lock:
            if self.done:
                return
            self.done = True
            root = self.spans[0]
            if root.end is None:
                root.end = self.clock()
                root.outcome = outcome
            for span in self.spans[1:]:
                if span.end is None:
                    span.end = root.end
                    span.outcome = "unfinished"
                elif span.end > root.end:
                    span.end = root.end

    @property
    def duration(self) -> float:
        return self.spans[0].duration

    # -- views ------------------------------------------------------------------

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Pre-order (depth, span) traversal of the tree."""
        by_parent: dict[Optional[int], list[Span]] = {}
        for span in self.spans:
            by_parent.setdefault(span.parent_id, []).append(span)

        def visit(span: Span, depth: int):
            yield depth, span
            for child in by_parent.get(span.span_id, ()):
                yield from visit(child, depth + 1)

        yield from visit(self.spans[0], 0)

    def stage_names(self) -> list[str]:
        """Span names in pre-order, the ``stages`` half of a trace summary."""
        return [span.name for __, span in self.walk()]

    def fired_rules(self) -> list[str]:
        """Names of rewrite-rule spans, in firing order."""
        return [span.name.split(":", 1)[1] for span in self.spans
                if span.name.startswith("rule:")]

    def summary(self) -> dict:
        """The deterministic projection checked into the golden corpus:
        stage list and fired-rule names — no durations, no ids."""
        return {"stages": self.stage_names(), "rules": self.fired_rules()}

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "sql": self.sql[:500],
            "wall_started": round(self.wall_started, 3),
            "duration": round(self.duration, 6),
            "outcome": self.spans[0].outcome,
            "spans": [span.to_dict() for span in self.spans],
        }


# -- context propagation -------------------------------------------------------------


def current_span() -> Optional[Span]:
    return _ACTIVE.get()


def current_trace() -> Optional[Trace]:
    span = _ACTIVE.get()
    return span.trace if span is not None else None


@contextmanager
def activate(span: Optional[Span]):
    """Adopt *span* as the active span — the explicit hand-off for work
    executing on another thread (workload pool workers, stragglers)."""
    token = _ACTIVE.set(span)
    try:
        yield span
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, **attrs: object):
    """Open a child span of the active span for the duration of the block.

    No-op (yields None) when no trace is active, so instrumentation points
    cost one context-var read on untraced paths. Exceptions mark the span's
    outcome and propagate.
    """
    parent = _ACTIVE.get()
    if parent is None:
        yield None
        return
    child = parent.trace.new_span(name, parent)
    if child is None:  # trace already finished (late straggler)
        yield None
        return
    if attrs:
        child.attrs.update(attrs)
    token = _ACTIVE.set(child)
    try:
        yield child
    except BaseException as error:
        child.finish(f"error:{type(error).__name__}")
        raise
    else:
        child.finish()
    finally:
        _ACTIVE.reset(token)


def begin_span(name: str, **attrs: object) -> Optional[Span]:
    """Open a child span that an explicit :meth:`Span.finish` will close —
    for intervals that end on a different thread (queue wait) or inside a
    lazy generator (result conversion)."""
    parent = _ACTIVE.get()
    if parent is None:
        return None
    child = parent.trace.new_span(name, parent)
    if child is not None and attrs:
        child.attrs.update(attrs)
    return child


def add_event(name: str, **attrs: object) -> None:
    """Attach an event to the active span (fault injections, resilience
    actions); silently dropped when not tracing."""
    active = _ACTIVE.get()
    if active is not None:
        active.event(name, **attrs)


def add_span(name: str, start: float, end: float, **attrs: object) -> None:
    """Record an already-measured child interval under the active span
    (per-rule transform spans are timed at pass granularity)."""
    parent = _ACTIVE.get()
    if parent is None:
        return
    child = parent.trace.new_span(name, parent, start=start)
    if child is None:
        return
    if attrs:
        child.attrs.update(attrs)
    child.end = end


# -- XTRA digests --------------------------------------------------------------------


def xtra_digest(node: object) -> str:
    """A short structural digest of an XTRA statement (or any node tree).

    Walks type names and public fields recursively — stable across runs and
    processes (no object ids), cheap enough to compute once per transform
    pass. Used by rule spans to prove what a rewrite actually changed.
    """
    crc = 0

    def feed(text: str) -> None:
        nonlocal crc
        crc = zlib.crc32(text.encode("utf-8"), crc)

    seen: set[int] = set()

    def walk(obj: object, depth: int) -> None:
        if depth > 64:
            feed("...")
            return
        if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
            feed(repr(obj))
            return
        if isinstance(obj, enum.Enum):
            feed(f"{type(obj).__name__}.{obj.name}")
            return
        if isinstance(obj, (list, tuple)):
            feed("[")
            for item in obj:
                walk(item, depth + 1)
                feed(",")
            feed("]")
            return
        if isinstance(obj, dict):
            feed("{")
            for key in sorted(obj, key=repr):
                feed(repr(key) + ":")
                walk(obj[key], depth + 1)
                feed(",")
            feed("}")
            return
        if isinstance(obj, (set, frozenset)):
            feed("{" + ",".join(sorted(repr(i) for i in obj)) + "}")
            return
        if id(obj) in seen:  # defensive: XTRA is a tree, but never recurse
            feed("<cycle>")
            return
        seen.add(id(obj))
        feed(type(obj).__name__ + "(")
        fields = getattr(obj, "__dict__", None)
        if fields is None:
            slots = getattr(type(obj), "__slots__", ())
            fields = {name: getattr(obj, name, None) for name in slots}
        for key in sorted(fields):
            if key.startswith("_"):
                continue
            value = fields[key]
            if callable(value):
                continue
            feed(key + "=")
            walk(value, depth + 1)
            feed(",")
        feed(")")
        seen.discard(id(obj))

    walk(node, 0)
    return f"{crc & 0xFFFFFFFF:08x}"


# -- metrics -------------------------------------------------------------------------


class Counter:
    """A monotonically non-decreasing counter (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A mergeable log-linear histogram (HDR-style).

    Each power-of-two range is divided into :data:`SUBBUCKETS` linear
    buckets, so any recorded value lands in a bucket whose upper/lower bound
    ratio is at most ``1 + 1/SUBBUCKETS`` — the relative error bound on
    every quantile estimate. Two histograms merge by adding bucket counts,
    which makes merging associative and commutative (the property suite
    checks both), so per-thread or per-replica histograms can be combined
    without losing quantile fidelity.
    """

    SUBBUCKETS = 16

    __slots__ = ("name", "_lock", "_counts", "_zero", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._counts: dict[int, int] = {}
        self._zero = 0  # values <= 0 (durations can round down to 0.0)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @classmethod
    def _index(cls, value: float) -> int:
        mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
        sub = int((mantissa - 0.5) * 2 * cls.SUBBUCKETS)
        if sub >= cls.SUBBUCKETS:  # guard m == 1.0 float edge
            sub = cls.SUBBUCKETS - 1
        return exponent * cls.SUBBUCKETS + sub

    @classmethod
    def bucket_bounds(cls, index: int) -> tuple[float, float]:
        exponent, sub = divmod(index, cls.SUBBUCKETS)
        base = math.ldexp(1.0, exponent - 1)  # 2**(e-1)
        lower = base * (1 + sub / cls.SUBBUCKETS)
        upper = base * (1 + (sub + 1) / cls.SUBBUCKETS)
        return lower, upper

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= 0.0:
                self._zero += 1
                return
            index = self._index(value)
            self._counts[index] = self._counts.get(index, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile: the upper bound of the bucket holding the
        rank-⌈q·n⌉ smallest value, so for a true quantile value ``t > 0``
        the estimate lies in ``[t, t * (1 + 1/SUBBUCKETS)]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self._count))
            if rank <= self._zero:
                return 0.0
            seen = self._zero
            for index in sorted(self._counts):
                seen += self._counts[index]
                if seen >= rank:
                    return self.bucket_bounds(index)[1]
            return self._max  # unreachable unless counts raced a snapshot

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (in place); bucket layouts are
        identical by construction, so this is pure count addition."""
        with other._lock:
            counts = dict(other._counts)
            zero, count = other._zero, other._count
            total, lo, hi = other._sum, other._min, other._max
        with self._lock:
            for index, n in counts.items():
                self._counts[index] = self._counts.get(index, 0) + n
            self._zero += zero
            self._count += count
            self._sum += total
            self._min = min(self._min, lo)
            self._max = max(self._max, hi)
        return self

    def merged(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both inputs' observations."""
        out = Histogram(self.name)
        out.merge(self)
        out.merge(other)
        return out

    def state(self) -> tuple:
        """Comparable full state (the merge property tests diff these).

        Every field is exact under merge reordering except the running
        float sum, which callers must compare with a tolerance.
        """
        with self._lock:
            return (tuple(sorted(self._counts.items())), self._zero,
                    self._count, self._sum, self._min, self._max)

    def state_dict(self) -> dict:
        """Portable full state for cross-process aggregation (the gateway
        ships these between workers). JSON/pickle-safe: bucket counts as
        pairs, empty min/max as None."""
        with self._lock:
            return {
                "counts": sorted(self._counts.items()),
                "zero": self._zero,
                "count": self._count,
                "sum": self._sum,
                "min": None if self._count == 0 else self._min,
                "max": None if self._count == 0 else self._max,
            }

    def merge_state_dict(self, state: dict) -> "Histogram":
        """Fold a :meth:`state_dict` into this histogram — the cross-process
        counterpart of :meth:`merge`, same bucket-addition algebra."""
        with self._lock:
            for index, n in state["counts"]:
                self._counts[index] = self._counts.get(index, 0) + n
            self._zero += state["zero"]
            self._count += state["count"]
            self._sum += state["sum"]
            if state["min"] is not None and state["min"] < self._min:
                self._min = state["min"]
            if state["max"] is not None and state["max"] > self._max:
                self._max = state["max"]
        return self

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Process-wide named metrics: counters, gauges, histograms.

    Get-or-create accessors are thread-safe and idempotent, so any layer can
    grab its instrument by name without coordination. One registry is shared
    per engine (and therefore per server process); tests build their own for
    isolation.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.snapshot() for n, h in histograms.items()},
        }

    # -- cross-process aggregation (the gateway's fleet-wide view) ---------------

    def dump_state(self) -> dict:
        """Full portable state: counters and gauges by value, histograms as
        mergeable bucket states. One gateway worker's contribution to the
        fleet-wide ``SHOW HYPERQ METRICS``."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in counters.items()},
            "gauges": {n: g.value for n, g in gauges.items()},
            "histograms": {n: h.state_dict() for n, h in histograms.items()},
        }

    def merge_state(self, state: dict) -> "MetricsRegistry":
        """Fold one :meth:`dump_state` into this registry: counters and
        gauges add, histograms merge by bucket addition — associative and
        commutative, so fleet aggregation order never changes the answer."""
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).add(value)
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name).merge_state_dict(hist_state)
        return self

    def render_text(self) -> str:
        """The ``SHOW HYPERQ METRICS`` / CLI dump: one metric per line,
        sorted, exposition-format-ish."""
        snap = self.snapshot()
        lines: list[str] = []
        for name in sorted(snap["counters"]):
            lines.append(f"counter {name} {snap['counters'][name]}")
        for name in sorted(snap["gauges"]):
            lines.append(f"gauge {name} {snap['gauges'][name]:g}")
        for name in sorted(snap["histograms"]):
            h = snap["histograms"][name]
            lines.append(
                f"histogram {name} count={h['count']} sum={h['sum']:.6f} "
                f"mean={h['mean']:.6f} p50={h['p50']:.6f} "
                f"p95={h['p95']:.6f} p99={h['p99']:.6f}")
        return "\n".join(lines)


def aggregate_metrics(states: list[dict]) -> MetricsRegistry:
    """Merge per-worker :meth:`MetricsRegistry.dump_state` snapshots into
    one fleet-wide registry."""
    fleet = MetricsRegistry()
    for state in states:
        fleet.merge_state(state)
    return fleet


# -- the hub -------------------------------------------------------------------------


#: Default latency thresholds (seconds) for the slow-query log, keyed by
#: workload class; ``None``-classed requests use ``"default"``.
DEFAULT_SLOW_THRESHOLDS = {
    "interactive": 0.5,
    "reporting": 5.0,
    "etl": 60.0,
    "admin": 5.0,
    "default": 1.0,
}

#: Live hubs (weak), so the test harness can dump every ring buffer when a
#: test fails without threading a handle through each fixture.
_LIVE_HUBS: "weakref.WeakSet[TraceHub]" = weakref.WeakSet()


def live_hubs() -> list["TraceHub"]:
    return list(_LIVE_HUBS)


class TraceHub:
    """Per-engine trace collection point plus its metric registry and sinks."""

    def __init__(self, enabled: bool = True, ring_size: int = 256,
                 trace_log: Optional[str] = None,
                 slow_query_log: Optional[str] = None,
                 slow_thresholds: Optional[dict[str, float]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 id_offset: int = 0, id_stride: int = 1):
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slow_thresholds = dict(DEFAULT_SLOW_THRESHOLDS)
        if slow_thresholds:
            self.slow_thresholds.update(slow_thresholds)
        self._lock = threading.Lock()
        self._ring: "OrderedDict[int, Trace]" = OrderedDict()
        self._ring_size = ring_size
        #: Gateway workers interleave trace-id sequences (worker *i* of *N*
        #: uses offset ``i``, stride ``N``) so every trace id is unique
        #: fleet-wide and ``SHOW HYPERQ TRACE <id>`` can locate its worker.
        if id_stride < 1:
            raise ValueError("id_stride must be >= 1")
        self._next_id = id_offset
        self._id_stride = id_stride
        self._trace_log = trace_log
        self._slow_log = slow_query_log
        #: In-memory slow-query records (kept even without a log file, so
        #: tests and the admin command can read them back).
        self.slow_queries: list[dict] = []
        _LIVE_HUBS.add(self)

    # -- trace lifecycle ---------------------------------------------------------

    def start_trace(self, name: str, sql: str = "") -> Trace:
        with self._lock:
            self._next_id += self._id_stride
            trace = Trace(self._next_id, name, sql)
        return trace

    @contextmanager
    def request(self, name: str, sql: str = ""):
        """Trace one request end to end on the current thread.

        Yields None (and traces nothing) when the hub is disabled or a
        trace is already active — the engine nests under the wire server's
        trace instead of starting its own.
        """
        if not self.enabled or _ACTIVE.get() is not None:
            yield None
            return
        trace = self.start_trace(name, sql)
        token = _ACTIVE.set(trace.root)
        try:
            yield trace
        except BaseException as error:
            self.finish_trace(trace, f"error:{type(error).__name__}")
            raise
        else:
            self.finish_trace(trace)
        finally:
            _ACTIVE.reset(token)

    def finish_trace(self, trace: Trace, outcome: str = "ok",
                     wl_class: Optional[str] = None) -> None:
        trace.finish(outcome)
        self.metrics.counter("hyperq_requests_total").inc()
        if outcome != "ok":
            self.metrics.counter("hyperq_request_errors_total").inc()
        self.metrics.histogram("hyperq_request_seconds").observe(
            trace.duration)
        record: Optional[dict] = None
        threshold = self.slow_thresholds.get(
            wl_class or "default", self.slow_thresholds["default"])
        if trace.duration >= threshold:
            self.metrics.counter("hyperq_slow_queries_total").inc()
            record = {
                "trace_id": trace.trace_id,
                "wl_class": wl_class or "default",
                "threshold": threshold,
                "duration": round(trace.duration, 6),
                "sql": trace.sql[:500],
            }
        with self._lock:
            self._ring[trace.trace_id] = trace
            while len(self._ring) > self._ring_size:
                self._ring.popitem(last=False)
            if record is not None:
                self.slow_queries.append(record)
        if record is not None and self._slow_log:
            self._append_line(self._slow_log, json.dumps(
                record, sort_keys=True))
        if self._trace_log:
            self._append_line(self._trace_log, json.dumps(
                trace.to_dict(), sort_keys=True))

    def _append_line(self, path: str, line: str) -> None:
        with self._lock:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    # -- inspection --------------------------------------------------------------

    def get_trace(self, trace_id: int) -> Optional[Trace]:
        with self._lock:
            return self._ring.get(trace_id)

    def trace_ids(self) -> list[int]:
        with self._lock:
            return list(self._ring)

    def last_trace(self) -> Optional[Trace]:
        with self._lock:
            if not self._ring:
                return None
            return next(reversed(self._ring.values()))

    def dump_jsonl(self) -> str:
        """The ring buffer as JSONL — uploaded as a CI artifact when an
        integration/resilience test fails."""
        with self._lock:
            traces = list(self._ring.values())
        return "\n".join(json.dumps(t.to_dict(), sort_keys=True)
                         for t in traces)

    def render_metrics(self) -> str:
        return self.metrics.render_text()


def render_trace(trace: Trace) -> list[str]:
    """Human-readable span-tree lines (the ``SHOW HYPERQ TRACE`` payload)."""
    lines = [f"trace {trace.trace_id} [{trace.spans[0].outcome}] "
             f"{trace.duration * 1e3:.3f}ms :: {trace.sql[:120]}"]
    for depth, node in trace.walk():
        attrs = " ".join(f"{key}={value}" for key, value
                         in sorted(node.attrs.items()))
        line = (f"{'  ' * depth}{node.name} {node.duration * 1e3:.3f}ms"
                f" [{node.outcome}]")
        if attrs:
            line += f" {attrs}"
        lines.append(line)
        for name, detail in node.events:
            event_attrs = " ".join(f"{key}={value}" for key, value
                                   in sorted(detail.items()))
            lines.append(f"{'  ' * (depth + 1)}! {name}"
                         + (f" {event_attrs}" if event_attrs else ""))
    return lines


def assert_span_tree(trace: Trace) -> None:
    """Structural invariants every finished trace must satisfy (shared by
    the integration suites): exactly one root, every child points at a real
    parent, children nest within their parent's interval."""
    roots = [span for span in trace.spans if span.parent_id is None]
    if len(roots) != 1:
        raise AssertionError(
            f"trace {trace.trace_id} has {len(roots)} root spans")
    by_id = {span.span_id: span for span in trace.spans}
    for node in trace.spans:
        if node.end is None:
            raise AssertionError(
                f"span {node.name} in trace {trace.trace_id} never finished")
        if node.parent_id is None:
            continue
        parent = by_id.get(node.parent_id)
        if parent is None:
            raise AssertionError(
                f"span {node.name} has unknown parent {node.parent_id}")
        if node.start < parent.start - 1e-9 or node.end > parent.end + 1e-9:
            raise AssertionError(
                f"span {node.name} [{node.start:.6f}, {node.end:.6f}] "
                f"escapes parent {parent.name} "
                f"[{parent.start:.6f}, {parent.end:.6f}]")
