"""Feature-usage instrumentation for the workload study (Section 7.1).

Every pipeline stage calls :meth:`FeatureTracker.note` when it encounters one
of the 27 tracked non-standard features. Per query, the tracker records which
features (and therefore which difficulty classes) the query uses and at which
pipeline stage each rewrite was carried out — the raw data behind Figures 8a
and 8b and the component attribution of Table 2.

One tracker is shared engine-wide, which means *every session thread* in the
wire server's pool mutates it concurrently. The in-flight query record is
therefore **thread-local** (each worker drives exactly one request at a
time, so "the current query" is a per-thread notion), and the workload-level
counters mutate under a lock — the unlocked counters used to drop updates
under the Section 7.3 stress shape (see the concurrent-sessions regression
test).

When a :class:`~repro.core.trace.MetricsRegistry` is attached (the engine
does this on construction), every observation is mirrored into named
counters (``hyperq_feature_*``, ``hyperq_resilience_*``,
``hyperq_workload_*``) so the Figure 8 bookkeeping and the observability
layer stay one source of truth.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.workloads.features import FEATURES_BY_NAME, Feature, FeatureClass


@dataclass
class QueryFeatureRecord:
    """Features observed while processing one request."""

    features: set[str] = field(default_factory=set)
    stages: dict[str, str] = field(default_factory=dict)

    def classes(self) -> set[FeatureClass]:
        return {FEATURES_BY_NAME[name].feature_class for name in self.features}


class FeatureTracker:
    """Aggregates per-query feature observations across a workload."""

    def __init__(self, metrics=None):
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Optional :class:`~repro.core.trace.MetricsRegistry` every
        #: observation is mirrored into.
        self.metrics = metrics
        self.query_count = 0
        self.feature_query_counts: Counter[str] = Counter()
        self.class_query_counts: Counter[FeatureClass] = Counter()
        self.observed_stages: dict[str, str] = {}
        #: Resilience actions observed across the workload (retries,
        #: failovers, timeouts...) — the operational companion to the
        #: feature counters: how often the proxy had to fight the target
        #: to keep the workload's answers flowing.
        self.resilience_counts: Counter[str] = Counter()
        #: Workload-management events keyed ``(class, event)`` — admitted /
        #: queued / shed / deadline_missed / demoted / inherited per
        #: workload class, the admission-control companion to the
        #: resilience counters.
        self.workload_counts: Counter[tuple[str, str]] = Counter()

    # -- the in-flight record (one per worker thread) ------------------------------

    @property
    def _current(self) -> Optional[QueryFeatureRecord]:
        return getattr(self._local, "record", None)

    @_current.setter
    def _current(self, record: Optional[QueryFeatureRecord]) -> None:
        self._local.record = record

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- resilience instrumentation ----------------------------------------------

    def note_resilience(self, event: str) -> None:
        """Count one resilience action (``retry``, ``failover``, ...)."""
        with self._lock:
            self.resilience_counts[event] += 1
        self._count(f"hyperq_resilience_{event}_total")

    # -- workload instrumentation ------------------------------------------------

    def note_workload(self, wl_class: str, event: str) -> None:
        """Count one workload-management event for *wl_class*."""
        with self._lock:
            self.workload_counts[(wl_class, event)] += 1
        self._count(f"hyperq_workload_{wl_class}_{event}_total")

    def workload_total(self, event: str) -> int:
        """Total occurrences of *event* across all workload classes."""
        with self._lock:
            return sum(count
                       for (_, ev), count in self.workload_counts.items()
                       if ev == event)

    @property
    def retries(self) -> int:
        with self._lock:
            return self.resilience_counts["retry"]

    @property
    def failovers(self) -> int:
        with self._lock:
            return self.resilience_counts["failover"]

    # -- per-request lifecycle ---------------------------------------------------

    def begin_query(self) -> None:
        """Start recording a new request (on the calling thread)."""
        self._current = QueryFeatureRecord()

    def note(self, feature_name: str, stage: str) -> None:
        """Record that *feature_name* was handled at pipeline *stage*.

        Unknown names raise KeyError eagerly: silent typos here would corrupt
        the workload study.
        """
        feature = FEATURES_BY_NAME[feature_name]
        assert isinstance(feature, Feature)
        record = self._current
        if record is None:
            return
        record.features.add(feature_name)
        record.stages.setdefault(feature_name, stage)
        with self._lock:
            self.observed_stages.setdefault(feature_name, stage)

    def current_notes(self) -> tuple[tuple[str, str], ...]:
        """Snapshot of the in-flight request's (feature, stage) observations.

        The translation cache stores this with each entry so memoized
        requests still report feature incidence (Figure 8 replay): on a
        cache hit the stored pairs are re-noted instead of re-discovered.
        """
        record = self._current
        if record is None:
            return ()
        return tuple(sorted(record.stages.items()))

    def end_query(self) -> QueryFeatureRecord | None:
        """Finish the current request, folding it into workload totals."""
        record = self._current
        self._current = None
        if record is None:
            return None
        with self._lock:
            self.query_count += 1
            for name in record.features:
                self.feature_query_counts[name] += 1
            for cls in record.classes():
                self.class_query_counts[cls] += 1
        self._count("hyperq_tracked_queries_total")
        for name in record.features:
            self._count(f"hyperq_feature_{name}_total")
        return record

    # -- workload-level reporting (Figure 8) ----------------------------------------

    def features_seen(self) -> set[str]:
        with self._lock:
            return set(self.feature_query_counts)

    def feature_presence_by_class(self) -> dict[FeatureClass, float]:
        """Figure 8a: fraction of the 9 tracked features per class that
        appear at least once in the workload."""
        out: dict[FeatureClass, float] = {}
        seen = self.features_seen()
        for cls in FeatureClass:
            tracked = [f for f in FEATURES_BY_NAME.values() if f.feature_class is cls]
            present = sum(1 for f in tracked if f.name in seen)
            out[cls] = present / len(tracked)
        return out

    def affected_query_fraction_by_class(self) -> dict[FeatureClass, float]:
        """Figure 8b: fraction of processed queries touched by each class.

        A query counts at most once per class but may count in several
        classes, exactly as the paper specifies.
        """
        with self._lock:
            if self.query_count == 0:
                return {cls: 0.0 for cls in FeatureClass}
            return {cls: self.class_query_counts[cls] / self.query_count
                    for cls in FeatureClass}
