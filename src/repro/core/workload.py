"""Workload management: classification, admission control, fair scheduling.

Hyper-Q sits on the wire in front of the warehouse and absorbs the *entire*
concurrent traffic of unmodified legacy applications — BI dashboards, ETL
batches, ad-hoc analyst sessions — through one proxy (Section 7.3's stress
shape). Teradata shops expect TASM-style workload management to survive that
mix, and interactive OLAP front-ends make it worse: tools in the Sigma
Worksheet mold emit bursts of machine-written queries per user gesture. A
thread per connection is not a load plan. This module is the load path:

* :class:`QueryClassifier` assigns each request a **workload class**
  (``interactive`` / ``reporting`` / ``etl`` / ``admin``) from rules over
  the bound XTRA tree and session attributes — statement kind, table
  fan-in, aggregation/windowing, estimated scan rows, cache-hit status —
  with an explicit ``SET SESSION WORKLOAD = <class>`` override.
* :class:`WorkloadManager` is the **admission controller**: per-class
  concurrency slots, token-bucket rate limits, bounded queues that shed
  load with a graceful error ("workload queue full, retry after") when they
  saturate, and **deadline propagation** — a request that waited too long
  in the queue is rejected *before* execution, never after.
* A **deficit-round-robin scheduler** (:class:`DeficitRoundRobin`; FIFO
  within a class, weighted shares across classes) drives a bounded worker
  pool, replacing thread-per-request execution in the wire server. A
  request submitted from *inside* an admitted request (an emulator-issued
  child statement) runs inline on the owning worker — priority
  inheritance — so a multi-statement emulation can never deadlock behind
  its own class limit.
* **Runtime feedback**: per-class admitted/queued/shed/deadline-missed
  counters and queue-wait / run-time histograms (:class:`WorkloadStats`,
  surfaced through :class:`~repro.core.tracker.FeatureTracker` and the
  ``queue_wait`` timing stage), plus dynamic reclassification that demotes
  sessions whose queries repeatedly overrun their class's run-time ceiling.

Everything scheduling-related is clock-injectable, and the fault plane has
an ``admission`` site (:data:`~repro.core.faults.ADMISSION_REJECT` forces a
shed; :data:`~repro.core.faults.SLOW_RESULT` adds *synthetic* queue age) so
the resilience battery can script queue-full and deadline storms
deterministically.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.errors import WorkloadDeadlineError, WorkloadShedError
from repro.core import faults as flt
from repro.core import trace as trace_mod
from repro.core.budget import BatchBudget
from repro.xtra import relational as r
from repro.xtra.visitor import walk_rel

# -- class taxonomy ------------------------------------------------------------------

INTERACTIVE = "interactive"
REPORTING = "reporting"
ETL = "etl"
ADMIN = "admin"

#: The four workload classes, in scheduling-priority order.
WORKLOAD_CLASSES = (INTERACTIVE, REPORTING, ETL, ADMIN)

#: Demotion ladder for sessions that overrun their class's run-time ceiling:
#: interactive -> reporting -> etl (admin and etl never demote).
_DEMOTION_LADDER = (INTERACTIVE, REPORTING, ETL)

#: Hyper-Q observability verbs (``SHOW HYPERQ ...``) — not source-dialect
#: SQL, so the feature extractor can't see them; classified ``admin`` by
#: text probe and exempt from tenant QPS buckets.
_OBSERVABILITY_RE = re.compile(r"\s*SHOW\s+HYPERQ\b", re.IGNORECASE)


@dataclass(frozen=True)
class WorkloadClassConfig:
    """Per-class policy knobs (the TASM band for one class).

    ``weight`` is the deficit-round-robin share; ``max_concurrency`` bounds
    simultaneously *running* requests of the class (0 = only the pool
    bounds); ``queue_depth`` bounds *waiting* requests before the class
    sheds; ``deadline`` (seconds, 0 = none) is the longest a request may
    wait in the queue before it is rejected instead of run; ``rate`` /
    ``burst`` form a token bucket (``rate`` = 0 disables rate limiting);
    ``runtime_ceiling`` (0 = none) is the run time past which a request
    counts as an overrun for session demotion; ``batch_rows`` /
    ``max_memory_bytes`` (0 = inherit) override the engine's
    :class:`~repro.core.budget.BatchBudget` for requests of this class.
    """

    name: str
    weight: float = 1.0
    max_concurrency: int = 0
    queue_depth: int = 64
    deadline: float = 0.0
    rate: float = 0.0
    burst: int = 8
    runtime_ceiling: float = 0.0
    batch_rows: int = 0
    max_memory_bytes: int = 0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("workload class weight must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")

    @property
    def retry_after(self) -> float:
        """Client back-off hint attached to shed replies."""
        if self.rate > 0:
            return max(0.1, 1.0 / self.rate)
        return 0.5


def _default_classes() -> dict[str, WorkloadClassConfig]:
    return {
        INTERACTIVE: WorkloadClassConfig(
            INTERACTIVE, weight=4.0, queue_depth=256, deadline=5.0,
            runtime_ceiling=1.0),
        REPORTING: WorkloadClassConfig(
            REPORTING, weight=2.0, queue_depth=128, deadline=30.0,
            runtime_ceiling=30.0),
        ETL: WorkloadClassConfig(
            ETL, weight=1.0, queue_depth=64, deadline=300.0),
        ADMIN: WorkloadClassConfig(ADMIN, weight=1.0, queue_depth=64),
    }


@dataclass
class WorkloadConfig:
    """Whole-manager configuration: class table plus classifier thresholds.

    ``workers`` sizes the shared executor pool. A query counts as
    ``reporting`` at ``reporting_scan_rows`` estimated scanned rows (or at
    ``reporting_fan_in`` base tables, or any aggregation/windowing) and as
    ``etl`` at ``etl_scan_rows``. ``demote_after`` consecutive run-time
    overruns demote a session one rung down the class ladder.
    """

    classes: dict[str, WorkloadClassConfig] = field(
        default_factory=_default_classes)
    workers: int = 4
    demote_after: int = 3
    reporting_scan_rows: int = 10_000
    etl_scan_rows: int = 100_000
    reporting_fan_in: int = 3

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workload manager needs at least one worker")
        for name in WORKLOAD_CLASSES:
            self.classes.setdefault(name, _default_classes()[name])

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadConfig":
        """Build a config from a plain dict (the ``HQ_WORKLOAD_CONFIG``
        JSON shape)::

            {"workers": 8, "etl_scan_rows": 50000,
             "classes": {"etl": {"weight": 1, "max_concurrency": 2},
                         "interactive": {"deadline": 2.0}}}

        Per-class keys override the defaults; unknown class names are
        rejected eagerly (a typo here would silently misroute a workload).
        """
        data = dict(data)
        class_overrides = data.pop("classes", {})
        classes = _default_classes()
        for name, overrides in class_overrides.items():
            key = name.lower()
            if key not in classes:
                raise ValueError(f"unknown workload class {name!r}")
            classes[key] = replace(classes[key], **overrides)
        known = {"workers", "demote_after", "reporting_scan_rows",
                 "etl_scan_rows", "reporting_fan_in"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown workload config keys {sorted(unknown)}")
        return cls(classes=classes, **data)

    @classmethod
    def from_env(cls, env: Optional[dict] = None) -> "WorkloadConfig":
        """Config from ``HQ_WORKLOAD_CONFIG``: inline JSON, or ``@path``
        (also a bare path) to a JSON file; unset/empty means defaults."""
        value = (env if env is not None else os.environ).get(
            "HQ_WORKLOAD_CONFIG", "").strip()
        if not value:
            return cls()
        if value.startswith("@"):
            value = value[1:]
        if not value.lstrip().startswith("{"):
            with open(value, "r", encoding="utf-8") as handle:
                value = handle.read()
        return cls.from_dict(json.loads(value))

    def per_worker(self, fleet_size: int) -> "WorkloadConfig":
        """This config's share for one of *fleet_size* gateway workers.

        The gateway runs one workload manager per worker process; fleet-wide
        admission limits only hold if each worker enforces ``1/fleet_size``
        of every capacity. Bounded capacities split by ceiling division
        (never below 1, so a small class still admits *something* on every
        shard); token-bucket rates split exactly; ``0`` sentinels (meaning
        "unbounded" / "disabled") stay 0. Classifier thresholds are
        per-query properties and pass through unchanged.
        """
        if fleet_size <= 1:
            return self
        def ceil_share(value: int) -> int:
            return -(-value // fleet_size) if value > 0 else value
        classes = {
            name: replace(
                cfg,
                max_concurrency=ceil_share(cfg.max_concurrency),
                queue_depth=max(1, ceil_share(cfg.queue_depth)),
                rate=cfg.rate / fleet_size if cfg.rate > 0 else 0.0,
                burst=max(1, ceil_share(cfg.burst)),
            )
            for name, cfg in self.classes.items()
        }
        return replace(self, classes=classes,
                       workers=max(1, ceil_share(self.workers)))


# -- classification ------------------------------------------------------------------


@dataclass(frozen=True)
class QueryFeatures:
    """Classification inputs extracted from one bound statement."""

    kind: str                  # "query" | "dml" | "ddl" | "admin" | "unknown"
    fan_in: int = 0            # base tables + CTE references scanned
    has_aggregation: bool = False
    has_window: bool = False
    scan_rows: int = 0         # estimated rows scanned (shadow-catalog stats)
    tables: tuple = ()         # dependency base tables (when extractable)
    constant_filters: int = 0  # constant equality predicates found


#: Statements answered from mid-tier state or mutating the catalog: cheap,
#: rare, and latency-insensitive — the ``admin`` class.
_ADMIN_STATEMENTS = (
    r.NoOp, r.SetSessionParam, r.Transaction, r.HelpCommand, r.ShowCommand,
    r.CreateTable, r.DropTable, r.CreateView, r.DropView, r.CreateMacro,
    r.DropMacro, r.CreateProcedure, r.DropProcedure,
)

#: Statements that mutate data (possibly many rows, possibly via a stored
#: body that contains DML): the ``etl`` class by default.
_DML_STATEMENTS = (r.Insert, r.Update, r.Delete, r.Merge, r.ExecMacro,
                   r.CallProcedure)


#: Assumed selectivity of one constant equality predicate when refining
#: the scan estimate (each ``col = <const>`` divides by this, capped at
#: :data:`_MAX_FILTER_REFINEMENTS` predicates).
_FILTER_SELECTIVITY = 10
_MAX_FILTER_REFINEMENTS = 2


def extract_features(bound: r.Statement,
                     row_estimator: Optional[Callable[[str], int]] = None,
                     catalog=None) -> QueryFeatures:
    """Pull the classifier's inputs out of one bound XTRA statement.

    *row_estimator* maps a table name to its estimated row count (the
    engine wires it to the shadow-catalog statistics); missing estimates
    count as zero rather than failing classification.

    With a *catalog*, the scan estimate comes from the semantic dependency
    extractor instead of a per-``Get`` walk: view references resolve
    through their stored base-table closure (a view scan is priced at its
    base tables, not zero), and each constant equality predicate the
    extractor found divides the estimate by an assumed selectivity — a
    dashboard's ``WHERE region = 'EMEA'`` point-lookup no longer
    classifies like a full reporting scan.
    """
    if isinstance(bound, _ADMIN_STATEMENTS):
        return QueryFeatures(kind="admin")
    if isinstance(bound, _DML_STATEMENTS):
        return QueryFeatures(kind="dml")
    if not isinstance(bound, r.Query):
        return QueryFeatures(kind="unknown")
    fan_in = 0
    has_aggregation = False
    has_window = False
    scan_rows = 0
    for node in walk_rel(bound.plan):
        if isinstance(node, r.Get):
            fan_in += 1
            if row_estimator is not None:
                try:
                    scan_rows += max(0, int(row_estimator(node.table.name)))
                except Exception:
                    pass
        elif isinstance(node, r.CTERef):
            fan_in += 1
        elif isinstance(node, r.Aggregate):
            has_aggregation = True
        elif isinstance(node, r.Window):
            has_window = True
    tables: tuple = ()
    constant_filters = 0
    if catalog is not None:
        deps = None
        try:
            from repro.core import deps as deps_mod

            deps = deps_mod.extract(bound, catalog)
        except Exception:
            deps = None
        if deps is not None and not deps.wildcard:
            tables = deps.tables
            constant_filters = len(deps.constants)
            if row_estimator is not None:
                refined = 0
                for name in deps.tables:
                    try:
                        refined += max(0, int(row_estimator(name)))
                    except Exception:
                        pass
                refined //= _FILTER_SELECTIVITY ** min(
                    constant_filters, _MAX_FILTER_REFINEMENTS)
                scan_rows = refined
    return QueryFeatures(kind="query", fan_in=fan_in,
                         has_aggregation=has_aggregation,
                         has_window=has_window, scan_rows=scan_rows,
                         tables=tables, constant_filters=constant_filters)


@dataclass(frozen=True)
class WorkloadDecision:
    """One request's class assignment plus how it was reached."""

    wl_class: str
    reason: str
    demoted_from: Optional[str] = None
    budget: Optional[BatchBudget] = None


class QueryClassifier:
    """Rule-based class assignment over :class:`QueryFeatures`.

    Rules, in order: an explicit ``SET SESSION WORKLOAD = <class>``
    override wins; catalog/DDL/help statements are ``admin``; DML is
    ``etl``; queries scanning past the ETL threshold are ``etl``; queries
    with aggregation, windowing, wide fan-in, or a reporting-scale scan are
    ``reporting`` — unless the translation is already cached *and* the scan
    is small, the signature of a machine-generated dashboard burst, which
    stays ``interactive``; everything else is ``interactive``.
    """

    def __init__(self, config: WorkloadConfig):
        self.config = config

    def classify(self, features: Optional[QueryFeatures],
                 session_params: Optional[dict] = None,
                 cache_hit: bool = False) -> WorkloadDecision:
        override = None
        if session_params:
            override = session_params.get("WORKLOAD")
        if isinstance(override, str) and override.lower() in self.config.classes:
            return WorkloadDecision(override.lower(), "session override")
        if features is None:
            # Unparseable requests fail fast in translation; classify them
            # interactive so the error reaches the client promptly.
            return WorkloadDecision(INTERACTIVE, "unclassifiable")
        if features.kind == "admin":
            return WorkloadDecision(ADMIN, "catalog/admin statement")
        if features.kind == "dml":
            return WorkloadDecision(ETL, "data-mutating statement")
        if features.kind != "query":
            return WorkloadDecision(INTERACTIVE, "unknown statement kind")
        if features.scan_rows >= self.config.etl_scan_rows:
            return WorkloadDecision(
                ETL, f"scan estimate {features.scan_rows} rows")
        big_scan = features.scan_rows >= self.config.reporting_scan_rows
        shaped = (features.has_aggregation or features.has_window
                  or features.fan_in >= self.config.reporting_fan_in)
        if big_scan:
            return WorkloadDecision(
                REPORTING, f"scan estimate {features.scan_rows} rows")
        if shaped:
            if cache_hit:
                # A memoized translation of a small-scan shaped query is a
                # repeated dashboard gesture: latency-sensitive, cheap.
                return WorkloadDecision(INTERACTIVE, "cached dashboard query")
            return WorkloadDecision(REPORTING, "aggregation/fan-in shape")
        return WorkloadDecision(INTERACTIVE, "point query")


def demote_class(wl_class: str, levels: int) -> str:
    """Apply *levels* rungs of the demotion ladder to *wl_class*."""
    if levels <= 0 or wl_class not in _DEMOTION_LADDER:
        return wl_class
    index = _DEMOTION_LADDER.index(wl_class)
    return _DEMOTION_LADDER[min(index + levels, len(_DEMOTION_LADDER) - 1)]


# -- token bucket --------------------------------------------------------------------


class TokenBucket:
    """Classic token bucket against an injectable monotonic clock.

    ``rate`` <= 0 disables rate limiting (always admits). Not thread-safe
    on its own; the manager serializes access under its scheduler lock.
    """

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = rate
        self.capacity = max(1, burst)
        self._clock = clock
        self._tokens = float(self.capacity)
        self._last = clock()

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(float(self.capacity),
                               self._tokens + (now - self._last) * self.rate)
            self._last = now

    def peek(self, now: Optional[float] = None) -> bool:
        """Would :meth:`take` succeed right now?"""
        if self.rate <= 0:
            return True
        self._refill(self._clock() if now is None else now)
        return self._tokens >= 1.0

    def take(self, now: Optional[float] = None) -> bool:
        """Consume one token if available."""
        if self.rate <= 0:
            return True
        self._refill(self._clock() if now is None else now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


# -- deficit round robin -------------------------------------------------------------


class DeficitRoundRobin:
    """Weighted-fair dispatch across per-class FIFO queues.

    Pure data structure — no threads, no clock — so the scheduling
    discipline is property-testable in isolation. Each :meth:`next` call
    visits classes round-robin; a visited class with backlog accrues a
    deficit quantum proportional to its weight and serves one item per
    whole unit of deficit. Shares therefore converge to the weight ratios,
    and any backlogged class with positive weight is served within
    ``ceil(max_weight / weight)`` full rotations — starvation-free by
    construction.
    """

    def __init__(self, weights: dict[str, float]):
        if not weights:
            raise ValueError("at least one class is required")
        if any(w <= 0 for w in weights.values()):
            raise ValueError("class weights must be positive")
        self._order = list(weights)
        max_weight = max(weights.values())
        #: per-visit deficit quantum, normalized so the heaviest class
        #: accrues exactly one service per rotation.
        self._quantum = {c: w / max_weight for c, w in weights.items()}
        min_quantum = min(self._quantum.values())
        #: visits that guarantee either a serve or a provably empty pass.
        self._max_scan = len(self._order) * (math.ceil(1.0 / min_quantum) + 1)
        self._queues: dict[str, deque] = {c: deque() for c in self._order}
        self._deficit = {c: 0.0 for c in self._order}
        self._cursor = 0

    def enqueue(self, wl_class: str, item) -> None:
        self._queues[wl_class].append(item)

    def pending(self, wl_class: str) -> int:
        return len(self._queues[wl_class])

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def sweep(self, predicate) -> list:
        """Remove and return every queued item matching *predicate*,
        preserving FIFO order among the survivors (deadline expiry and
        caller-side cancellation both funnel through here)."""
        removed = []
        for queue in self._queues.values():
            if not queue:
                continue
            kept = [item for item in queue
                    if not (predicate(item) and (removed.append(item) or True))]
            if len(kept) != len(queue):
                queue.clear()
                queue.extend(kept)
        return removed

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % len(self._order)

    def next(self, eligible: Optional[Callable[[str], bool]] = None):
        """Pop the next ``(class, item)`` to run, or None if nothing is
        both backlogged and eligible. Ineligible classes (at their
        concurrency cap, out of tokens) are skipped without accruing
        deficit, so they do not burst when they become eligible again."""
        for __ in range(self._max_scan):
            wl_class = self._order[self._cursor]
            queue = self._queues[wl_class]
            if not queue:
                # An idle class must not bank credit against the future.
                self._deficit[wl_class] = 0.0
                self._advance()
                continue
            if eligible is not None and not eligible(wl_class):
                self._advance()
                continue
            if self._deficit[wl_class] < 1.0:
                self._deficit[wl_class] += self._quantum[wl_class]
            if self._deficit[wl_class] >= 1.0:
                self._deficit[wl_class] -= 1.0
                item = queue.popleft()
                self._advance()
                return wl_class, item
            self._advance()
        return None


# -- stats ---------------------------------------------------------------------------

#: Histogram bucket upper bounds, seconds (last bucket is unbounded).
HISTOGRAM_BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class LatencyHistogram:
    """Fixed-bucket latency histogram (queue-wait / run-time feedback)."""

    def __init__(self):
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        index = 0
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            if seconds <= bound:
                break
        else:
            index = len(HISTOGRAM_BOUNDS)
        self.buckets[index] += 1
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {"buckets": list(self.buckets), "count": self.count,
                "mean": self.mean, "max": self.max}


class WorkloadStats:
    """Thread-safe per-class counters + histograms (the Figure-8-style
    operational companion for the load path)."""

    EVENTS = ("admitted", "queued", "shed", "deadline_missed", "demoted",
              "inherited")

    def __init__(self, classes: tuple[str, ...] = WORKLOAD_CLASSES):
        self._lock = threading.Lock()
        self._counts = {c: {e: 0 for e in self.EVENTS} for c in classes}
        self._queue_wait = {c: LatencyHistogram() for c in classes}
        self._run_time = {c: LatencyHistogram() for c in classes}

    def count(self, wl_class: str, event: str) -> None:
        with self._lock:
            self._counts[wl_class][event] += 1

    def observe_wait(self, wl_class: str, seconds: float) -> None:
        with self._lock:
            self._queue_wait[wl_class].observe(seconds)

    def observe_run(self, wl_class: str, seconds: float) -> None:
        with self._lock:
            self._run_time[wl_class].observe(seconds)

    def get(self, wl_class: str, event: str) -> int:
        with self._lock:
            return self._counts[wl_class][event]

    def total(self, event: str) -> int:
        with self._lock:
            return sum(c[event] for c in self._counts.values())

    def snapshot(self) -> dict:
        with self._lock:
            return {
                wl_class: {
                    **dict(self._counts[wl_class]),
                    "queue_wait": self._queue_wait[wl_class].snapshot(),
                    "run_time": self._run_time[wl_class].snapshot(),
                }
                for wl_class in self._counts
            }


# -- the manager ---------------------------------------------------------------------


class _WorkRequest:
    """One admitted-or-waiting request inside the manager."""

    __slots__ = ("wl_class", "fn", "future", "session_uid", "enqueued",
                 "deadline_at", "synthetic_wait", "decision", "tenant")

    def __init__(self, decision: WorkloadDecision, fn, session_uid: int,
                 enqueued: float, deadline_at: Optional[float],
                 synthetic_wait: float, tenant: Optional[str] = None):
        self.decision = decision
        self.wl_class = decision.wl_class
        self.fn = fn
        self.future: Future = Future()
        self.session_uid = session_uid
        self.enqueued = enqueued
        self.deadline_at = deadline_at
        self.synthetic_wait = synthetic_wait
        self.tenant = tenant


@dataclass
class WorkloadTicket:
    """Handle returned by :meth:`WorkloadManager.submit`."""

    future: Future
    request: Optional[_WorkRequest] = None  # None when run inline (nested)
    decision: Optional[WorkloadDecision] = None


#: How long a worker sleeps while requests are queued but ineligible
#: (token refill / concurrency-slot granularity).
_BLOCKED_POLL_INTERVAL = 0.005

#: Bounded memo of sql text -> base classification decision.
_DECISION_MEMO_ENTRIES = 2048


class WorkloadManager:
    """The admission controller + fair scheduler fronting one engine (or a
    scaled fleet). Construct once, share across every connection.

    With a :class:`~repro.core.tenancy.TenantRegistry` attached, the
    deficit-round-robin scheduler runs over (tenant, class) queues with
    product weights — tenant share × class share — and admission enforces
    the tenant's quotas (queue depth, QPS bucket at submit; concurrency
    slots at dispatch) *before* any per-class policy. Without one, the
    scheduler is per-class exactly as in PR 4.
    """

    def __init__(self, config: Optional[WorkloadConfig] = None,
                 tracker=None, faults=None,
                 clock: Callable[[], float] = time.monotonic,
                 tenancy=None):
        self.config = config if config is not None else WorkloadConfig()
        self.classifier = QueryClassifier(self.config)
        self.tracker = tracker
        self.faults = faults
        self.tenancy = tenancy
        self._clock = clock
        self.stats = WorkloadStats(tuple(self.config.classes))
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        class_weights = {name: cfg.weight
                         for name, cfg in self.config.classes.items()}
        if tenancy is not None:
            self._drr = DeficitRoundRobin(
                tenancy.scheduler_weights(class_weights))
        else:
            self._drr = DeficitRoundRobin(class_weights)
        self._buckets = {name: TokenBucket(cfg.rate, cfg.burst, clock)
                         for name, cfg in self.config.classes.items()}
        self._running = {name: 0 for name in self.config.classes}
        self._demotions: dict[int, int] = {}
        self._overruns: dict[int, int] = {}
        self._decisions: "OrderedDict[tuple, WorkloadDecision]" = OrderedDict()
        self._active = threading.local()
        self._stopped = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"hyperq-wm-{index}",
                             daemon=True)
            for index in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- classification ----------------------------------------------------------

    def decide(self, session, sql: str) -> WorkloadDecision:
        """Classify one request for *session*: session override, memoized
        rule classification, then the session's demotion level."""
        if _OBSERVABILITY_RE.match(sql):
            # Hyper-Q's own SHOW HYPERQ verbs are admin work no matter
            # what the session pinned or how far it demoted: a tenant at
            # its QPS budget must still be able to observe its own sheds.
            return self._attach_budget(
                session, WorkloadDecision(ADMIN, "hyperq observability"))
        params = getattr(session, "session_params", None)
        override = params.get("WORKLOAD") if params else None
        if isinstance(override, str) and override.lower() in self.config.classes:
            decision = WorkloadDecision(override.lower(), "session override")
        else:
            decision = self._base_decision(session, sql)
            decision = self._apply_demotion(session, decision)
        return self._attach_budget(session, decision)

    def _base_decision(self, session, sql: str) -> WorkloadDecision:
        # Scan estimates move with the catalog, so memoized classifications
        # are keyed on the shadow-catalog version as well as the text.
        version = getattr(getattr(session, "engine", None), "shadow", None)
        key = (sql, version.version if version is not None else 0)
        with self._lock:
            memoized = self._decisions.get(key)
            if memoized is not None:
                self._decisions.move_to_end(key)
                return memoized
        features, cache_hit = session.workload_features(sql)
        params = getattr(session, "session_params", None)
        decision = self.classifier.classify(features, params, cache_hit)
        # Cache-hit status changes as the translation cache warms, so only
        # decisions that come out the same either way may be memoized — a
        # shaped small-scan query must re-classify per request or the
        # "cached dashboard query stays interactive" rule could never fire
        # after its first (cache-miss) classification was memoized.
        if decision == self.classifier.classify(features, params,
                                                not cache_hit):
            with self._lock:
                self._decisions[key] = decision
                while len(self._decisions) > _DECISION_MEMO_ENTRIES:
                    self._decisions.popitem(last=False)
        return decision

    def _apply_demotion(self, session,
                        decision: WorkloadDecision) -> WorkloadDecision:
        uid = _session_uid(session)
        with self._lock:
            level = self._demotions.get(uid, 0)
        if not level:
            return decision
        demoted = demote_class(decision.wl_class, level)
        if demoted == decision.wl_class:
            return decision
        return replace(decision, wl_class=demoted,
                       demoted_from=decision.wl_class,
                       reason=f"{decision.reason}; session demoted "
                              f"{level} level(s) after repeated overruns")

    def _attach_budget(self, session,
                       decision: WorkloadDecision) -> WorkloadDecision:
        cfg = self.config.classes[decision.wl_class]
        if not cfg.batch_rows and not cfg.max_memory_bytes:
            return decision
        base = getattr(getattr(session, "engine", None), "batch_budget", None)
        if base is None:
            base = BatchBudget()
        return replace(decision, budget=base.with_overrides(
            batch_rows=cfg.batch_rows,
            max_memory_bytes=cfg.max_memory_bytes))

    def demotion_level(self, session) -> int:
        with self._lock:
            return self._demotions.get(_session_uid(session), 0)

    # -- admission ---------------------------------------------------------------

    def submit(self, session, sql: str, fn: Callable[[], object],
               decision: Optional[WorkloadDecision] = None) -> WorkloadTicket:
        """Admit (or shed) one request; returns a ticket whose future
        resolves to ``fn()``'s outcome.

        Raises :class:`~repro.errors.WorkloadShedError` when the class
        queue is saturated (or an ``admission`` fault forces a shed) and
        :class:`~repro.errors.WorkloadDeadlineError` when injected queue
        age already exceeds the class deadline — both *before* any work
        runs, so the caller can reply gracefully and keep the session.
        """
        if decision is None:
            decision = self.decide(session, sql)
        wl_class = decision.wl_class
        cfg = self.config.classes[wl_class]
        # Priority inheritance: a request submitted from inside an admitted
        # request (an emulator-issued child statement) runs inline on the
        # owning worker — waiting in its own class queue could deadlock the
        # emulation behind its own concurrency limit.
        if getattr(self._active, "depth", 0) > 0:
            return self._run_inline(decision, fn, _session_uid(session))
        tenant = None
        if self.tenancy is not None:
            params = getattr(session, "session_params", None)
            tenant = self.tenancy.resolve((params or {}).get("TENANT"))
            # Tenant quotas gate *before* any per-class policy: a tenant at
            # its queue-depth or QPS budget sheds with QUOTA_EXCEEDED (and
            # a retry-after hint) no matter how empty its class queue is.
            self.tenancy.admit(tenant, wl_class, sql)
        synthetic_wait = 0.0
        if self.faults is not None:
            fault = self.faults.draw("admission", op=sql)
            if fault is not None:
                if fault.kind == flt.ADMISSION_REJECT:
                    self._shed(decision, cfg, "injected")
                elif fault.kind == flt.SLOW_RESULT:
                    # Synthetic queue age: the deterministic stand-in for a
                    # request that sat in a saturated queue.
                    synthetic_wait = fault.delay
        now = self._clock()
        deadline_at = None
        if cfg.deadline > 0:
            deadline_at = now + cfg.deadline - synthetic_wait
            if deadline_at <= now:
                self._deadline_missed(decision, cfg, synthetic_wait,
                                      injected=True)
        request = _WorkRequest(decision, fn, _session_uid(session), now,
                               deadline_at, synthetic_wait, tenant)
        key = wl_class if tenant is None else (tenant, wl_class)
        with self._cond:
            if self._class_pending(wl_class) >= cfg.queue_depth:
                pass_lock = True
            else:
                pass_lock = False
                self._drr.enqueue(key, request)
                if tenant is not None:
                    self.tenancy.note_queued(tenant)
                self._cond.notify()
        if pass_lock:
            self._shed(decision, cfg, "queue-full")
        self.stats.count(wl_class, "queued")
        self._note(wl_class, "queued")
        return WorkloadTicket(request.future, request, decision)

    def wait(self, ticket: WorkloadTicket,
             timeout: Optional[float] = None) -> object:
        """Block for a ticket's outcome, enforcing the queue deadline from
        the caller side: a request still *queued* when its deadline lapses
        is cancelled and rejected with a clean error; a request already
        *running* is allowed to finish (*timeout*, when given, bounds that
        final wait — on expiry :class:`concurrent.futures.TimeoutError`
        propagates for the caller's straggler handling)."""
        request = ticket.request
        if request is None:
            return ticket.future.result()
        first_window = None
        if request.deadline_at is not None:
            first_window = (max(0.0, request.deadline_at - self._clock())
                            + _BLOCKED_POLL_INTERVAL)
        if timeout is not None:
            first_window = timeout if first_window is None \
                else min(first_window, timeout)
        if first_window is None:
            return ticket.future.result()
        try:
            return ticket.future.result(timeout=first_window)
        except FutureTimeoutError:
            with self._cond:
                removed = self._drr.sweep(lambda rq: rq is request)
                self._unqueue_removed(removed)
            if removed:
                now = self._clock()
                if request.deadline_at is not None \
                        and now >= request.deadline_at - 1e-9:
                    self._deadline_missed(
                        request.decision,
                        self.config.classes[request.wl_class],
                        now - request.enqueued + request.synthetic_wait)
                # The caller's own timeout lapsed while the request was
                # still queued: cancelled cleanly — nothing ran, nothing
                # straggles (the cancelled future tells the caller so).
                request.future.cancel()
                raise
            # Already running: let it finish within the caller's remaining
            # budget (unbounded when only the class deadline was in play —
            # deadlines govern queue time, not run time).
            if timeout is not None:
                spent = self._clock() - request.enqueued
                return ticket.future.result(
                    timeout=max(0.0, timeout - spent))
            return ticket.future.result()

    def run(self, session, sql: str, fn: Optional[Callable[[], object]] = None,
            decision: Optional[WorkloadDecision] = None) -> object:
        """Classify + admit + schedule + wait: the one-call entry point."""
        if fn is None:
            fn = lambda: session.execute(sql)  # noqa: E731
        ticket = self.submit(session, sql, fn, decision)
        return self.wait(ticket)

    def close(self) -> None:
        """Stop the worker pool; queued requests are abandoned."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=2)

    def snapshot(self) -> dict:
        """Per-class stats snapshot (counters + histograms)."""
        return self.stats.snapshot()

    # -- tenancy plumbing --------------------------------------------------------

    def _class_pending(self, wl_class: str) -> int:
        """Waiting requests of one class (summed across tenant queues)."""
        if self.tenancy is None:
            return self._drr.pending(wl_class)
        return sum(self._drr.pending((tenant, wl_class))
                   for tenant in self.tenancy.tenant_names)

    def _unqueue_removed(self, removed) -> None:
        """Keep the registry's queued gauges honest for requests swept out
        of the scheduler (deadline expiry, caller-side cancellation)."""
        if self.tenancy is None:
            return
        for request in removed:
            if request.tenant is not None:
                self.tenancy.note_unqueued(request.tenant)

    # -- shedding / deadlines ----------------------------------------------------

    def _shed(self, decision: WorkloadDecision, cfg: WorkloadClassConfig,
              reason: str) -> None:
        self.stats.count(decision.wl_class, "shed")
        self._note(decision.wl_class, "shed")
        if self.faults is not None:
            self.faults.record("shed", reason=reason,  # also traces the event
                               **{"class": decision.wl_class})
        else:
            trace_mod.add_event("shed", reason=reason,
                                wl_class=decision.wl_class)
        raise WorkloadShedError(
            f"workload queue full for class '{decision.wl_class}' "
            f"({reason}), retry after {cfg.retry_after:g}s")

    def _deadline_missed(self, decision: WorkloadDecision,
                         cfg: WorkloadClassConfig, waited: float,
                         injected: bool = False) -> None:
        self.stats.count(decision.wl_class, "deadline_missed")
        self._note(decision.wl_class, "deadline_missed")
        # Only *injected* misses enter the fault log: real queue waits are
        # wall-clock-dependent, and the log must stay byte-reproducible.
        if injected and self.faults is not None:
            self.faults.record("deadline_missed",  # also traces the event
                               **{"class": decision.wl_class})
        else:
            trace_mod.add_event("deadline_missed",
                                wl_class=decision.wl_class)
        raise WorkloadDeadlineError(
            f"workload deadline exceeded for class '{decision.wl_class}' "
            f"after {waited:.3f}s queued (limit {cfg.deadline:g}s); "
            f"request rejected before execution")

    def _reject_expired(self, request: _WorkRequest, now: float) -> None:
        waited = now - request.enqueued + request.synthetic_wait
        try:
            self._deadline_missed(request.decision,
                                  self.config.classes[request.wl_class],
                                  waited,
                                  injected=request.synthetic_wait > 0)
        except WorkloadDeadlineError as error:
            if not request.future.done():
                request.future.set_exception(error)

    # -- the executor pool -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                item = None
                while not self._stopped:
                    item = self._next_locked()
                    if item is not None:
                        break
                    # Sleep indefinitely when idle; poll at token-refill
                    # granularity when backlogged but ineligible.
                    self._cond.wait(_BLOCKED_POLL_INTERVAL
                                    if len(self._drr) else None)
                if item is None:
                    return
                __, request = item
                wl_class = request.wl_class
                self._running[wl_class] += 1
            try:
                self._execute(request)
            finally:
                if request.tenant is not None and self.tenancy is not None:
                    self.tenancy.note_finish(request.tenant)
                with self._cond:
                    self._running[wl_class] -= 1
                    self._cond.notify_all()

    def _next_locked(self):
        now = self._clock()
        # Expired waiters are rejected during dispatch — before execution —
        # regardless of whether their class is currently eligible.
        expired = self._drr.sweep(
            lambda rq: rq.deadline_at is not None
            and now >= rq.deadline_at)
        self._unqueue_removed(expired)
        for request in expired:
            self._reject_expired(request, now)

        def eligible(key) -> bool:
            tenant, wl_class = (key if isinstance(key, tuple)
                                else (None, key))
            cfg = self.config.classes[wl_class]
            if cfg.max_concurrency \
                    and self._running[wl_class] >= cfg.max_concurrency:
                return False
            if tenant is not None and not self.tenancy.has_slot(tenant):
                # A tenant at its concurrency quota is skipped without
                # accruing deficit, exactly like a capped class.
                return False
            return self._buckets[wl_class].peek(now)

        item = self._drr.next(eligible)
        if item is None:
            return None
        key, request = item
        self._buckets[request.wl_class].take(now)
        return key, request

    def _execute(self, request: _WorkRequest) -> None:
        start = self._clock()
        wait = start - request.enqueued + request.synthetic_wait
        wl_class = request.wl_class
        self.stats.observe_wait(wl_class, wait)
        self.stats.count(wl_class, "admitted")
        self._note(wl_class, "admitted")
        if request.tenant is not None and self.tenancy is not None:
            self.tenancy.note_dispatch(request.tenant, wait)
            trace_mod.add_event("tenant_dispatch", tenant=request.tenant,
                                wl_class=wl_class)
        self._active.depth = getattr(self._active, "depth", 0) + 1
        try:
            result = request.fn()
        except BaseException as error:  # noqa: BLE001 — future carries it
            if not request.future.done():
                request.future.set_exception(error)
        else:
            run_time = self._clock() - start
            self.stats.observe_run(wl_class, run_time)
            timing = getattr(result, "timing", None)
            if timing is not None and hasattr(timing, "queue_wait"):
                timing.queue_wait += wait
            self._feedback(request, run_time)
            if not request.future.done():
                request.future.set_result(result)
        finally:
            self._active.depth -= 1

    def _run_inline(self, decision: WorkloadDecision, fn,
                    session_uid: int) -> WorkloadTicket:
        """Execute a nested submission on the owning worker (priority
        inheritance for emulator-issued child statements)."""
        wl_class = decision.wl_class
        self.stats.count(wl_class, "inherited")
        self.stats.count(wl_class, "admitted")
        self._note(wl_class, "inherited")
        future: Future = Future()
        start = self._clock()
        try:
            result = fn()
        except BaseException as error:  # noqa: BLE001
            future.set_exception(error)
        else:
            self.stats.observe_run(wl_class, self._clock() - start)
            future.set_result(result)
        return WorkloadTicket(future, None, decision)

    # -- runtime feedback --------------------------------------------------------

    def _feedback(self, request: _WorkRequest, run_time: float) -> None:
        cfg = self.config.classes[request.wl_class]
        if cfg.runtime_ceiling <= 0:
            return
        uid = request.session_uid
        with self._lock:
            if run_time <= cfg.runtime_ceiling:
                self._overruns.pop(uid, None)
                return
            overruns = self._overruns.get(uid, 0) + 1
            self._overruns[uid] = overruns
            if overruns < self.config.demote_after:
                return
            level = self._demotions.get(uid, 0)
            if demote_class(request.wl_class, 1) == request.wl_class:
                return  # already at the bottom of the ladder
            self._demotions[uid] = min(level + 1, len(_DEMOTION_LADDER) - 1)
            self._overruns[uid] = 0
        self.stats.count(request.wl_class, "demoted")
        self._note(request.wl_class, "demoted")

    def _note(self, wl_class: str, event: str) -> None:
        if self.tracker is not None:
            self.tracker.note_workload(wl_class, event)


def _session_uid(session) -> int:
    catalog = getattr(session, "catalog", None)
    return getattr(catalog, "uid", 0) if catalog is not None else 0
