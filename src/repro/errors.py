"""Exception hierarchy for the Hyper-Q reproduction.

All library errors derive from :class:`HyperQError` so callers can catch a
single base class. Subclasses mirror the pipeline stages described in the
paper: lexing/parsing (Algebrizer), binding, transformation, serialization,
backend execution, protocol handling, and emulation.
"""

from __future__ import annotations


class HyperQError(Exception):
    """Base class for all errors raised by this library."""


class SQLError(HyperQError):
    """Base class for errors tied to a specific position in SQL text.

    Attributes:
        message: human-readable description of the problem.
        line: 1-based line number in the offending SQL text, if known.
        column: 1-based column number, if known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line is not None and self.column is not None:
            return f"{self.message} (at line {self.line}, column {self.column})"
        return self.message


class LexError(SQLError):
    """Raised when the lexer encounters an invalid character sequence."""


class ParseError(SQLError):
    """Raised when the parser cannot make sense of the token stream."""


class BindError(SQLError):
    """Raised during name resolution / type derivation (AST -> XTRA)."""


class TransformError(HyperQError):
    """Raised when a transformation rule fails or the fixpoint diverges."""


class SerializeError(HyperQError):
    """Raised when an XTRA tree cannot be rendered in the target dialect."""


class UnsupportedFeatureError(HyperQError):
    """Raised when a request uses a feature with no rewrite or emulation."""


class CatalogError(HyperQError):
    """Raised for missing or conflicting catalog objects."""


class BackendError(HyperQError):
    """Raised by the backend database engine during execution."""


class TypeMismatchError(BackendError):
    """Raised when runtime values do not match their declared types."""


class TransientBackendError(BackendError):
    """A retryable backend failure (deadlock victim, dropped connection).

    The ODBC Server retries these under the engine's :class:`RetryPolicy`;
    the application never sees one unless the retry budget is exhausted.
    """


class BackendTimeoutError(TransientBackendError):
    """The target (or a request as a whole) exceeded its deadline.

    A subclass of :class:`TransientBackendError` because a timed-out
    statement is retried exactly like any other transient failure.
    """


class RetryExhaustedError(BackendError):
    """A transient failure persisted through the whole retry budget."""


class ReplicaUnavailableError(HyperQError):
    """A scale-out replica is down or quarantined.

    Deliberately *not* transient: retrying the same replica is pointless;
    the fix is failover, which :mod:`repro.core.scaleout` handles.
    """


class WorkloadError(HyperQError):
    """Base class for workload-management rejections.

    Deliberately *not* a backend or protocol error: the request never
    reached the target. The wire server turns these into FAILURE replies
    and keeps the session alive for the next request.
    """


class WorkloadShedError(WorkloadError):
    """The request's workload class queue is saturated; shed at admission.

    The message carries a ``retry after`` hint so well-behaved clients can
    back off instead of hammering a saturated class.
    """


class WorkloadDeadlineError(WorkloadError):
    """The request waited in the admission queue past its class deadline.

    Raised *before* execution — a request that queued too long is rejected
    while still queued, never run late.
    """


class TenancyError(HyperQError):
    """Base class for multi-tenant control-plane errors."""


class TenancyConfigError(TenancyError):
    """A tenancy configuration is malformed (bad quota JSON, negative
    share, unknown key). The message names the offending tenant/field so
    the operator can fix the config instead of chasing a raw KeyError."""


class UnknownTenantError(TenancyError):
    """A connection presented a tenant id the control plane has never
    heard of. Surfaced as a clean LOGON failure, never a stack trace."""


class TenantQuotaError(WorkloadShedError, TenancyError):
    """A per-tenant quota (concurrency, queue depth, QPS bucket) rejected
    the request at admission: QUOTA_EXCEEDED with a ``retry after`` hint.

    Subclasses :class:`WorkloadShedError` so the wire server's existing
    shed handling (FAILURE reply, session survives) applies unchanged.
    """


class SessionConfigError(HyperQError):
    """A BI session-generator configuration is invalid (unknown tenant,
    non-positive counts, bad distribution parameters)."""


class ProtocolError(HyperQError):
    """Raised for malformed or unexpected wire-protocol messages."""


class EmulationError(HyperQError):
    """Raised when a mid-tier emulation cannot complete."""


class ConversionError(HyperQError):
    """Raised when results cannot be converted to the source binary format."""
