"""Source-system frontends. Each frontend contributes a language parser and
a binder producing XTRA; today the Teradata dialect is implemented."""
