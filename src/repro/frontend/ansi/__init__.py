"""ANSI SQL frontend.

Section 4 claims Hyper-Q avoids the full M x N support matrix: adding a
frontend means adding a parser that produces XTRA, after which it composes
with *every* supported backend. This package is the proof by construction —
a second frontend beside Teradata. It also covers a use case the paper calls
out explicitly (Appendix B.1): after re-platforming, "developers now have
the choice what query language they want to use for their new applications"
— old Teradata SQL and new ANSI SQL can address the same virtualized target
side by side.
"""

from repro.frontend.ansi.frontend import AnsiFrontend

__all__ = ["AnsiFrontend"]
