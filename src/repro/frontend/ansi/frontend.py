"""The ANSI frontend: plain SQL in, XTRA out.

Reuses the generic ANSI grammar (the same parser class the backend uses,
configured with a fully permissive capability profile so WITH RECURSIVE,
MERGE and grouping extensions all *parse*) and the generic planner, resolved
against Hyper-Q's shadow catalog. The result is bound XTRA statements that
flow through the very same Transformer/Serializer/emulator pipeline as
Teradata requests — the paper's "add a parser, get every backend" claim.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import BindError, CatalogError
from repro.backend import planner as p
from repro.backend.parser import BackendParser
from repro.core.catalog import SessionCatalog
from repro.core.tracker import FeatureTracker
from repro.transform.capabilities import TERADATA
from repro.xtra import relational as r
from repro.xtra import types as t
from repro.xtra.schema import TableSchema


class _SchemaHandle:
    """Duck-typed stand-in for a backend Table: just carries the schema."""

    __slots__ = ("schema",)

    def __init__(self, schema: TableSchema):
        self.schema = schema


class _ShadowCatalogAdapter:
    """Adapts Hyper-Q's shadow catalog to the planner's catalog protocol.

    Views resolve as plain relations (the target database holds the real
    view object and expands it), so ``has_view`` is always False here.
    """

    def __init__(self, catalog: SessionCatalog):
        self._catalog = catalog

    def table(self, name: str) -> _SchemaHandle:
        schema = self._catalog.resolve(name)
        if schema is None:
            raise CatalogError(f"object {name} does not exist")
        return _SchemaHandle(schema)

    def has_table(self, name: str) -> bool:
        return self._catalog.resolve(name) is not None

    def has_view(self, name: str) -> bool:
        return False

    def view(self, name: str):
        return None


class AnsiFrontend:
    """Parses ANSI SQL and binds it into XTRA statements."""

    def __init__(self, catalog: SessionCatalog,
                 tracker: Optional[FeatureTracker] = None):
        self._catalog = catalog
        self._tracker = tracker  # ANSI requests carry no tracked TD features
        # Permissive grammar: the *target's* limits are enforced later by the
        # Transformer/emulators, not at the frontend.
        self._parser = BackendParser(TERADATA)
        self._planner = p.Planner(_ShadowCatalogAdapter(catalog), TERADATA)

    # -- public API ---------------------------------------------------------------

    def bind_statement(self, sql: str) -> r.Statement:
        spec = self._parser.parse_statement(sql)
        return self._lower(spec, sql)

    def parse_script(self, sql: str) -> list[p.StatementSpec]:
        """Parse without binding — statements bind lazily so earlier DDL in
        the same script is visible to later statements."""
        return self._parser.parse_script(sql)

    def lower_spec(self, spec: p.StatementSpec) -> r.Statement:
        """Bind one parsed spec against the current catalog state."""
        return self._lower(spec, "")

    def bind_script(self, sql: str) -> list[r.Statement]:
        return [self._lower(spec, sql)
                for spec in self._parser.parse_script(sql)]

    # -- spec -> XTRA statement ------------------------------------------------------

    def _lower(self, spec: p.StatementSpec, source_sql: str) -> r.Statement:
        if isinstance(spec, p.QueryStatementSpec):
            return r.Query(self._planner.plan_query(spec.query))
        if isinstance(spec, p.InsertSpec):
            return self._lower_insert(spec)
        if isinstance(spec, p.UpdateSpec):
            scope = p._Scope()
            assignments = [
                (name, self._planner._plan_scalar_subqueries(expr, scope))
                for name, expr in spec.assignments
            ]
            predicate = (self._planner._plan_scalar_subqueries(spec.predicate,
                                                               scope)
                         if spec.predicate is not None else None)
            return r.Update(spec.table.upper(), assignments, predicate,
                            spec.alias)
        if isinstance(spec, p.DeleteSpec):
            scope = p._Scope()
            predicate = (self._planner._plan_scalar_subqueries(spec.predicate,
                                                               scope)
                         if spec.predicate is not None else None)
            return r.Delete(spec.table.upper(), predicate, spec.alias)
        if isinstance(spec, p.CreateTableSpec):
            schema = TableSchema(spec.name.upper(), list(spec.columns or []),
                                 volatile=spec.temporary)
            as_query = (self._planner.plan_query(spec.as_query)
                        if spec.as_query is not None else None)
            if as_query is not None and not schema.columns:
                from repro.xtra.schema import ColumnSchema

                schema.columns = [ColumnSchema(col.name, col.type)
                                  for col in as_query.output_columns()]
            return r.CreateTable(schema, as_query)
        if isinstance(spec, p.DropTableSpec):
            return r.DropTable(spec.name.upper(), spec.if_exists)
        if isinstance(spec, p.CreateViewSpec):
            plan = self._planner.plan_query(spec.query)
            names = spec.column_names or [col.name
                                          for col in plan.output_columns()]
            return r.CreateView(spec.name.upper(), [n.upper() for n in names],
                                plan, spec.source_sql, spec.replace)
        if isinstance(spec, p.DropViewSpec):
            return r.DropView(spec.name.upper(), spec.if_exists)
        if isinstance(spec, p.TransactionSpec):
            return r.Transaction(spec.action)
        if isinstance(spec, p.MergeSpec):
            return self._lower_merge(spec)
        raise BindError(
            f"the ANSI frontend cannot bind {type(spec).__name__}")

    def _lower_insert(self, spec: p.InsertSpec) -> r.Insert:
        handle = self._planner._catalog.table(spec.table)  # type: ignore[attr-defined]
        schema = handle.schema
        if spec.query is not None:
            return r.Insert(schema.name, spec.columns,
                            self._planner.plan_query(spec.query))
        target_columns = ([schema.column(name) for name in spec.columns]
                          if spec.columns else schema.columns)
        scope = p._Scope()
        rows = [
            [self._planner._plan_scalar_subqueries(cell, scope)
             for cell in row]
            for row in spec.rows or []
        ]
        values = r.Values(rows, [col.name for col in target_columns],
                          [col.type for col in target_columns])
        return r.Insert(schema.name, spec.columns, values)

    def _lower_merge(self, spec: p.MergeSpec) -> r.Merge:
        source_plan = self._planner._plan_table_ref(spec.source, p._Scope())
        scope = p._Scope()
        condition = self._planner._plan_scalar_subqueries(spec.condition, scope)
        matched = None
        if spec.matched_assignments is not None:
            matched = [
                (name, self._planner._plan_scalar_subqueries(expr, scope))
                for name, expr in spec.matched_assignments
            ]
        insert_values = None
        if spec.insert_values is not None:
            insert_values = [
                self._planner._plan_scalar_subqueries(expr, scope)
                for expr in spec.insert_values
            ]
        return r.Merge(spec.target.upper(), spec.target_alias, source_plan,
                       None, condition, matched, spec.insert_columns,
                       insert_values)
