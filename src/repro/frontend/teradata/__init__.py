"""Teradata dialect frontend: lexer, parser (AST), and binder (AST -> XTRA)."""

from repro.frontend.teradata.parser import TeradataParser
from repro.frontend.teradata.binder import Binder

__all__ = ["TeradataParser", "Binder"]
