"""Abstract syntax tree of the Teradata frontend.

Mirrors the paper's Figure 4: the AST mixes *generic* nodes (shared with any
ANSI dialect — scalar expressions reuse the XTRA scalar classes directly) and
*Teradata-specific* nodes (``Td*`` below) for constructs like QUALIFY or the
legacy ``RANK(expr DESC)`` spelling that deviate from the standard. The
binder (:mod:`repro.frontend.teradata.binder`) lowers this AST into XTRA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra.types import SQLType


# -- Teradata-specific scalar nodes ------------------------------------------------

@dataclass(eq=False)
class TdRank(s.ScalarExpr):
    """Legacy Teradata ``RANK(expr [ASC|DESC], ...)`` — the order expression
    is given as a function argument rather than an OVER clause (Section 5)."""

    CHILD_FIELDS = ("keys",)

    keys: list[s.SortKey] = field(default_factory=list)


@dataclass(eq=False)
class TdCsv(s.ScalarExpr):
    """Internal marker for a parenthesized expression row ``(a, b)`` used on
    the left of IN / quantified comparisons (vector subqueries)."""

    CHILD_FIELDS = ("items",)

    items: list[s.ScalarExpr] = field(default_factory=list)


# -- query structure ------------------------------------------------------------------

@dataclass
class TdSelectItem:
    star: bool = False
    star_qualifier: Optional[str] = None
    expr: Optional[s.ScalarExpr] = None
    alias: Optional[str] = None


class TdTableRef:
    pass


@dataclass
class TdTableName(TdTableRef):
    name: str
    alias: Optional[str] = None


@dataclass
class TdSubqueryRef(TdTableRef):
    query: "TdSelect"
    alias: str = ""
    column_names: Optional[list[str]] = None


@dataclass
class TdJoin(TdTableRef):
    kind: r.JoinKind = r.JoinKind.INNER
    left: TdTableRef = None  # type: ignore[assignment]
    right: TdTableRef = None  # type: ignore[assignment]
    condition: Optional[s.ScalarExpr] = None


@dataclass
class TdSelectCore:
    """One SELECT block. Teradata permits unusual clause ordering (Example 1:
    ORDER BY before WHERE); the parser accepts any order and stores clauses
    here normalized."""

    distinct: bool = False
    top: Optional[tuple[int, bool]] = None  # (count, with_ties)
    items: list[TdSelectItem] = field(default_factory=list)
    from_refs: list[TdTableRef] = field(default_factory=list)
    where: Optional[s.ScalarExpr] = None
    group_by: list[s.ScalarExpr] = field(default_factory=list)
    group_kind: r.GroupingKind = r.GroupingKind.SIMPLE
    grouping_sets: Optional[list[list[int]]] = None
    having: Optional[s.ScalarExpr] = None
    qualify: Optional[s.ScalarExpr] = None
    order_by: list[s.SortKey] = field(default_factory=list)


@dataclass
class TdCTE:
    name: str
    column_names: Optional[list[str]]
    query: "TdSelect"
    recursive: bool = False


@dataclass
class TdSelect:
    """A full query expression: CTEs, set-operation chain, ordering, top."""

    ctes: list[TdCTE] = field(default_factory=list)
    first: Union[TdSelectCore, "TdSelect"] = None  # type: ignore[assignment]
    branches: list[tuple[r.SetOpKind, bool, Union[TdSelectCore, "TdSelect"]]] = \
        field(default_factory=list)
    order_by: list[s.SortKey] = field(default_factory=list)


# -- statements ------------------------------------------------------------------------

class TdStatement:
    """Base class for parsed Teradata statements."""


@dataclass
class TdQuery(TdStatement):
    select: TdSelect = None  # type: ignore[assignment]


@dataclass
class TdInsert(TdStatement):
    table: str = ""
    columns: Optional[list[str]] = None
    rows: Optional[list[list[s.ScalarExpr]]] = None
    select: Optional[TdSelect] = None


@dataclass
class TdUpdate(TdStatement):
    table: str = ""
    alias: Optional[str] = None
    assignments: list[tuple[str, s.ScalarExpr]] = field(default_factory=list)
    where: Optional[s.ScalarExpr] = None


@dataclass
class TdDelete(TdStatement):
    table: str = ""
    alias: Optional[str] = None
    where: Optional[s.ScalarExpr] = None


@dataclass
class TdColumnDef:
    name: str = ""
    type: SQLType = None  # type: ignore[assignment]
    not_null: bool = False
    default_expr: Optional[s.ScalarExpr] = None
    default_sql: Optional[str] = None
    case_specific: Optional[bool] = None  # None = dialect default (CASESPECIFIC)


@dataclass
class TdCreateTable(TdStatement):
    name: str = ""
    set_semantics: bool = False          # SET vs MULTISET
    volatile: bool = False
    global_temporary: bool = False
    columns: list[TdColumnDef] = field(default_factory=list)
    primary_index: tuple[str, ...] = ()
    as_select: Optional[TdSelect] = None
    with_data: bool = True
    on_commit_preserve: bool = False


@dataclass
class TdDropTable(TdStatement):
    name: str = ""


@dataclass
class TdCreateView(TdStatement):
    name: str = ""
    column_names: Optional[list[str]] = None
    select: TdSelect = None  # type: ignore[assignment]
    source_sql: str = ""
    replace: bool = False


@dataclass
class TdDropView(TdStatement):
    name: str = ""


@dataclass
class TdCreateMacro(TdStatement):
    name: str = ""
    parameters: list[tuple[str, SQLType]] = field(default_factory=list)
    body_sql: str = ""
    replace: bool = False


@dataclass
class TdDropMacro(TdStatement):
    name: str = ""


@dataclass
class TdExecMacro(TdStatement):
    name: str = ""
    arguments: list[s.ScalarExpr] = field(default_factory=list)
    named_arguments: dict[str, s.ScalarExpr] = field(default_factory=dict)


# -- stored procedures -------------------------------------------------------------------

class TdProcStatement:
    """Base class for statements inside a procedure body."""


@dataclass
class TdProcSQL(TdProcStatement):
    """An embedded SQL statement (parsed Teradata statement)."""

    statement: TdStatement = None  # type: ignore[assignment]


@dataclass
class TdDeclare(TdProcStatement):
    name: str = ""
    type: SQLType = None  # type: ignore[assignment]
    default: Optional[s.ScalarExpr] = None


@dataclass
class TdSetVariable(TdProcStatement):
    name: str = ""
    value: s.ScalarExpr = None  # type: ignore[assignment]


@dataclass
class TdIf(TdProcStatement):
    condition: s.ScalarExpr = None  # type: ignore[assignment]
    then_branch: list[TdProcStatement] = field(default_factory=list)
    else_branch: list[TdProcStatement] = field(default_factory=list)


@dataclass
class TdWhile(TdProcStatement):
    condition: s.ScalarExpr = None  # type: ignore[assignment]
    body: list[TdProcStatement] = field(default_factory=list)


@dataclass
class TdSelectInto(TdProcStatement):
    """SELECT <expr, ...> INTO <var, ...> FROM ... (single-row fetch)."""

    select: TdSelect = None  # type: ignore[assignment]
    targets: list[str] = field(default_factory=list)


@dataclass
class TdCreateProcedure(TdStatement):
    name: str = ""
    parameters: list[tuple[str, str, SQLType]] = field(default_factory=list)
    body: list[TdProcStatement] = field(default_factory=list)
    replace: bool = False


@dataclass
class TdDropProcedure(TdStatement):
    name: str = ""


@dataclass
class TdCall(TdStatement):
    name: str = ""
    arguments: list[s.ScalarExpr] = field(default_factory=list)


# -- misc statements -----------------------------------------------------------------------

@dataclass
class TdMerge(TdStatement):
    target: str = ""
    target_alias: Optional[str] = None
    source: TdTableRef = None  # type: ignore[assignment]
    condition: s.ScalarExpr = None  # type: ignore[assignment]
    matched_assignments: Optional[list[tuple[str, s.ScalarExpr]]] = None
    insert_columns: Optional[list[str]] = None
    insert_values: Optional[list[s.ScalarExpr]] = None


@dataclass
class TdHelp(TdStatement):
    kind: str = "SESSION"  # SESSION | TABLE | COLUMN | DATABASE
    subject: Optional[str] = None


@dataclass
class TdShow(TdStatement):
    object_kind: str = "TABLE"
    name: str = ""


@dataclass
class TdCollectStatistics(TdStatement):
    """COLLECT STATISTICS — accepted and ignored (no backend equivalent)."""

    table: str = ""


@dataclass
class TdTransaction(TdStatement):
    action: str = "BEGIN"  # BEGIN | COMMIT | ROLLBACK


@dataclass
class TdSetSession(TdStatement):
    parameter: str = ""
    value: object = None
