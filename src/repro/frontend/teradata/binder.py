"""The Teradata binder: AST -> XTRA (the second half of the Algebrizer).

Performs name resolution against the Hyper-Q shadow catalog, type derivation,
and the binding-stage rewrites of Table 2:

* implicit joins — tables referenced outside FROM are added to the join tree,
* chained projections — named expressions are replaced by their definitions,
* ordinal GROUP BY / ORDER BY — positions become the referenced expressions,
* QUALIFY — window functions are hoisted into a Window operator and the
  QUALIFY predicate becomes a Filter above it,
* legacy ``RANK(expr DESC)`` — normalized to an ANSI window specification,
* NOT CASESPECIFIC columns — comparisons are wrapped in UPPER() so the
  case-insensitive source semantics survive on a case-sensitive target.
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.errors import BindError
from repro.core.catalog import SessionCatalog
from repro.core.tracker import FeatureTracker
from repro.frontend.teradata import ast as a
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t
from repro.xtra.relational import OutputColumn, RelNode
from repro.xtra.scalars import ScalarExpr
from repro.xtra.schema import ColumnSchema, TableSchema

_AGG_TYPES = {
    "COUNT": t.BIGINT,
    "AVG": t.FLOAT,
    "STDDEV_SAMP": t.FLOAT,
}

# Result types of builtins whose Teradata spelling flows through XTRA and is
# translated by the serializer.
_FUNC_TYPES: dict[str, t.SQLType] = {
    "CHARS": t.INTEGER, "CHARACTERS": t.INTEGER, "CHARACTER_LENGTH": t.INTEGER,
    "LENGTH": t.INTEGER, "CHAR_LENGTH": t.INTEGER,
    "INDEX": t.INTEGER, "POSITION": t.INTEGER,
    "SUBSTRING": t.varchar(), "SUBSTR": t.varchar(), "TRIM": t.varchar(),
    "LTRIM": t.varchar(), "RTRIM": t.varchar(), "UPPER": t.varchar(),
    "LOWER": t.varchar(), "REPLACE": t.varchar(), "CONCAT": t.varchar(),
    "LPAD": t.varchar(), "RPAD": t.varchar(),
    "ADD_MONTHS": t.DATE, "LAST_DAY": t.DATE, "DATEADD": t.DATE,
    "CURRENT_DATE": t.DATE, "CURRENT_TIMESTAMP": t.TIMESTAMP,
    "DATEDIFF": t.INTEGER, "MOD": t.INTEGER, "SIGN": t.INTEGER,
    "FLOOR": t.BIGINT, "CEIL": t.BIGINT, "CEILING": t.BIGINT,
    "SQRT": t.FLOAT, "EXP": t.FLOAT, "LN": t.FLOAT, "POWER": t.FLOAT,
}


class _Scope:
    """Name-resolution scope: input columns, select aliases, outer chain."""

    def __init__(self, columns: list[OutputColumn],
                 parent: Optional["_Scope"] = None,
                 ctes: Optional[dict[str, list[OutputColumn]]] = None):
        self.columns = columns
        self.parent = parent
        self.select_aliases: dict[str, ScalarExpr] = {}
        self.ctes = ctes if ctes is not None else (
            parent.ctes if parent is not None else {})

    def resolve_local(self, name: str, qualifier: Optional[str]) -> Optional[OutputColumn]:
        hits = [col for col in self.columns
                if col.name == name.upper()
                and (qualifier is None or col.qualifier == qualifier.upper())]
        if len(hits) > 1 and qualifier is None:
            raise BindError(f"ambiguous column reference {name!r}")
        return hits[0] if hits else None

    def qualifiers(self) -> set[str]:
        return {col.qualifier for col in self.columns if col.qualifier}


class Binder:
    """Binds Teradata AST statements into XTRA."""

    def __init__(self, catalog: SessionCatalog,
                 tracker: Optional[FeatureTracker] = None):
        self._catalog = catalog
        self._tracker = tracker

    def _note(self, feature: str, stage: str = "binder") -> None:
        if self._tracker is not None:
            self._tracker.note(feature, stage)

    # -- statement dispatch ------------------------------------------------------

    def bind(self, statement: a.TdStatement) -> r.Statement:
        if isinstance(statement, a.TdQuery):
            return r.Query(self.bind_select(statement.select, None))
        if isinstance(statement, a.TdInsert):
            return self._bind_insert(statement)
        if isinstance(statement, a.TdUpdate):
            return self._bind_update(statement)
        if isinstance(statement, a.TdDelete):
            return self._bind_delete(statement)
        if isinstance(statement, a.TdCreateTable):
            return self._bind_create_table(statement)
        if isinstance(statement, a.TdDropTable):
            return r.DropTable(statement.name.upper())
        if isinstance(statement, a.TdCreateView):
            return self._bind_create_view(statement)
        if isinstance(statement, a.TdDropView):
            return r.DropView(statement.name.upper())
        if isinstance(statement, a.TdCreateMacro):
            return r.CreateMacro(statement.name.upper(), statement.parameters,
                                 statement.body_sql, statement.replace)
        if isinstance(statement, a.TdDropMacro):
            return r.DropMacro(statement.name.upper())
        if isinstance(statement, a.TdExecMacro):
            scope = _Scope([])
            return r.ExecMacro(
                statement.name.upper(),
                [self._bind_expr(arg, scope) for arg in statement.arguments],
                {name.upper(): self._bind_expr(expr, scope)
                 for name, expr in statement.named_arguments.items()})
        if isinstance(statement, a.TdCreateProcedure):
            return r.CreateProcedure(statement.name.upper(), statement.parameters,
                                     statement.body, statement.replace)
        if isinstance(statement, a.TdDropProcedure):
            return r.DropProcedure(statement.name.upper())
        if isinstance(statement, a.TdCall):
            scope = _Scope([])
            return r.CallProcedure(
                statement.name.upper(),
                [self._bind_expr(arg, scope) for arg in statement.arguments])
        if isinstance(statement, a.TdMerge):
            return self._bind_merge(statement)
        if isinstance(statement, a.TdHelp):
            return r.HelpCommand(r.HelpKind[statement.kind], statement.subject)
        if isinstance(statement, a.TdShow):
            return r.ShowCommand(statement.object_kind, statement.name.upper())
        if isinstance(statement, a.TdTransaction):
            return r.Transaction(statement.action)
        if isinstance(statement, a.TdCollectStatistics):
            return r.NoOp(f"COLLECT STATISTICS on {statement.table}")
        if isinstance(statement, a.TdSetSession):
            return r.SetSessionParam(statement.parameter, statement.value)
        raise BindError(f"cannot bind {type(statement).__name__}")

    # -- DML ------------------------------------------------------------------------

    def _bind_insert(self, statement: a.TdInsert) -> r.Insert:
        table = self._catalog.table(statement.table)
        columns = statement.columns
        if statement.select is not None:
            source: RelNode = self.bind_select(statement.select, None)
        else:
            scope = _Scope([])
            target_cols = ([table.column(name) for name in columns]
                           if columns else table.columns)
            rows = []
            for row in statement.rows or []:
                bound = [self._bind_expr(cell, scope) for cell in row]
                rows.append(bound)
            names = [col.name for col in target_cols]
            types = [col.type for col in target_cols]
            source = r.Values(rows, names, types)
        return r.Insert(table.name, columns, source)

    def _table_scope(self, table: TableSchema, alias: Optional[str]) -> _Scope:
        qualifier = (alias or table.name).upper()
        return _Scope([OutputColumn(col.name, col.type, qualifier)
                       for col in table.columns])

    def _bind_update(self, statement: a.TdUpdate) -> r.Update:
        table = self._catalog.table(statement.table)
        scope = self._table_scope(table, statement.alias)
        assignments = [(name.upper(), self._bind_expr(expr, scope))
                       for name, expr in statement.assignments]
        predicate = (self._bind_expr(statement.where, scope)
                     if statement.where is not None else None)
        return r.Update(table.name, assignments, predicate, statement.alias)

    def _bind_delete(self, statement: a.TdDelete) -> r.Delete:
        table = self._catalog.table(statement.table)
        scope = self._table_scope(table, statement.alias)
        predicate = (self._bind_expr(statement.where, scope)
                     if statement.where is not None else None)
        return r.Delete(table.name, predicate, statement.alias)

    def _bind_merge(self, statement: a.TdMerge) -> r.Merge:
        table = self._catalog.table(statement.target)
        source_plan, __ = self._bind_table_ref(statement.source, None, {})
        target_qualifier = (statement.target_alias or table.name).upper()
        columns = [OutputColumn(col.name, col.type, target_qualifier)
                   for col in table.columns]
        columns += source_plan.output_columns()
        scope = _Scope(columns)
        condition = self._bind_expr(statement.condition, scope)
        matched = None
        if statement.matched_assignments is not None:
            matched = [(name.upper(), self._bind_expr(expr, scope))
                       for name, expr in statement.matched_assignments]
        insert_values = None
        if statement.insert_values is not None:
            insert_values = [self._bind_expr(expr, scope)
                             for expr in statement.insert_values]
        source_alias = _ref_alias(statement.source)
        return r.Merge(table.name, statement.target_alias, source_plan,
                       source_alias, condition, matched,
                       statement.insert_columns, insert_values)

    # -- DDL ----------------------------------------------------------------------------

    def _bind_create_table(self, statement: a.TdCreateTable) -> r.CreateTable:
        import dataclasses

        columns = []
        for col in statement.columns:
            case_specific = col.case_specific if col.case_specific is not None else True
            column_type = col.type
            if not case_specific and column_type.is_text:
                # Propagate onto the type so bound ColumnRefs carry the flag
                # (the binder's UPPER() compensation keys off it).
                column_type = dataclasses.replace(column_type,
                                                  case_specific=False)
            columns.append(ColumnSchema(
                name=col.name.upper(),
                type=column_type,
                nullable=not col.not_null,
                default_sql=col.default_sql,
                case_specific=case_specific,
            ))
        schema = TableSchema(
            name=statement.name.upper(),
            columns=columns,
            set_semantics=statement.set_semantics,
            volatile=statement.volatile or statement.global_temporary,
            primary_index=statement.primary_index,
        )
        as_query = None
        if statement.as_select is not None:
            as_query = self.bind_select(statement.as_select, None)
            if not schema.columns:
                schema.columns = [
                    ColumnSchema(col.name, col.type)
                    for col in as_query.output_columns()
                ]
        return r.CreateTable(schema, as_query)

    def _bind_create_view(self, statement: a.TdCreateView) -> r.CreateView:
        plan = self.bind_select(statement.select, None)
        inner = plan.output_columns()
        names = statement.column_names or [col.name for col in inner]
        if len(names) != len(inner):
            raise BindError(
                f"view {statement.name}: {len(names)} names for {len(inner)} columns")
        return r.CreateView(statement.name.upper(), [n.upper() for n in names],
                            plan, statement.source_sql, statement.replace)

    # -- queries ------------------------------------------------------------------------------

    def bind_select(self, select: a.TdSelect, outer: Optional[_Scope],
                    cte_scope: Optional[dict[str, list[OutputColumn]]] = None) -> RelNode:
        cte_scope = dict(cte_scope or {})
        cte_defs: list[r.CTEDef] = []
        for cte in select.ctes:
            if cte.recursive:
                plan, columns = self._bind_recursive_cte(cte, outer, cte_scope)
            else:
                plan = self.bind_select(cte.query, outer, cte_scope)
                columns = _named_columns(cte.column_names, plan)
            cte_scope[cte.name.upper()] = columns
            cte_defs.append(r.CTEDef(cte.name.upper(), plan, cte.column_names,
                                     cte.recursive))
        defer_order = bool(select.branches)
        body = self._bind_term(select.first, outer, cte_scope,
                               order_by=None if defer_order else select.order_by)
        for kind, all_rows, branch in select.branches:
            right = self._bind_term(branch, outer, cte_scope, order_by=None)
            if len(body.output_columns()) != len(right.output_columns()):
                raise BindError("set operation branches differ in column count")
            body = r.SetOp(kind, all_rows, body, right)
        if defer_order and select.order_by:
            body = self._order_over_setop(body, select.order_by, outer)
        if cte_defs:
            return r.With(cte_defs, body)
        return body

    def _bind_term(self, term, outer, cte_scope, order_by) -> RelNode:
        if isinstance(term, a.TdSelect):
            plan = self.bind_select(term, outer, cte_scope)
            if order_by:
                plan = self._order_over_setop(plan, order_by, outer)
            return plan
        return self._bind_core(term, outer, cte_scope, order_by)

    def _bind_recursive_cte(self, cte: a.TdCTE, outer, cte_scope):
        query = cte.query
        if not query.branches:
            raise BindError(
                f"recursive CTE {cte.name} must be <seed> UNION ALL <recursive>")
        seed = self._bind_term(query.first, outer, cte_scope, None)
        columns = _named_columns(cte.column_names, seed)
        cte_scope = dict(cte_scope)
        cte_scope[cte.name.upper()] = columns
        body: RelNode = seed
        for kind, all_rows, branch in query.branches:
            if kind is not r.SetOpKind.UNION or not all_rows:
                raise BindError(
                    f"recursive CTE {cte.name} only supports UNION ALL")
            right = self._bind_term(branch, outer, cte_scope, None)
            body = r.SetOp(kind, all_rows, body, right)
        return body, columns

    def _order_over_setop(self, body: RelNode, order_by: list[s.SortKey],
                          outer) -> RelNode:
        output = body.output_columns()
        names = [col.name for col in output]
        keys = []
        for key in order_by:
            expr = key.expr
            if isinstance(expr, s.Const) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(names):
                    raise BindError(f"ORDER BY position {position} out of range")
                self._note("ordinal_group_by")
                expr = s.ColumnRef(names[position - 1], type=output[position - 1].type)
            elif isinstance(expr, s.ColumnRef) and expr.name.upper() in names:
                expr = s.ColumnRef(expr.name.upper())
            else:
                raise BindError(
                    "ORDER BY over a set operation must use output column "
                    "names or ordinals")
            keys.append(s.SortKey(expr, key.ascending, key.nulls_first))
        return r.Sort(body, keys)

    # -- FROM binding --------------------------------------------------------------------------

    def _bind_table_ref(self, ref: a.TdTableRef, outer,
                        cte_scope: dict[str, list[OutputColumn]]):
        """Returns (plan, deferred join condition or None)."""
        if isinstance(ref, a.TdJoin):
            left, __ = self._bind_table_ref(ref.left, outer, cte_scope)
            right, __ = self._bind_table_ref(ref.right, outer, cte_scope)
            condition = None
            if ref.condition is not None:
                scope = _Scope(left.output_columns() + right.output_columns(), outer)
                condition = self._bind_expr(ref.condition, scope)
            return r.Join(ref.kind, left, right, condition), None
        if isinstance(ref, a.TdSubqueryRef):
            child = self.bind_select(ref.query, outer, cte_scope)
            return r.DerivedTable(child, ref.alias.upper(), ref.column_names), None
        assert isinstance(ref, a.TdTableName)
        columns = cte_scope.get(ref.name.upper())
        if columns is not None:
            return r.CTERef(ref.name.upper(), columns, ref.alias), None
        table = self._catalog.table(ref.name)
        return r.Get(table, ref.alias), None

    def _bind_from(self, core: a.TdSelectCore, outer,
                   cte_scope: dict[str, list[OutputColumn]]) -> RelNode:
        refs = core.from_refs
        if not refs:
            plan: RelNode = r.Values(rows=[[]], names=[], types=[])
        else:
            plan, __ = self._bind_table_ref(refs[0], outer, cte_scope)
            for ref in refs[1:]:
                right, __ = self._bind_table_ref(ref, outer, cte_scope)
                plan = r.Join(r.JoinKind.CROSS, plan, right)
        return self._add_implicit_joins(core, plan, cte_scope, outer)

    def _add_implicit_joins(self, core: a.TdSelectCore, plan: RelNode,
                            cte_scope, outer: Optional[_Scope]) -> RelNode:
        """Teradata implicit joins: a qualified reference to a table that is
        absent from FROM silently joins it in. (Table 2: Binder.)

        A qualifier visible in an *enclosing* scope is a correlated
        reference, not an implicit join.
        """
        present = {col.qualifier for col in plan.output_columns() if col.qualifier}
        scope = outer
        while scope is not None:
            present |= scope.qualifiers()
            scope = scope.parent
        missing: list[str] = []
        for expr in _core_exprs(core):
            for node in _walk_unbound(expr):
                if isinstance(node, s.ColumnRef) and node.table:
                    qualifier = node.table.upper()
                    if qualifier in present or qualifier in missing:
                        continue
                    if qualifier in cte_scope or self._catalog.resolve(qualifier):
                        missing.append(qualifier)
        for name in missing:
            self._note("implicit_join")
            if name in cte_scope:
                right: RelNode = r.CTERef(name, cte_scope[name], None)
            else:
                right = r.Get(self._catalog.table(name), None)
            if isinstance(plan, r.Values) and not plan.names:
                plan = right
            else:
                plan = r.Join(r.JoinKind.CROSS, plan, right)
        return plan

    # -- SELECT core ------------------------------------------------------------------------------

    def _bind_core(self, core: a.TdSelectCore, outer,
                   cte_scope: dict[str, list[OutputColumn]],
                   order_by: Optional[list[s.SortKey]]) -> RelNode:
        source = self._bind_from(core, outer, cte_scope)
        scope = _Scope(source.output_columns(), outer, cte_scope)

        # Bind select items first so later clauses can reuse their aliases
        # (Teradata lets WHERE/QUALIFY/ORDER BY reference named expressions).
        select_exprs: list[ScalarExpr] = []
        select_names: list[str] = []
        for item in core.items:
            if item.star:
                for col in scope.columns:
                    if item.star_qualifier and col.qualifier != item.star_qualifier.upper():
                        continue
                    select_exprs.append(s.ColumnRef(col.name, col.qualifier, col.type))
                    select_names.append(col.name)
                continue
            bound = self._bind_expr(item.expr, scope)
            name = item.alias or _default_name(bound, len(select_names))
            select_exprs.append(bound)
            select_names.append(name.upper())
            if item.alias:
                scope.select_aliases[item.alias.upper()] = bound

        where = self._bind_expr(core.where, scope) if core.where is not None else None
        having = self._bind_expr(core.having, scope) if core.having is not None else None
        qualify = self._bind_expr(core.qualify, scope) if core.qualify is not None else None

        group_by: list[ScalarExpr] = []
        for expr in core.group_by:
            if isinstance(expr, s.Const) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(select_exprs):
                    raise BindError(f"GROUP BY position {position} out of range")
                self._note("ordinal_group_by")
                group_by.append(copy.deepcopy(select_exprs[position - 1]))
            else:
                group_by.append(self._bind_expr(expr, scope))
        if core.group_kind is not r.GroupingKind.SIMPLE:
            self._note("grouping_extensions", "transformer")

        sort_keys: list[s.SortKey] = []
        for key in (order_by if order_by is not None else core.order_by) or []:
            expr = key.expr
            if isinstance(expr, s.Const) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(select_exprs):
                    raise BindError(f"ORDER BY position {position} out of range")
                self._note("ordinal_group_by")
                sort_keys.append(s.SortKey(s.ColumnRef(select_names[position - 1]),
                                           key.ascending, key.nulls_first))
                continue
            if isinstance(expr, s.ColumnRef) and expr.table is None \
                    and expr.name.upper() in select_names:
                sort_keys.append(s.SortKey(s.ColumnRef(expr.name.upper()),
                                           key.ascending, key.nulls_first))
                continue
            sort_keys.append(s.SortKey(self._bind_expr(expr, scope),
                                       key.ascending, key.nulls_first))

        # -- aggregation ---------------------------------------------------------
        agg_calls: list[s.AggCall] = []
        for expr in select_exprs:
            _collect_aggs(expr, agg_calls)
        for extra in (having, qualify):
            if extra is not None:
                _collect_aggs(extra, agg_calls)
        for key in sort_keys:
            _collect_aggs(key.expr, agg_calls)

        current = source
        if where is not None:
            if _contains_agg(where):
                raise BindError("aggregates are not allowed in WHERE")
            current = r.Filter(current, where)

        if group_by or agg_calls or core.group_kind is not r.GroupingKind.SIMPLE:
            group_names = [f"_G{i}" for i in range(len(group_by))]
            agg_names = [f"_A{i}" for i in range(len(agg_calls))]
            current = r.Aggregate(current, group_by, group_names, agg_calls,
                                  agg_names, core.group_kind, core.grouping_sets)
            replacer = _AggReplacer(group_by, group_names, agg_calls, agg_names)
            select_exprs = [replacer.rewrite(expr) for expr in select_exprs]
            if having is not None:
                having = replacer.rewrite(having)
                current = r.Filter(current, having)
            if qualify is not None:
                qualify = replacer.rewrite(qualify)
            sort_keys = [s.SortKey(replacer.rewrite(key.expr), key.ascending,
                                   key.nulls_first) for key in sort_keys]
        elif having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")

        # -- windows + QUALIFY ------------------------------------------------------
        window_funcs: list[s.WindowFunc] = []
        window_names: list[str] = []
        extractor = _WindowExtractor(window_funcs, window_names)
        select_exprs = [extractor.rewrite(expr) for expr in select_exprs]
        if qualify is not None:
            self._note("qualify")
            qualify = extractor.rewrite(qualify)
        sort_keys = [s.SortKey(extractor.rewrite(key.expr), key.ascending,
                               key.nulls_first) for key in sort_keys]
        if window_funcs:
            current = r.Window(current, window_funcs, window_names)
        if qualify is not None:
            current = r.Filter(current, qualify)

        project = r.Project(current, list(select_exprs), list(select_names))
        result: RelNode = project
        if core.distinct:
            result = r.Distinct(result)

        if sort_keys:
            result = self._attach_sort(result, project, select_names,
                                       select_exprs, sort_keys, core.distinct)

        if core.top is not None:
            count, with_ties = core.top
            result = r.Limit(result, count, 0, with_ties)
        return result

    def _attach_sort(self, result: RelNode, project: r.Project,
                     select_names: list[str], select_exprs: list[ScalarExpr],
                     sort_keys: list[s.SortKey], distinct: bool) -> RelNode:
        keys: list[s.SortKey] = []
        hidden: list[tuple[str, ScalarExpr]] = []
        for key in sort_keys:
            expr = key.expr
            if isinstance(expr, s.ColumnRef) and expr.table is None \
                    and expr.name in select_names:
                keys.append(key)
                continue
            matched_name = None
            for name, sel in zip(select_names, select_exprs):
                if s.same(sel, expr):
                    matched_name = name
                    break
            if matched_name is not None:
                keys.append(s.SortKey(s.ColumnRef(matched_name), key.ascending,
                                      key.nulls_first))
                continue
            if distinct:
                raise BindError(
                    "ORDER BY expression must appear in the SELECT DISTINCT list")
            hidden_name = f"_S{len(hidden)}"
            hidden.append((hidden_name, expr))
            keys.append(s.SortKey(s.ColumnRef(hidden_name), key.ascending,
                                  key.nulls_first))
        if not hidden:
            return r.Sort(result, keys)
        visible = len(project.exprs)
        project.exprs = project.exprs + [expr for __, expr in hidden]
        project.names = project.names + [name for name, __ in hidden]
        sorted_node = r.Sort(result, keys)
        strip = [s.ColumnRef(name) for name in project.names[:visible]]
        return r.Project(sorted_node, strip, list(project.names[:visible]))

    # -- expression binding ---------------------------------------------------------------------

    def _bind_expr(self, expr: ScalarExpr, scope: _Scope) -> ScalarExpr:
        if isinstance(expr, s.ColumnRef):
            return self._bind_column(expr, scope)
        if isinstance(expr, a.TdRank):
            keys = [s.SortKey(self._bind_expr(key.expr, scope), key.ascending,
                              key.nulls_first) for key in expr.keys]
            func = s.WindowFunc("RANK", [], [], keys)
            func.type = t.INTEGER
            return func
        if isinstance(expr, a.TdCsv):
            raise BindError("row value constructor used outside IN/quantified "
                            "comparison")
        if isinstance(expr, s.SubqueryExpr):
            expr.left = [self._bind_expr(item, scope) for item in expr.left]
            select = expr.plan
            if isinstance(select, a.TdSelect):
                expr.plan = self.bind_select(select, scope, scope.ctes)
            if expr.kind is s.SubqueryKind.SCALAR:
                inner = expr.plan.output_columns()
                expr.type = inner[0].type if inner else t.UNKNOWN
            return expr
        if isinstance(expr, s.Arith):
            return self._bind_arith(expr, scope)
        # Generic: bind children, then derive type.
        for name in expr.CHILD_FIELDS:
            value = getattr(expr, name)
            if isinstance(value, ScalarExpr):
                setattr(expr, name, self._bind_expr(value, scope))
            elif isinstance(value, list):
                setattr(expr, name, [
                    self._bind_expr(item, scope) if isinstance(item, ScalarExpr)
                    else item
                    for item in value
                ])
        self._derive_type(expr)
        if isinstance(expr, s.Comp):
            expr = self._apply_case_insensitivity(expr)
        return expr

    def _bind_column(self, ref: s.ColumnRef, scope: _Scope) -> ScalarExpr:
        current: Optional[_Scope] = scope
        first = True
        while current is not None:
            column = current.resolve_local(ref.name, ref.table)
            if column is not None:
                bound = s.ColumnRef(column.name, column.qualifier, column.type)
                return bound
            if first and ref.table is None and ref.name.upper() in current.select_aliases:
                # Chained projection: replace by the named expression's
                # definition (Table 2).
                self._note("named_expression")
                return copy.deepcopy(current.select_aliases[ref.name.upper()])
            first = False
            current = current.parent
        raise BindError(f"unknown column {ref.qualified()!r}")

    def _bind_arith(self, expr: s.Arith, scope: _Scope) -> ScalarExpr:
        left = self._bind_expr(expr.left, scope)
        right = self._bind_expr(expr.right, scope)
        # Fold INTERVAL literals into DATEADD calls right away: the construct
        # only exists as a date-arithmetic operand.
        interval = None
        other = None
        if _is_interval(left):
            interval, other = left, right
        elif _is_interval(right):
            interval, other = right, left
        if interval is not None:
            count = interval.args[0].value  # type: ignore[union-attr]
            unit = interval.args[1].value   # type: ignore[union-attr]
            if expr.op is s.ArithOp.SUB:
                if other is not right:
                    raise BindError("cannot subtract a date from an interval")
                count = -count
            elif expr.op is not s.ArithOp.ADD:
                raise BindError("intervals support only + and -")
            call = s.FuncCall("DATEADD", [s.const_str(str(unit)),
                                          s.const_int(count), other])
            call.type = other.type if other.type.is_temporal else t.DATE
            return call
        expr.left, expr.right = left, right
        self._derive_type(expr)
        return expr

    def _apply_case_insensitivity(self, comp: s.Comp) -> s.Comp:
        """NOT CASESPECIFIC columns compare case-insensitively on Teradata;
        wrap both sides in UPPER() to preserve that on the target."""
        def is_ci(node: ScalarExpr) -> bool:
            return isinstance(node, s.ColumnRef) and node.type.is_text \
                and not node.type.case_specific

        if is_ci(comp.left) or is_ci(comp.right):
            self._note("column_properties")
            if comp.left.type.is_text:
                upper_left = s.FuncCall("UPPER", [comp.left])
                upper_left.type = comp.left.type
                comp.left = upper_left
            if comp.right.type.is_text:
                upper_right = s.FuncCall("UPPER", [comp.right])
                upper_right.type = comp.right.type
                comp.right = upper_right
        return comp

    # -- type derivation -----------------------------------------------------------------------

    def _derive_type(self, expr: ScalarExpr) -> None:
        if isinstance(expr, s.Arith):
            left, right = expr.left.type, expr.right.type
            if expr.op is s.ArithOp.CONCAT:
                expr.type = t.varchar()
            elif left.kind is t.TypeKind.DATE and right.is_numeric:
                expr.type = t.DATE
            elif right.kind is t.TypeKind.DATE and left.is_numeric:
                expr.type = t.DATE
            elif left.kind is t.TypeKind.DATE and right.kind is t.TypeKind.DATE:
                expr.type = t.INTEGER
            elif expr.op is s.ArithOp.DIV:
                expr.type = t.FLOAT
            else:
                expr.type = t.common_numeric(left, right)
        elif isinstance(expr, s.Negate):
            expr.type = expr.operand.type
        elif isinstance(expr, s.AggCall):
            if expr.name in _AGG_TYPES:
                expr.type = _AGG_TYPES[expr.name]
            elif expr.args:
                expr.type = expr.args[0].type
            else:
                expr.type = t.BIGINT
        elif isinstance(expr, s.WindowFunc):
            if expr.name in ("RANK", "DENSE_RANK", "ROW_NUMBER"):
                expr.type = t.INTEGER
            elif expr.name in _AGG_TYPES:
                expr.type = _AGG_TYPES[expr.name]
            elif expr.args:
                expr.type = expr.args[0].type
        elif isinstance(expr, s.FuncCall):
            name = expr.name.upper()
            if name in _FUNC_TYPES:
                expr.type = _FUNC_TYPES[name]
            elif name in ("ZEROIFNULL", "NULLIFZERO", "ABS", "ROUND", "COALESCE",
                          "NULLIF", "GREATEST", "LEAST"):
                expr.type = expr.args[0].type if expr.args else t.UNKNOWN
        elif isinstance(expr, s.Case):
            for result in expr.results:
                if result.type.kind is not t.TypeKind.UNKNOWN:
                    expr.type = result.type
                    break
            else:
                if expr.default is not None:
                    expr.type = expr.default.type


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _is_interval(expr: ScalarExpr) -> bool:
    return isinstance(expr, s.FuncCall) and expr.name == "_INTERVAL"


def _ref_alias(ref: a.TdTableRef) -> Optional[str]:
    if isinstance(ref, a.TdTableName):
        return ref.alias
    if isinstance(ref, a.TdSubqueryRef):
        return ref.alias
    return None


def _named_columns(column_names: Optional[list[str]], plan: RelNode) -> list[OutputColumn]:
    inner = plan.output_columns()
    if column_names:
        if len(column_names) != len(inner):
            raise BindError(
                f"{len(column_names)} column names for {len(inner)} columns")
        return [OutputColumn(name.upper(), col.type)
                for name, col in zip(column_names, inner)]
    return [OutputColumn(col.name, col.type) for col in inner]


def _default_name(expr: ScalarExpr, position: int) -> str:
    if isinstance(expr, s.ColumnRef):
        return expr.name
    if isinstance(expr, (s.AggCall, s.FuncCall)):
        return expr.name
    return f"_C{position}"


def _core_exprs(core: a.TdSelectCore):
    for item in core.items:
        if item.expr is not None:
            yield item.expr
    for clause in (core.where, core.having, core.qualify):
        if clause is not None:
            yield clause
    yield from core.group_by
    for key in core.order_by:
        yield key.expr


def _walk_unbound(expr: ScalarExpr):
    """Walk an unbound AST scalar tree, not descending into subquery ASTs."""
    yield expr
    for child in expr.children():
        yield from _walk_unbound(child)


def _contains_agg(expr: ScalarExpr) -> bool:
    if isinstance(expr, s.AggCall):
        return True
    return any(_contains_agg(child) for child in expr.children())


def _collect_aggs(expr: ScalarExpr, out: list[s.AggCall]) -> None:
    if isinstance(expr, s.AggCall):
        for existing in out:
            if existing is expr or s.same(existing, expr):
                return
        out.append(expr)
        return
    for child in expr.children():
        _collect_aggs(child, out)


class _AggReplacer:
    """Replaces group-by subtrees / aggregate calls with Aggregate outputs."""

    def __init__(self, group_by, group_names, aggs, agg_names):
        self._groups = list(zip(group_by, group_names))
        self._aggs = list(zip(aggs, agg_names))

    def rewrite(self, expr: ScalarExpr) -> ScalarExpr:
        if isinstance(expr, s.AggCall):
            for agg, name in self._aggs:
                if agg is expr or s.same(agg, expr):
                    return s.ColumnRef(name, type=agg.type)
            raise BindError("uncollected aggregate (binder bug)")
        for group, name in self._groups:
            if s.same(group, expr):
                return s.ColumnRef(name, type=group.type)
        if isinstance(expr, s.SubqueryExpr):
            expr.left = [self.rewrite(item) for item in expr.left]
            return expr
        for field_name in expr.CHILD_FIELDS:
            value = getattr(expr, field_name)
            if isinstance(value, ScalarExpr):
                setattr(expr, field_name, self.rewrite(value))
            elif isinstance(value, list):
                setattr(expr, field_name, [
                    self.rewrite(item) if isinstance(item, ScalarExpr) else item
                    for item in value
                ])
        return expr


class _WindowExtractor:
    """Hoists WindowFunc specs into a Window operator's output columns."""

    def __init__(self, funcs: list[s.WindowFunc], names: list[str]):
        self._funcs = funcs
        self._names = names

    def rewrite(self, expr: ScalarExpr) -> ScalarExpr:
        if isinstance(expr, s.WindowFunc):
            for func, name in zip(self._funcs, self._names):
                if func is expr or s.same(func, expr):
                    return s.ColumnRef(name, type=func.type)
            name = f"_W{len(self._funcs)}"
            self._funcs.append(expr)
            self._names.append(name)
            return s.ColumnRef(name, type=expr.type)
        if isinstance(expr, s.SubqueryExpr):
            expr.left = [self.rewrite(item) for item in expr.left]
            return expr
        for field_name in expr.CHILD_FIELDS:
            value = getattr(expr, field_name)
            if isinstance(value, ScalarExpr):
                setattr(expr, field_name, self.rewrite(value))
            elif isinstance(value, list):
                setattr(expr, field_name, [
                    self.rewrite(item) if isinstance(item, ScalarExpr) else item
                    for item in value
                ])
        return expr
