"""Parameter binding for prepared requests.

The ODBC Server section (4.5) lists parameterized queries among the request
kinds Hyper-Q submits. On the *source* side, applications send statements
with ``?`` positional markers or ``:name`` named markers; this module
substitutes concrete values into a parsed statement before binding, so the
rest of the pipeline (and the target) sees a fully literal request — the
same strategy the stored-procedure emulator uses for host variables.
"""

from __future__ import annotations

import datetime
from typing import Mapping, Optional, Sequence

from repro.errors import BindError
from repro.frontend.teradata import ast as a
from repro.xtra import scalars as s
from repro.xtra import types as t


def _const_for(value: object) -> s.Const:
    if value is None:
        return s.null_const()
    if isinstance(value, bool):
        return s.Const(value, t.BOOLEAN)
    if isinstance(value, int):
        return s.Const(value, t.INTEGER)
    if isinstance(value, float):
        return s.Const(value, t.FLOAT)
    if isinstance(value, str):
        return s.const_str(value)
    if isinstance(value, datetime.datetime):
        return s.Const(value, t.TIMESTAMP)
    if isinstance(value, datetime.date):
        return s.Const(value, t.DATE)
    raise BindError(f"unsupported parameter type {type(value).__name__}")


class _Binder:
    def __init__(self, positional: Sequence[object],
                 named: Mapping[str, object]):
        self._positional = list(positional)
        self._named = {key.upper(): value for key, value in named.items()}
        self._cursor = 0
        self.used = 0

    def replace(self, param: s.Param) -> s.Const:
        name = param.name
        if name == "?":
            if self._cursor >= len(self._positional):
                raise BindError(
                    f"statement uses more than {len(self._positional)} "
                    "positional parameters")
            value = self._positional[self._cursor]
            self._cursor += 1
            self.used += 1
            return _const_for(value)
        key = name.lstrip(":").upper()
        if key not in self._named:
            raise BindError(f"missing value for parameter :{key}")
        self.used += 1
        return _const_for(self._named[key])

    def check_exhausted(self) -> None:
        if self._cursor < len(self._positional):
            raise BindError(
                f"{len(self._positional)} positional parameters supplied, "
                f"only {self._cursor} used")


def _substitute_expr(expr: Optional[s.ScalarExpr],
                     binder: _Binder) -> Optional[s.ScalarExpr]:
    if expr is None:
        return None
    if isinstance(expr, s.Param):
        return binder.replace(expr)
    for field_name in expr.CHILD_FIELDS:
        value = getattr(expr, field_name)
        if isinstance(value, s.ScalarExpr):
            setattr(expr, field_name, _substitute_expr(value, binder))
        elif isinstance(value, list):
            setattr(expr, field_name, [
                _substitute_expr(item, binder)
                if isinstance(item, s.ScalarExpr) else item
                for item in value
            ])
    if isinstance(expr, s.SubqueryExpr) and isinstance(expr.plan, a.TdSelect):
        _substitute_select(expr.plan, binder)
    return expr


def _substitute_select(select: a.TdSelect, binder: _Binder) -> None:
    terms = [select.first] + [branch for __, __, branch in select.branches]
    for term in terms:
        if isinstance(term, a.TdSelect):
            _substitute_select(term, binder)
            continue
        core = term
        for item in core.items:
            if item.expr is not None:
                item.expr = _substitute_expr(item.expr, binder)
        core.where = _substitute_expr(core.where, binder)
        core.having = _substitute_expr(core.having, binder)
        core.qualify = _substitute_expr(core.qualify, binder)
        core.group_by = [_substitute_expr(expr, binder)
                         for expr in core.group_by]
        for key in core.order_by:
            key.expr = _substitute_expr(key.expr, binder)
        for ref in core.from_refs:
            _substitute_table_ref(ref, binder)
    for cte in select.ctes:
        _substitute_select(cte.query, binder)


def _substitute_table_ref(ref: a.TdTableRef, binder: _Binder) -> None:
    if isinstance(ref, a.TdJoin):
        _substitute_table_ref(ref.left, binder)
        _substitute_table_ref(ref.right, binder)
        ref.condition = _substitute_expr(ref.condition, binder)
    elif isinstance(ref, a.TdSubqueryRef):
        _substitute_select(ref.query, binder)


def bind_parameters(statement: a.TdStatement,
                    positional: Optional[Sequence[object]] = None,
                    named: Optional[Mapping[str, object]] = None) -> a.TdStatement:
    """Substitute parameter markers in a parsed statement (in place).

    Positional values feed ``?`` markers left to right; named values feed
    ``:name`` markers. Unused positional values and missing named values
    both raise :class:`~repro.errors.BindError` — silent mismatches corrupt
    applications.
    """
    binder = _Binder(positional or [], named or {})
    if isinstance(statement, a.TdQuery):
        _substitute_select(statement.select, binder)
    elif isinstance(statement, a.TdInsert):
        if statement.rows is not None:
            statement.rows = [
                [_substitute_expr(cell, binder) for cell in row]
                for row in statement.rows
            ]
        if statement.select is not None:
            _substitute_select(statement.select, binder)
    elif isinstance(statement, a.TdUpdate):
        statement.assignments = [
            (name, _substitute_expr(expr, binder))
            for name, expr in statement.assignments
        ]
        statement.where = _substitute_expr(statement.where, binder)
    elif isinstance(statement, a.TdDelete):
        statement.where = _substitute_expr(statement.where, binder)
    elif isinstance(statement, a.TdMerge):
        statement.condition = _substitute_expr(statement.condition, binder)
        if statement.matched_assignments is not None:
            statement.matched_assignments = [
                (name, _substitute_expr(expr, binder))
                for name, expr in statement.matched_assignments
            ]
        if statement.insert_values is not None:
            statement.insert_values = [
                _substitute_expr(expr, binder)
                for expr in statement.insert_values
            ]
    binder.check_exhausted()
    return statement
