"""Recursive-descent parser for the Teradata dialect.

Implements the paper's documented query surface: SEL/INS/UPD/DEL shortcuts,
free clause ordering (Example 1 places ORDER BY before WHERE), QUALIFY, the
legacy ``RANK(expr DESC)`` spelling, vector subqueries, ``**`` and infix
``MOD``, SET/MULTISET/VOLATILE tables with Teradata column properties, macros,
stored procedures, MERGE, recursive WITH, and HELP/SHOW commands.

Keyword-level translations (the paper's *Translation* class) are performed
right here during parsing and reported to the :class:`FeatureTracker`.
"""

from __future__ import annotations

import copy
import datetime
from typing import Optional

from repro.errors import ParseError
from repro.sqlkit import Token, TokenKind
from repro.core.tracker import FeatureTracker
from repro.frontend.teradata import ast as a
from repro.frontend.teradata.lexer import make_lexer
from repro.xtra import relational as r
from repro.xtra import scalars as s
from repro.xtra import types as t

_AGG_NAMES = frozenset({"SUM", "COUNT", "AVG", "MIN", "MAX", "STDDEV_SAMP"})
_WINDOW_ONLY = frozenset({"RANK", "DENSE_RANK", "ROW_NUMBER", "LAG",
                          "LEAD", "FIRST_VALUE", "LAST_VALUE"})

# Keywords acceptable as identifiers in name position.
_SOFT_KEYWORDS = frozenset({
    "DATE", "TIME", "TIMESTAMP", "YEAR", "MONTH", "DAY", "FIRST", "LAST",
    "KEY", "WORK", "ROW", "VALUES", "TITLE", "FORMAT", "INDEX", "STATS",
    "SESSION", "DATABASE", "COLUMN", "NO",
})

_KEYWORD_COMPARISONS = {
    "EQ": s.CompOp.EQ, "NE": s.CompOp.NE, "LT": s.CompOp.LT,
    "LE": s.CompOp.LE, "GT": s.CompOp.GT, "GE": s.CompOp.GE,
}


class TeradataParser:
    """Parses Teradata SQL text into the frontend AST."""

    def __init__(self, tracker: Optional[FeatureTracker] = None):
        self._tracker = tracker
        self._lexer = make_lexer()

    @property
    def lexer(self):
        """The dialect-configured lexer, reused by the translation cache's
        fingerprinter so canonicalization and parsing tokenize identically."""
        return self._lexer

    def _note(self, feature: str, stage: str = "parser") -> None:
        if self._tracker is not None:
            self._tracker.note(feature, stage)

    # -- entry points --------------------------------------------------------------

    def parse_statement(self, sql: str) -> a.TdStatement:
        statements = self.parse_script(sql)
        if len(statements) != 1:
            raise ParseError(f"expected one statement, found {len(statements)}")
        return statements[0]

    def parse_script(self, sql: str) -> list[a.TdStatement]:
        self._tokens = self._lexer.tokenize(sql)
        self._index = 0
        statements: list[a.TdStatement] = []
        while not self._at(TokenKind.EOF):
            if self._accept_op(";"):
                continue
            statements.append(self._statement())
        return statements

    def split_script(self, sql: str) -> list[str]:
        """Slice *sql* into statement substrings at top-level ``;`` tokens.

        Lexer-driven, so semicolons inside string literals and quoted
        identifiers never split. Used to route statements the engine
        intercepts before parsing (``SHOW HYPERQ ...``) without parsing
        the rest of the script twice.
        """
        line_starts = [0]
        for line in sql.split("\n")[:-1]:
            line_starts.append(line_starts[-1] + len(line) + 1)

        def offset(token: Token) -> int:
            return line_starts[token.line - 1] + token.column - 1

        segments: list[str] = []
        start: Optional[int] = None
        for token in self._lexer.tokenize(sql):
            if token.kind is TokenKind.EOF:
                break
            if token.is_op(";"):
                if start is not None:
                    segments.append(sql[start:offset(token)])
                    start = None
                continue
            if start is None:
                start = offset(token)
        if start is not None:
            segments.append(sql[start:])
        return segments

    # -- token plumbing -------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _at_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._at_keyword(*names):
            return self._next()
        return None

    def _expect_keyword(self, *names: str) -> Token:
        token = self._accept_keyword(*names)
        if token is None:
            found = self._peek()
            raise ParseError(
                f"expected {' or '.join(names)}, found {found.text or 'end of input'!r}",
                found.line, found.column)
        return token

    def _accept_op(self, *ops: str) -> Optional[Token]:
        if self._peek().is_op(*ops):
            return self._next()
        return None

    def _expect_op(self, *ops: str) -> Token:
        token = self._accept_op(*ops)
        if token is None:
            found = self._peek()
            raise ParseError(
                f"expected {' or '.join(ops)}, found {found.text or 'end of input'!r}",
                found.line, found.column)
        return token

    def _at_ident(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind in (TokenKind.IDENT, TokenKind.QUOTED_IDENT) or (
            token.kind is TokenKind.KEYWORD and token.value in _SOFT_KEYWORDS)

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if self._at_ident():
            self._next()
            return str(token.value).upper()
        raise ParseError(f"expected {what}, found {token.text or 'end of input'!r}",
                         token.line, token.column)

    def _expect_number(self) -> float:
        token = self._peek()
        if token.kind is not TokenKind.NUMBER:
            raise ParseError(f"expected a number, found {token.text!r}",
                             token.line, token.column)
        self._next()
        return token.value  # type: ignore[return-value]

    def _qualified_name(self) -> str:
        name = self._expect_ident("object name")
        while self._accept_op("."):
            name = self._expect_ident("object name")
        return name

    def _source_between(self, start: int, end: int) -> str:
        return " ".join(token.text for token in self._tokens[start:end])

    # -- statements -------------------------------------------------------------------

    def _statement(self) -> a.TdStatement:
        token = self._peek()
        if token.is_keyword("SEL", "SELECT", "WITH") or token.is_op("("):
            return a.TdQuery(self._select_expr())
        if token.is_keyword("INS", "INSERT"):
            return self._insert()
        if token.is_keyword("UPD", "UPDATE"):
            return self._update()
        if token.is_keyword("DEL", "DELETE"):
            return self._delete()
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("REPLACE"):
            return self._create(replace=True)
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("MERGE"):
            return self._merge()
        if token.is_keyword("EXEC", "EXECUTE"):
            return self._exec_macro()
        if token.is_keyword("CALL"):
            return self._call()
        if token.is_keyword("HELP"):
            return self._help()
        if token.is_keyword("SHOW"):
            return self._show()
        if token.is_keyword("COLLECT"):
            return self._collect_statistics()
        if token.is_keyword("BT"):
            self._next()
            return a.TdTransaction("BEGIN")
        if token.is_keyword("ET"):
            self._next()
            return a.TdTransaction("COMMIT")
        if token.is_keyword("BEGIN"):
            self._next()
            self._expect_keyword("TRANSACTION", "WORK")
            return a.TdTransaction("BEGIN")
        if token.is_keyword("COMMIT"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            return a.TdTransaction("COMMIT")
        if token.is_keyword("ROLLBACK"):
            self._next()
            self._accept_keyword("TRANSACTION", "WORK")
            return a.TdTransaction("ROLLBACK")
        if token.is_keyword("SET"):
            return self._set_session()
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)

    def _set_session(self) -> a.TdSetSession:
        self._expect_keyword("SET")
        self._expect_keyword("SESSION")
        name = self._expect_ident("session parameter")
        self._expect_op("=")
        token = self._next()
        return a.TdSetSession(name, token.value)

    def _collect_statistics(self) -> a.TdCollectStatistics:
        self._expect_keyword("COLLECT")
        self._expect_keyword("STATISTICS", "STATS")
        self._accept_keyword("ON")
        table = self._qualified_name()
        # Consume optional COLUMN (...) specifications.
        while self._accept_keyword("COLUMN"):
            if self._accept_op("("):
                self._expect_ident("column name")
                while self._accept_op(","):
                    self._expect_ident("column name")
                self._expect_op(")")
            else:
                self._expect_ident("column name")
            self._accept_op(",")
        return a.TdCollectStatistics(table)

    # -- DML ---------------------------------------------------------------------------

    def _insert(self) -> a.TdInsert:
        token = self._expect_keyword("INS", "INSERT")
        if token.value == "INS":
            self._note("ins_shortcut")
        self._accept_keyword("INTO")
        table = self._qualified_name()
        columns: Optional[list[str]] = None
        if self._peek().is_op("(") and self._column_list_ahead():
            columns = self._paren_name_list()
        if self._at_keyword("VALUES"):
            self._next()
            rows = [self._values_row()]
            while self._accept_op(","):
                rows.append(self._values_row())
            return a.TdInsert(table, columns, rows=rows, select=None)
        if self._peek().is_op("(") and not self._subquery_ahead():
            # Teradata positional shorthand: INS t (v1, v2, ...).
            rows = [self._values_row()]
            return a.TdInsert(table, None, rows=rows, select=None)
        select = self._select_expr()
        return a.TdInsert(table, columns, rows=None, select=select)

    def _column_list_ahead(self) -> bool:
        """True when '(' begins a column name list followed by VALUES/SELECT."""
        if not self._at_ident(1):
            return False
        offset = 1
        depth = 0
        while True:
            token = self._peek(offset)
            if token.kind is TokenKind.EOF:
                return False
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                if depth == 0:
                    following = self._peek(offset + 1)
                    return following.is_keyword("VALUES", "SEL", "SELECT", "WITH") \
                        or following.is_op("(")
                depth -= 1
            offset += 1

    def _subquery_ahead(self) -> bool:
        return self._peek(1).is_keyword("SEL", "SELECT", "WITH")

    def _paren_name_list(self) -> list[str]:
        self._expect_op("(")
        names = [self._expect_ident("column name")]
        while self._accept_op(","):
            names.append(self._expect_ident("column name"))
        self._expect_op(")")
        return names

    def _values_row(self) -> list[s.ScalarExpr]:
        self._expect_op("(")
        row = [self._expr()]
        while self._accept_op(","):
            row.append(self._expr())
        self._expect_op(")")
        return row

    def _update(self) -> a.TdUpdate:
        token = self._expect_keyword("UPD", "UPDATE")
        if token.value == "UPD":
            self._note("upd_shortcut")
        table = self._qualified_name()
        alias = None
        if self._at_ident() and not self._at_keyword("SET"):
            alias = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_op(","):
            assignments.append(self._assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        return a.TdUpdate(table, alias, assignments, where)

    def _assignment(self) -> tuple[str, s.ScalarExpr]:
        column = self._expect_ident("column name")
        self._expect_op("=")
        return column, self._expr()

    def _delete(self) -> a.TdDelete:
        token = self._expect_keyword("DEL", "DELETE")
        if token.value == "DEL":
            self._note("del_shortcut")
        self._accept_keyword("FROM")
        table = self._qualified_name()
        if self._accept_keyword("ALL"):
            return a.TdDelete(table, None, None)
        alias = None
        if self._at_ident() and not self._at_keyword("WHERE"):
            alias = self._expect_ident()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expr()
        return a.TdDelete(table, alias, where)

    # -- DDL -----------------------------------------------------------------------------

    def _create(self, replace: bool = False) -> a.TdStatement:
        self._expect_keyword("CREATE" if not replace else "REPLACE")
        set_semantics = False
        multiset_seen = False
        if self._accept_keyword("SET"):
            set_semantics = True
        elif self._accept_keyword("MULTISET"):
            multiset_seen = True
        volatile = bool(self._accept_keyword("VOLATILE"))
        global_temporary = False
        if self._accept_keyword("GLOBAL"):
            self._expect_keyword("TEMPORARY")
            global_temporary = True
        if self._accept_keyword("TABLE"):
            return self._create_table(set_semantics, volatile, global_temporary)
        if set_semantics or multiset_seen or volatile or global_temporary:
            token = self._peek()
            raise ParseError("table options require CREATE TABLE",
                             token.line, token.column)
        if self._accept_keyword("VIEW"):
            return self._create_view(replace)
        if self._accept_keyword("MACRO"):
            return self._create_macro(replace)
        if self._accept_keyword("PROCEDURE"):
            return self._create_procedure(replace)
        token = self._peek()
        raise ParseError(f"unsupported CREATE {token.text!r}", token.line, token.column)

    def _create_table(self, set_semantics: bool, volatile: bool,
                      global_temporary: bool) -> a.TdCreateTable:
        name = self._qualified_name()
        # Teradata table options: ", NO FALLBACK, NO JOURNAL ..." — skip.
        while self._accept_op(","):
            self._skip_table_option()
        if self._accept_keyword("AS"):
            if self._accept_op("("):
                select = self._select_expr()
                self._expect_op(")")
            else:
                select = self._select_expr()
            with_data = True
            if self._accept_keyword("WITH"):
                if self._accept_keyword("NO"):
                    with_data = False
                self._expect_ident("DATA")
            table = a.TdCreateTable(name, set_semantics, volatile,
                                    global_temporary, [], (), select, with_data)
        else:
            self._expect_op("(")
            columns = [self._column_def()]
            while self._accept_op(","):
                columns.append(self._column_def())
            self._expect_op(")")
            table = a.TdCreateTable(name, set_semantics, volatile,
                                    global_temporary, columns)
        if self._accept_keyword("UNIQUE"):
            self._expect_keyword("PRIMARY")
            self._expect_keyword("INDEX")
            table.primary_index = tuple(self._paren_name_list())
        elif self._accept_keyword("PRIMARY"):
            self._expect_keyword("INDEX")
            table.primary_index = tuple(self._paren_name_list())
        if self._accept_keyword("ON"):
            self._expect_keyword("COMMIT")
            if self._accept_keyword("PRESERVE"):
                table.on_commit_preserve = True
            else:
                self._expect_keyword("DEL", "DELETE")
            self._expect_keyword("ROWS")
        return table

    def _skip_table_option(self) -> None:
        """Skip one Teradata physical table option (NO FALLBACK etc.)."""
        while self._at_ident() or self._at_keyword("NO", "FALLBACK"):
            self._next()

    def _column_def(self) -> a.TdColumnDef:
        name = self._expect_ident("column name")
        column_type = self._type_name()
        column = a.TdColumnDef(name, column_type)
        while True:
            if self._accept_keyword("NOT"):
                if self._accept_keyword("NULL"):
                    column.not_null = True
                elif self._accept_keyword("CASESPECIFIC"):
                    column.case_specific = False
                else:
                    token = self._peek()
                    raise ParseError("expected NULL or CASESPECIFIC after NOT",
                                     token.line, token.column)
            elif self._accept_keyword("NULL"):
                column.not_null = False
            elif self._accept_keyword("CASESPECIFIC"):
                column.case_specific = True
            elif self._accept_keyword("DEFAULT"):
                start = self._index
                column.default_expr = self._default_expr()
                column.default_sql = self._source_between(start, self._index)
            elif self._accept_keyword("FORMAT", "TITLE"):
                self._next()  # the format/title string literal
            elif self._accept_keyword("CHARACTER"):
                self._expect_keyword("SET")
                self._expect_ident("character set")
            elif self._accept_keyword("COMPRESS"):
                if self._peek().kind in (TokenKind.NUMBER, TokenKind.STRING):
                    self._next()
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                column.not_null = True
            elif self._accept_keyword("UNIQUE"):
                pass
            else:
                break
        return column

    def _default_expr(self) -> s.ScalarExpr:
        """A DEFAULT value: literal, DATE literal, or a niladic function."""
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._next()
            kind = t.INTEGER if isinstance(token.value, int) else t.FLOAT
            return s.Const(token.value, kind)
        if token.kind is TokenKind.STRING:
            self._next()
            return s.const_str(str(token.value))
        if token.is_keyword("NULL"):
            self._next()
            return s.null_const()
        if token.is_keyword("DATE") and self._peek(1).kind is TokenKind.STRING:
            return self._date_literal()
        if token.is_keyword("CURRENT") or (
                token.kind is TokenKind.IDENT and str(token.value).upper() in (
                    "CURRENT_DATE", "CURRENT_TIMESTAMP", "CURRENT_TIME", "USER")):
            self._next()
            return s.FuncCall(str(token.value).upper())
        raise ParseError(f"unsupported DEFAULT {token.text!r}", token.line, token.column)

    def _type_name(self) -> t.SQLType:
        token = self._peek()
        name = str(token.value).upper() if token.kind in (
            TokenKind.IDENT, TokenKind.KEYWORD) else ""
        mapping = {
            "BYTEINT": t.SMALLINT, "SMALLINT": t.SMALLINT,
            "INT": t.INTEGER, "INTEGER": t.INTEGER, "BIGINT": t.BIGINT,
            "FLOAT": t.FLOAT, "REAL": t.FLOAT, "DOUBLE": t.FLOAT,
            "DATE": t.DATE, "TIME": t.TIME, "TIMESTAMP": t.TIMESTAMP,
        }
        if name in mapping:
            self._next()
            if name == "DOUBLE" and self._peek().kind is TokenKind.IDENT \
                    and self._peek().value == "PRECISION":
                self._next()
            return mapping[name]
        if name in ("DECIMAL", "NUMERIC", "NUMBER"):
            self._next()
            precision, scale = 18, 2
            if self._accept_op("("):
                precision = int(self._expect_number())
                scale = 0
                if self._accept_op(","):
                    scale = int(self._expect_number())
                self._expect_op(")")
            return t.decimal(precision, scale)
        if name in ("CHAR", "CHARACTER"):
            self._next()
            length = 1
            if self._accept_op("("):
                length = int(self._expect_number())
                self._expect_op(")")
            return t.char(length)
        if name in ("VARCHAR", "CLOB"):
            self._next()
            length = None
            if self._accept_op("("):
                length = int(self._expect_number())
                self._expect_op(")")
            return t.SQLType(t.TypeKind.VARCHAR, length=length)
        if name == "PERIOD":
            self._next()
            element = t.TypeKind.DATE
            if self._accept_op("("):
                element_token = self._expect_keyword("DATE", "TIME", "TIMESTAMP")
                element = t.TypeKind[str(element_token.value)]
                self._expect_op(")")
            return t.SQLType(t.TypeKind.PERIOD, precision=None)
        raise ParseError(f"expected a type name, found {token.text!r}",
                         token.line, token.column)

    def _create_view(self, replace: bool) -> a.TdCreateView:
        name = self._qualified_name()
        column_names = None
        if self._peek().is_op("("):
            column_names = self._paren_name_list()
        self._expect_keyword("AS")
        start = self._index
        select = self._select_expr()
        return a.TdCreateView(name, column_names, select,
                              self._source_between(start, self._index), replace)

    def _create_macro(self, replace: bool) -> a.TdCreateMacro:
        name = self._qualified_name()
        parameters: list[tuple[str, t.SQLType]] = []
        if self._accept_op("("):
            if not self._peek().is_op(")"):
                parameters.append(self._macro_param())
                while self._accept_op(","):
                    parameters.append(self._macro_param())
            self._expect_op(")")
        self._expect_keyword("AS")
        self._expect_op("(")
        # Capture the raw body text up to the matching ')' — the macro
        # emulator parses it lazily at EXEC time with arguments substituted.
        depth = 0
        start = self._index
        while True:
            token = self._peek()
            if token.kind is TokenKind.EOF:
                raise ParseError("unterminated macro body", token.line, token.column)
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                if depth == 0:
                    break
                depth -= 1
            self._next()
        body_sql = self._source_between(start, self._index)
        self._expect_op(")")
        return a.TdCreateMacro(name, parameters, body_sql, replace)

    def _macro_param(self) -> tuple[str, t.SQLType]:
        name = self._expect_ident("parameter name")
        param_type = self._type_name()
        if self._accept_keyword("DEFAULT"):
            self._default_expr()
        return name, param_type

    def _exec_macro(self) -> a.TdExecMacro:
        self._expect_keyword("EXEC", "EXECUTE")
        name = self._qualified_name()
        arguments: list[s.ScalarExpr] = []
        named: dict[str, s.ScalarExpr] = {}
        if self._accept_op("("):
            if not self._peek().is_op(")"):
                while True:
                    if self._at_ident() and self._peek(1).is_op("="):
                        param = self._expect_ident()
                        self._expect_op("=")
                        named[param] = self._expr()
                    else:
                        arguments.append(self._expr())
                    if not self._accept_op(","):
                        break
            self._expect_op(")")
        return a.TdExecMacro(name, arguments, named)

    # -- procedures ------------------------------------------------------------------------

    def _create_procedure(self, replace: bool) -> a.TdCreateProcedure:
        name = self._qualified_name()
        parameters: list[tuple[str, str, t.SQLType]] = []
        if self._accept_op("("):
            if not self._peek().is_op(")"):
                parameters.append(self._proc_param())
                while self._accept_op(","):
                    parameters.append(self._proc_param())
            self._expect_op(")")
        body = self._proc_block()
        return a.TdCreateProcedure(name, parameters, body, replace)

    def _proc_param(self) -> tuple[str, str, t.SQLType]:
        mode = "IN"
        token = self._accept_keyword("IN", "OUT", "INOUT")
        if token is not None:
            mode = str(token.value)
        name = self._expect_ident("parameter name")
        param_type = self._type_name()
        return mode, name, param_type

    def _proc_block(self) -> list[a.TdProcStatement]:
        self._expect_keyword("BEGIN")
        statements: list[a.TdProcStatement] = []
        while not self._at_keyword("END"):
            statements.append(self._proc_statement())
            self._accept_op(";")
        self._expect_keyword("END")
        return statements

    def _proc_statement(self) -> a.TdProcStatement:
        token = self._peek()
        if token.is_keyword("DECLARE"):
            self._next()
            name = self._expect_ident("variable name")
            var_type = self._type_name()
            default = None
            if self._accept_keyword("DEFAULT"):
                default = self._expr()
            return a.TdDeclare(name, var_type, default)
        if token.is_keyword("SET"):
            self._next()
            name = self._expect_ident("variable name")
            self._expect_op("=")
            return a.TdSetVariable(name, self._expr())
        if token.is_keyword("IF"):
            return self._proc_if()
        if token.is_keyword("WHILE"):
            self._next()
            condition = self._expr()
            self._expect_keyword("DO")
            body: list[a.TdProcStatement] = []
            while not self._at_keyword("END"):
                body.append(self._proc_statement())
                self._accept_op(";")
            self._expect_keyword("END")
            self._expect_keyword("WHILE")
            return a.TdWhile(condition, body)
        if token.is_keyword("SEL", "SELECT") and self._select_into_ahead():
            return self._select_into()
        return a.TdProcSQL(self._statement())

    def _proc_if(self) -> a.TdIf:
        self._expect_keyword("IF")
        condition = self._expr()
        self._expect_keyword("THEN")
        then_branch: list[a.TdProcStatement] = []
        else_branch: list[a.TdProcStatement] = []
        while not self._at_keyword("ELSE", "END"):
            then_branch.append(self._proc_statement())
            self._accept_op(";")
        if self._accept_keyword("ELSE"):
            while not self._at_keyword("END"):
                else_branch.append(self._proc_statement())
                self._accept_op(";")
        self._expect_keyword("END")
        self._expect_keyword("IF")
        return a.TdIf(condition, then_branch, else_branch)

    def _select_into_ahead(self) -> bool:
        """Look ahead for SELECT ... INTO at the current statement level."""
        offset = 0
        depth = 0
        while True:
            token = self._peek(offset)
            if token.kind is TokenKind.EOF or token.is_op(";"):
                return False
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                depth -= 1
            elif depth == 0 and token.is_keyword("INTO"):
                return True
            elif depth == 0 and token.is_keyword("FROM"):
                return False
            offset += 1

    def _select_into(self) -> a.TdSelectInto:
        token = self._expect_keyword("SEL", "SELECT")
        if token.value == "SEL":
            self._note("sel_shortcut")
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())
        self._expect_keyword("INTO")
        targets = []
        target_token = self._next()  # :var or bare name
        targets.append(str(target_token.value).upper())
        while self._accept_op(","):
            target_token = self._next()
            targets.append(str(target_token.value).upper())
        core = a.TdSelectCore(items=items)
        self._select_clauses(core)
        return a.TdSelectInto(a.TdSelect(first=core, order_by=core.order_by), targets)

    # -- other statements ----------------------------------------------------------------------

    def _call(self) -> a.TdCall:
        self._expect_keyword("CALL")
        name = self._qualified_name()
        arguments: list[s.ScalarExpr] = []
        if self._accept_op("("):
            if not self._peek().is_op(")"):
                arguments.append(self._expr())
                while self._accept_op(","):
                    arguments.append(self._expr())
            self._expect_op(")")
        return a.TdCall(name, arguments)

    def _merge(self) -> a.TdMerge:
        self._expect_keyword("MERGE")
        self._accept_keyword("INTO")
        target = self._qualified_name()
        target_alias = None
        self._accept_keyword("AS")
        if self._at_ident() and not self._at_keyword("USING"):
            target_alias = self._expect_ident()
        self._expect_keyword("USING")
        source = self._table_primary()
        self._expect_keyword("ON")
        condition = self._expr()
        matched_assignments = None
        insert_columns = None
        insert_values = None
        while self._accept_keyword("WHEN"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("MATCHED")
            self._expect_keyword("THEN")
            if negated:
                token = self._expect_keyword("INS", "INSERT")
                if token.value == "INS":
                    self._note("ins_shortcut")
                insert_columns = self._paren_name_list()
                self._expect_keyword("VALUES")
                insert_values = self._values_row()
            else:
                token = self._expect_keyword("UPD", "UPDATE")
                if token.value == "UPD":
                    self._note("upd_shortcut")
                self._expect_keyword("SET")
                matched_assignments = [self._assignment()]
                while self._accept_op(","):
                    matched_assignments.append(self._assignment())
        return a.TdMerge(target, target_alias, source, condition,
                         matched_assignments, insert_columns, insert_values)

    def _help(self) -> a.TdHelp:
        self._expect_keyword("HELP")
        token = self._expect_keyword("SESSION", "TABLE", "COLUMN", "DATABASE")
        kind = str(token.value)
        subject = None
        if kind in ("TABLE", "DATABASE"):
            subject = self._qualified_name()
        elif kind == "COLUMN":
            subject = self._expect_ident("table name")
            while self._accept_op("."):
                subject += "." + self._expect_ident("column name")
        return a.TdHelp(kind, subject)

    def _show(self) -> a.TdShow:
        self._expect_keyword("SHOW")
        token = self._expect_keyword("TABLE", "VIEW", "MACRO")
        return a.TdShow(str(token.value), self._qualified_name())

    def _drop(self) -> a.TdStatement:
        self._expect_keyword("DROP")
        kind = self._expect_keyword("TABLE", "VIEW", "MACRO", "PROCEDURE")
        name = self._qualified_name()
        if kind.value == "TABLE":
            return a.TdDropTable(name)
        if kind.value == "VIEW":
            return a.TdDropView(name)
        if kind.value == "MACRO":
            return a.TdDropMacro(name)
        return a.TdDropProcedure(name)

    # -- queries ------------------------------------------------------------------------------

    def _select_expr(self) -> a.TdSelect:
        ctes: list[a.TdCTE] = []
        if self._accept_keyword("WITH"):
            recursive = bool(self._accept_keyword("RECURSIVE"))
            ctes.append(self._cte(recursive))
            while self._accept_op(","):
                ctes.append(self._cte(recursive))
        first = self._select_term()
        branches: list[tuple[r.SetOpKind, bool, object]] = []
        while self._at_keyword("UNION", "INTERSECT", "EXCEPT", "MINUS"):
            kind_token = self._next()
            kind_name = "EXCEPT" if kind_token.value == "MINUS" else str(kind_token.value)
            kind = r.SetOpKind[kind_name]
            all_rows = bool(self._accept_keyword("ALL"))
            if not all_rows:
                self._accept_keyword("DISTINCT")
            branches.append((kind, all_rows, self._select_term()))
        select = a.TdSelect(ctes, first, branches)
        # A trailing ORDER BY over the whole set-operation chain.
        if branches and self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            select.order_by.append(self._sort_key())
            while self._accept_op(","):
                select.order_by.append(self._sort_key())
        elif not branches and isinstance(first, a.TdSelectCore):
            select.order_by = first.order_by
        elif not branches and isinstance(first, a.TdSelect):
            select.order_by = first.order_by
        return select

    def _cte(self, recursive: bool) -> a.TdCTE:
        name = self._expect_ident("CTE name")
        column_names = None
        if self._peek().is_op("("):
            column_names = self._paren_name_list()
        self._expect_keyword("AS")
        self._expect_op("(")
        query = self._select_expr()
        self._expect_op(")")
        return a.TdCTE(name, column_names, query, recursive)

    def _select_term(self):
        if self._accept_op("("):
            inner = self._select_expr()
            self._expect_op(")")
            return inner
        return self._select_core()

    def _select_core(self) -> a.TdSelectCore:
        token = self._expect_keyword("SEL", "SELECT")
        if token.value == "SEL":
            self._note("sel_shortcut")
        core = a.TdSelectCore()
        if self._accept_keyword("DISTINCT"):
            core.distinct = True
        else:
            self._accept_keyword("ALL")
        if self._accept_keyword("TOP"):
            count = int(self._expect_number())
            with_ties = False
            if self._accept_keyword("WITH"):
                self._expect_keyword("TIES")
                with_ties = True
            core.top = (count, with_ties)
        core.items = [self._select_item()]
        while self._accept_op(","):
            core.items.append(self._select_item())
        self._select_clauses(core)
        return core

    def _select_clauses(self, core: a.TdSelectCore) -> None:
        """Consume FROM/WHERE/GROUP BY/HAVING/QUALIFY/ORDER BY in any order.

        Teradata tolerates non-standard clause ordering (Example 1); each
        clause may appear at most once.
        """
        seen: set[str] = set()

        def check(clause: str, token: Token) -> None:
            if clause in seen:
                raise ParseError(f"duplicate {clause} clause", token.line, token.column)
            seen.add(clause)

        while True:
            token = self._peek()
            if token.is_keyword("FROM"):
                check("FROM", token)
                self._next()
                core.from_refs.append(self._table_ref())
                while self._accept_op(","):
                    core.from_refs.append(self._table_ref())
            elif token.is_keyword("WHERE"):
                check("WHERE", token)
                self._next()
                core.where = self._expr()
            elif token.is_keyword("GROUP"):
                check("GROUP", token)
                self._next()
                self._expect_keyword("BY")
                self._group_by(core)
            elif token.is_keyword("HAVING"):
                check("HAVING", token)
                self._next()
                core.having = self._expr()
            elif token.is_keyword("QUALIFY"):
                check("QUALIFY", token)
                self._next()
                core.qualify = self._expr()
            elif token.is_keyword("ORDER"):
                check("ORDER", token)
                self._next()
                self._expect_keyword("BY")
                core.order_by.append(self._sort_key())
                while self._accept_op(","):
                    core.order_by.append(self._sort_key())
            elif token.is_keyword("SAMPLE"):
                check("SAMPLE", token)
                self._next()
                self._expect_number()  # accepted, ignored at reproduction scale
            else:
                return

    def _group_by(self, core: a.TdSelectCore) -> None:
        if self._accept_keyword("ROLLUP"):
            core.group_kind = r.GroupingKind.ROLLUP
            core.group_by = self._values_row()
            return
        if self._accept_keyword("CUBE"):
            core.group_kind = r.GroupingKind.CUBE
            core.group_by = self._values_row()
            return
        if self._at_keyword("GROUPING"):
            self._next()
            self._expect_keyword("SETS")
            core.group_kind = r.GroupingKind.SETS
            core.group_by, core.grouping_sets = self._grouping_sets_list()
            return
        core.group_by = [self._expr()]
        while self._accept_op(","):
            core.group_by.append(self._expr())

    def _grouping_sets_list(self):
        self._expect_op("(")
        all_exprs: list[s.ScalarExpr] = []
        sets: list[list[int]] = []
        while True:
            self._expect_op("(")
            indexes: list[int] = []
            if not self._peek().is_op(")"):
                while True:
                    expr = self._expr()
                    position = None
                    for index, existing in enumerate(all_exprs):
                        if s.same(existing, expr):
                            position = index
                            break
                    if position is None:
                        position = len(all_exprs)
                        all_exprs.append(expr)
                    indexes.append(position)
                    if not self._accept_op(","):
                        break
            self._expect_op(")")
            sets.append(indexes)
            if not self._accept_op(","):
                break
        self._expect_op(")")
        return all_exprs, sets

    def _select_item(self) -> a.TdSelectItem:
        if self._accept_op("*"):
            return a.TdSelectItem(star=True)
        if self._at_ident() and self._peek(1).is_op(".") and self._peek(2).is_op("*"):
            qualifier = self._expect_ident()
            self._expect_op(".")
            self._expect_op("*")
            return a.TdSelectItem(star=True, star_qualifier=qualifier)
        expr = self._expr()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self._at_ident() and not self._clause_keyword_ahead():
            alias = self._expect_ident()
        return a.TdSelectItem(expr=expr, alias=alias)

    def _clause_keyword_ahead(self) -> bool:
        return self._peek().is_keyword(
            "FROM", "WHERE", "GROUP", "HAVING", "QUALIFY", "ORDER", "SAMPLE",
            "UNION", "INTERSECT", "EXCEPT", "MINUS", "INTO")

    def _table_ref(self) -> a.TdTableRef:
        left = self._table_primary()
        while True:
            if self._at_keyword("JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS"):
                kind = r.JoinKind.INNER
                if self._accept_keyword("INNER"):
                    pass
                elif self._accept_keyword("LEFT"):
                    self._accept_keyword("OUTER")
                    kind = r.JoinKind.LEFT
                elif self._accept_keyword("RIGHT"):
                    self._accept_keyword("OUTER")
                    kind = r.JoinKind.RIGHT
                elif self._accept_keyword("FULL"):
                    self._accept_keyword("OUTER")
                    kind = r.JoinKind.FULL
                elif self._accept_keyword("CROSS"):
                    kind = r.JoinKind.CROSS
                self._expect_keyword("JOIN")
                right = self._table_primary()
                condition = None
                if kind is not r.JoinKind.CROSS:
                    self._expect_keyword("ON")
                    condition = self._expr()
                left = a.TdJoin(kind, left, right, condition)
            else:
                return left

    def _table_primary(self) -> a.TdTableRef:
        if self._accept_op("("):
            if self._at_keyword("SEL", "SELECT", "WITH"):
                query = self._select_expr()
                self._expect_op(")")
                alias, column_names = self._table_alias(required=True)
                return a.TdSubqueryRef(query, alias or "", column_names)
            inner = self._table_ref()
            self._expect_op(")")
            return inner
        name = self._qualified_name()
        alias, __ = self._table_alias(required=False)
        return a.TdTableName(name, alias)

    def _table_alias(self, required: bool):
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self._at_ident() and not self._clause_keyword_ahead() \
                and not self._peek().is_keyword("JOIN", "INNER", "LEFT", "RIGHT",
                                                "FULL", "CROSS", "ON", "USING",
                                                "WHEN"):
            alias = self._expect_ident()
        elif required:
            token = self._peek()
            raise ParseError("derived table requires an alias", token.line, token.column)
        column_names = None
        if alias and self._peek().is_op("(") and self._at_ident(1) and (
                self._peek(2).is_op(",") or self._peek(2).is_op(")")):
            column_names = self._paren_name_list()
        return alias, column_names

    def _sort_key(self) -> s.SortKey:
        expr = self._expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        nulls_first = None
        if self._accept_keyword("NULLS"):
            token = self._expect_keyword("FIRST", "LAST")
            nulls_first = token.value == "FIRST"
        return s.SortKey(expr, ascending, nulls_first)

    # -- expressions ------------------------------------------------------------------------------

    def _expr(self) -> s.ScalarExpr:
        return self._or_expr()

    def _or_expr(self) -> s.ScalarExpr:
        args = [self._and_expr()]
        while self._accept_keyword("OR"):
            args.append(self._and_expr())
        if len(args) == 1:
            return args[0]
        return s.BoolOp(s.BoolOpKind.OR, args)

    def _and_expr(self) -> s.ScalarExpr:
        args = [self._not_expr()]
        while self._accept_keyword("AND"):
            args.append(self._not_expr())
        if len(args) == 1:
            return args[0]
        return s.BoolOp(s.BoolOpKind.AND, args)

    def _not_expr(self) -> s.ScalarExpr:
        if self._accept_keyword("NOT"):
            return s.Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> s.ScalarExpr:
        left = self._additive()
        token = self._peek()
        comp_op: Optional[s.CompOp] = None
        if token.is_op("=", "<>", "<", "<=", ">", ">="):
            self._next()
            comp_op = s.CompOp(str(token.value))
            if token.text in ("^=", "!=", "~="):
                self._note("ne_operator")
        elif token.kind is TokenKind.KEYWORD and str(token.value) in _KEYWORD_COMPARISONS:
            self._next()
            comp_op = _KEYWORD_COMPARISONS[str(token.value)]
            self._note("ne_operator")
        if comp_op is not None:
            if self._at_keyword("ANY", "SOME", "ALL"):
                quantifier_token = self._next()
                quantifier = (s.Quantifier.ALL if quantifier_token.value == "ALL"
                              else s.Quantifier.ANY)
                self._expect_op("(")
                query = self._select_expr()
                self._expect_op(")")
                left_items = left.items if isinstance(left, a.TdCsv) else [left]
                return s.SubqueryExpr(kind=s.SubqueryKind.QUANTIFIED, plan=query,  # type: ignore[arg-type]
                                      left=left_items, op=comp_op,
                                      quantifier=quantifier)
            right = self._additive()
            return s.Comp(comp_op, left, right)
        negated = False
        if token.is_keyword("NOT") and self._peek(1).is_keyword("IN", "LIKE", "BETWEEN"):
            self._next()
            negated = True
            token = self._peek()
        if token.is_keyword("IS"):
            self._next()
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return s.IsNull(left, is_negated)
        if token.is_keyword("IN"):
            self._next()
            self._expect_op("(")
            if self._at_keyword("SEL", "SELECT", "WITH"):
                query = self._select_expr()
                self._expect_op(")")
                left_items = left.items if isinstance(left, a.TdCsv) else [left]
                return s.SubqueryExpr(kind=s.SubqueryKind.IN, plan=query,  # type: ignore[arg-type]
                                      left=left_items, negated=negated)
            items = [self._expr()]
            while self._accept_op(","):
                items.append(self._expr())
            self._expect_op(")")
            return s.InList(left, items, negated)
        if token.is_keyword("LIKE"):
            self._next()
            quantifier = self._accept_keyword("ANY", "ALL", "SOME")
            if quantifier is not None:
                # Teradata extension: expr LIKE ANY ('a%', 'b%') — sugar for
                # a disjunction (ANY/SOME) or conjunction (ALL) of LIKEs.
                self._expect_op("(")
                patterns = [self._additive()]
                while self._accept_op(","):
                    patterns.append(self._additive())
                self._expect_op(")")
                likes: list[s.ScalarExpr] = [
                    s.Like(copy.deepcopy(left), pattern, None, False)
                    for pattern in patterns
                ]
                kind = (s.BoolOpKind.AND if quantifier.value == "ALL"
                        else s.BoolOpKind.OR)
                combined: s.ScalarExpr = (
                    likes[0] if len(likes) == 1 else s.BoolOp(kind, likes))
                return s.Not(combined) if negated else combined
            pattern = self._additive()
            escape = None
            if self._accept_keyword("ESCAPE"):
                escape_token = self._next()
                escape = str(escape_token.value)
            return s.Like(left, pattern, escape, negated)
        if token.is_keyword("BETWEEN"):
            self._next()
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return s.Between(left, low, high, negated)
        return left

    def _additive(self) -> s.ScalarExpr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.is_op("+", "-", "||"):
                self._next()
                op = {"+": s.ArithOp.ADD, "-": s.ArithOp.SUB,
                      "||": s.ArithOp.CONCAT}[str(token.value)]
                left = s.Arith(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> s.ScalarExpr:
        left = self._power()
        while True:
            token = self._peek()
            if token.is_op("*", "/", "%"):
                self._next()
                op = {"*": s.ArithOp.MUL, "/": s.ArithOp.DIV,
                      "%": s.ArithOp.MOD}[str(token.value)]
                left = s.Arith(op, left, self._power())
            elif token.is_keyword("MOD"):
                self._next()
                self._note("mod_operator")
                left = s.Arith(s.ArithOp.MOD, left, self._power())
            else:
                return left

    def _power(self) -> s.ScalarExpr:
        left = self._unary()
        if self._accept_op("**"):
            # Right-associative exponentiation.
            return s.Arith(s.ArithOp.POW, left, self._power())
        return left

    def _unary(self) -> s.ScalarExpr:
        if self._accept_op("-"):
            return s.Negate(self._unary())
        if self._accept_op("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> s.ScalarExpr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._next()
            kind = t.INTEGER if isinstance(token.value, int) else t.FLOAT
            return s.Const(token.value, kind)
        if token.kind is TokenKind.STRING:
            self._next()
            return s.const_str(str(token.value))
        if token.kind is TokenKind.PARAM:
            self._next()
            return s.Param(str(token.value))
        if token.is_keyword("NULL"):
            self._next()
            return s.null_const()
        if token.is_keyword("TRUE"):
            self._next()
            return s.Const(True, t.BOOLEAN)
        if token.is_keyword("FALSE"):
            self._next()
            return s.Const(False, t.BOOLEAN)
        if token.is_keyword("DATE"):
            if self._peek(1).kind is TokenKind.STRING:
                return self._date_literal()
            self._next()
            return s.FuncCall("CURRENT_DATE")  # Teradata's niladic DATE
        if token.is_keyword("TIME") and self._peek(1).kind is not TokenKind.STRING:
            self._next()
            return s.FuncCall("CURRENT_TIMESTAMP")
        if token.is_keyword("TIMESTAMP") and self._peek(1).kind is TokenKind.STRING:
            self._next()
            literal = self._next()
            try:
                value = datetime.datetime.fromisoformat(str(literal.value))
            except ValueError as exc:
                raise ParseError(f"bad timestamp literal {literal.value!r}",
                                 literal.line, literal.column) from exc
            return s.Const(value, t.TIMESTAMP)
        if token.is_keyword("INTERVAL"):
            return self._interval_literal()
        if token.is_keyword("CASE"):
            return self._case()
        if token.is_keyword("CAST"):
            return self._cast()
        if token.is_keyword("EXTRACT"):
            return self._extract()
        if token.is_keyword("SUBSTRING"):
            return self._substring()
        if token.is_keyword("POSITION"):
            return self._position()
        if token.is_keyword("TRIM"):
            return self._trim()
        if token.is_keyword("EXISTS"):
            self._next()
            self._expect_op("(")
            query = self._select_expr()
            self._expect_op(")")
            return s.SubqueryExpr(kind=s.SubqueryKind.EXISTS, plan=query)  # type: ignore[arg-type]
        if token.is_op("("):
            self._next()
            if self._at_keyword("SEL", "SELECT", "WITH"):
                query = self._select_expr()
                self._expect_op(")")
                return s.SubqueryExpr(kind=s.SubqueryKind.SCALAR, plan=query)  # type: ignore[arg-type]
            expr = self._expr()
            if self._accept_op(","):
                items = [expr, self._expr()]
                while self._accept_op(","):
                    items.append(self._expr())
                self._expect_op(")")
                return a.TdCsv(items)
            self._expect_op(")")
            return expr
        if self._at_ident():
            return self._name_or_call()
        raise ParseError(f"unexpected token {token.text or 'end of input'!r}",
                         token.line, token.column)

    def _date_literal(self) -> s.Const:
        self._expect_keyword("DATE")
        literal = self._next()
        try:
            value = datetime.date.fromisoformat(str(literal.value))
        except ValueError as exc:
            raise ParseError(f"bad date literal {literal.value!r}",
                             literal.line, literal.column) from exc
        return s.Const(value, t.DATE)

    def _interval_literal(self) -> s.ScalarExpr:
        """INTERVAL 'n' DAY/MONTH/YEAR — normalized at parse time into a
        (count, unit) function the binder turns into date arithmetic."""
        self._expect_keyword("INTERVAL")
        literal = self._next()
        if literal.kind is not TokenKind.STRING:
            raise ParseError("INTERVAL requires a quoted count",
                             literal.line, literal.column)
        unit = self._expect_keyword("DAY", "MONTH", "YEAR")
        count = int(str(literal.value))
        return s.FuncCall("_INTERVAL", [s.const_int(count),
                                        s.const_str(str(unit.value))])

    def _case(self) -> s.Case:
        self._expect_keyword("CASE")
        operand = None
        if not self._at_keyword("WHEN"):
            operand = self._expr()
        conditions: list[s.ScalarExpr] = []
        results: list[s.ScalarExpr] = []
        while self._accept_keyword("WHEN"):
            conditions.append(self._expr())
            self._expect_keyword("THEN")
            results.append(self._expr())
        default = None
        if self._accept_keyword("ELSE"):
            default = self._expr()
        self._expect_keyword("END")
        if not conditions:
            token = self._peek()
            raise ParseError("CASE requires at least one WHEN", token.line, token.column)
        return s.Case(operand, conditions, results, default)

    def _cast(self) -> s.Cast:
        self._expect_keyword("CAST")
        self._expect_op("(")
        operand = self._expr()
        self._expect_keyword("AS")
        target = self._type_name()
        # Teradata: CAST(x AS DATE FORMAT 'YYYY-MM-DD') — format ignored.
        if self._accept_keyword("FORMAT"):
            self._next()
        self._expect_op(")")
        return s.Cast(operand, target)

    def _extract(self) -> s.Extract:
        self._expect_keyword("EXTRACT")
        self._expect_op("(")
        field_token = self._expect_keyword(
            "YEAR", "MONTH", "DAY", "HOUR", "MINUTE", "SECOND")
        self._expect_keyword("FROM")
        operand = self._expr()
        self._expect_op(")")
        return s.Extract(s.ExtractField[str(field_token.value)], operand)

    def _substring(self) -> s.FuncCall:
        self._expect_keyword("SUBSTRING")
        self._expect_op("(")
        value = self._expr()
        if self._accept_keyword("FROM"):
            start = self._expr()
            length = None
            if self._accept_keyword("FOR"):
                length = self._expr()
        else:
            self._expect_op(",")
            start = self._expr()
            length = None
            if self._accept_op(","):
                length = self._expr()
        self._expect_op(")")
        args = [value, start] + ([length] if length is not None else [])
        return s.FuncCall("SUBSTRING", args)

    def _position(self) -> s.FuncCall:
        self._expect_keyword("POSITION")
        self._expect_op("(")
        # The needle must stop before IN (which would otherwise parse as an
        # IN-list predicate).
        needle = self._additive()
        self._expect_keyword("IN")
        haystack = self._expr()
        self._expect_op(")")
        return s.FuncCall("POSITION", [needle, haystack])

    def _trim(self) -> s.FuncCall:
        self._expect_keyword("TRIM")
        self._expect_op("(")
        mode = "BOTH"
        token = self._accept_keyword("LEADING", "TRAILING", "BOTH")
        if token is not None:
            mode = str(token.value)
            self._expect_keyword("FROM")
            operand = self._expr()
        else:
            operand = self._expr()
            if self._accept_keyword("FROM"):  # TRIM(expr FROM expr): char trim
                operand = self._expr()
        self._expect_op(")")
        name = {"BOTH": "TRIM", "LEADING": "LTRIM", "TRAILING": "RTRIM"}[mode]
        return s.FuncCall(name, [operand])

    def _name_or_call(self) -> s.ScalarExpr:
        name = self._expect_ident()
        if self._peek().is_op("("):
            return self._call_expr(name)
        if self._accept_op("."):
            column = self._expect_ident("column name")
            return s.ColumnRef(column, table=name)
        return s.ColumnRef(name)

    def _call_expr(self, name: str) -> s.ScalarExpr:
        upper = name.upper()
        if upper == "RANK" and not self._peek(1).is_op(")"):
            # Legacy Teradata RANK(expr [ASC|DESC], ...) — Section 5.
            self._expect_op("(")
            keys = [self._sort_key()]
            while self._accept_op(","):
                keys.append(self._sort_key())
            self._expect_op(")")
            return a.TdRank(keys)
        self._expect_op("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        star = False
        args: list[s.ScalarExpr] = []
        if self._accept_op("*"):
            star = True
        elif not self._peek().is_op(")"):
            args.append(self._expr())
            while self._accept_op(","):
                args.append(self._expr())
        self._expect_op(")")
        window = self._over_clause()
        if window is not None:
            partition_by, order_by = window
            return s.WindowFunc(upper, args, partition_by, order_by)
        if upper in _WINDOW_ONLY:
            # RANK()/ROW_NUMBER() without OVER: Teradata-legacy empty RANK is
            # meaningless; require OVER.
            token = self._peek()
            raise ParseError(f"{name}() requires an OVER clause",
                             token.line, token.column)
        if upper in _AGG_NAMES:
            return s.AggCall(upper, args, distinct=distinct, star=star)
        if star or distinct:
            token = self._peek()
            raise ParseError(f"{name}() does not accept DISTINCT or *",
                             token.line, token.column)
        return s.FuncCall(upper, args)

    def _over_clause(self):
        if not self._at_keyword("OVER"):
            return None
        self._next()
        self._expect_op("(")
        partition_by: list[s.ScalarExpr] = []
        order_by: list[s.SortKey] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self._expr())
            while self._accept_op(","):
                partition_by.append(self._expr())
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._sort_key())
            while self._accept_op(","):
                order_by.append(self._sort_key())
        if self._at_keyword("ROWS", "RANGE"):
            # Accept and ignore the default frame spelling.
            self._next()
            if self._accept_keyword("UNBOUNDED"):
                self._expect_keyword("PRECEDING")
            if self._accept_keyword("BETWEEN"):  # pragma: no cover - rare
                while not self._peek().is_op(")"):
                    self._next()
        self._expect_op(")")
        return partition_by, order_by
