"""ODBC abstraction: how Hyper-Q talks to target databases (Section 4.5)."""

from repro.odbc.api import OdbcServer, OdbcResult
from repro.odbc.drivers import InProcessDriver, Driver

__all__ = ["OdbcServer", "OdbcResult", "InProcessDriver", "Driver"]
