"""The ODBC Server: Hyper-Q's abstraction over target database access.

Section 4.5: provides means to submit requests (simple queries, DML,
multi-statement scripts) and retrieves results on demand in one or more
batches packaged in :mod:`repro.tdf`. Handles "very wide rows and extremely
large result sets" by never materializing more than one batch outside the
:class:`~repro.results.store.ResultStore`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro import tdf
from repro.backend.engine import QueryResult
from repro.odbc.drivers import Driver, DriverConnection


class OdbcResult:
    """One request's outcome, exposing results as TDF batches."""

    def __init__(self, raw: QueryResult, batch_rows: int = 1024):
        self._raw = raw
        self._batch_rows = batch_rows

    @property
    def kind(self) -> str:
        return self._raw.kind

    @property
    def columns(self) -> list[str]:
        return list(self._raw.columns)

    @property
    def column_types(self):
        return list(self._raw.column_types)

    @property
    def rowcount(self) -> int:
        return self._raw.rowcount

    def tdf_batches(self) -> Iterator[bytes]:
        """Yield the result set as encoded TDF packets."""
        if self._raw.kind != "rows":
            return
        yield from tdf.batches_of(self._raw.columns, self._raw.rows,
                                  self._batch_rows)

    def raw_rows(self) -> list[tuple]:
        """Direct row access for mid-tier emulators that drive recursion or
        procedure control flow off result contents (Section 6)."""
        return list(self._raw.rows)


class OdbcServer:
    """One ODBC connection to the target per Hyper-Q session."""

    def __init__(self, driver: Driver, batch_rows: int = 1024):
        self._driver = driver
        self._batch_rows = batch_rows
        self._connection: Optional[DriverConnection] = None

    def _ensure_connection(self) -> DriverConnection:
        if self._connection is None:
            self._connection = self._driver.connect()
        return self._connection

    @property
    def connection(self) -> DriverConnection:
        return self._ensure_connection()

    def execute(self, sql: str) -> OdbcResult:
        """Submit one statement to the target database."""
        raw = self._ensure_connection().execute(sql)
        return OdbcResult(raw, self._batch_rows)

    def execute_script(self, statements: list[str]) -> list[OdbcResult]:
        """Submit a multi-statement request, returning one result each."""
        return [self.execute(sql) for sql in statements]

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
