"""The ODBC Server: Hyper-Q's abstraction over target database access.

Section 4.5: provides means to submit requests (simple queries, DML,
multi-statement scripts) and retrieves results on demand in one or more
batches packaged in :mod:`repro.tdf`. Handles "very wide rows and extremely
large result sets" by never materializing more than one batch outside the
:class:`~repro.results.store.ResultStore`.

This layer is also where Hyper-Q absorbs target-side turbulence: every
statement passes a fault-injection checkpoint (site ``"odbc"``), and
transient failures — injected or real — are retried under the engine's
:class:`~repro.core.faults.RetryPolicy` with exponential backoff before
anything becomes visible to the application.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional

from repro import tdf
from repro.errors import RetryExhaustedError, TransientBackendError
from repro.backend.engine import QueryResult
from repro.core import trace as trace_mod
from repro.odbc.drivers import Driver, DriverConnection

#: Observer signature: (event, detail) — wired to the engine's resilience
#: counters and the fault schedule's event log.
Observer = Callable[[str, dict], None]


class OdbcResult:
    """One request's outcome, exposing results as lazily encoded TDF batches."""

    def __init__(self, raw: QueryResult, batch_rows: int = 1024):
        self._raw = raw
        self._batch_rows = batch_rows
        self._columns: Optional[list[str]] = None
        self._column_types: Optional[list] = None

    @property
    def kind(self) -> str:
        return self._raw.kind

    @property
    def columns(self) -> list[str]:
        if self._columns is None:
            self._columns = list(self._raw.columns)
        return self._columns

    @property
    def column_types(self):
        if self._column_types is None:
            self._column_types = list(self._raw.column_types)
        return self._column_types

    @property
    def rowcount(self) -> int:
        """Row count; drains a still-pending stream to find out."""
        return self._raw.rowcount

    @property
    def streaming(self) -> bool:
        return self._raw.streaming

    def fetch_batches(self) -> Iterator[bytes]:
        """Lazily pull row batches and encode each into one TDF packet.

        Pulls from the backend one batch at a time, so at most one batch of
        rows plus its encoding is live in this layer. An empty result still
        yields a single empty packet, which carries the column header
        downstream. Single-use while the underlying result is streaming.
        """
        if self._raw.kind != "rows":
            return
        columns = self.columns
        produced = False
        for batch in self._raw.iter_batches(self._batch_rows):
            if not batch:
                continue
            produced = True
            yield tdf.encode_batch(columns, batch)
        if not produced:
            yield tdf.encode_batch(columns, [])

    #: Backwards-compatible name for :meth:`fetch_batches`.
    tdf_batches = fetch_batches

    def raw_rows(self) -> list[tuple]:
        """Direct row access for mid-tier emulators that drive recursion or
        procedure control flow off result contents (Section 6). Drains and
        caches a pending stream."""
        return list(self._raw.rows)


class OdbcServer:
    """One ODBC connection to the target per Hyper-Q session."""

    def __init__(self, driver: Driver, batch_rows: int = 1024,
                 faults=None, replica: Optional[int] = None,
                 retry=None, observer: Optional[Observer] = None):
        self._driver = driver
        self._batch_rows = batch_rows
        self._faults = faults
        self._replica = replica
        self._retry = retry
        self._observer = observer
        self._connection: Optional[DriverConnection] = None
        #: Statements that reached the target driver (retries of one
        #: statement count once). The result cache's zero-backend-call
        #: guarantee is asserted against this counter.
        self.statements_executed = 0

    def set_batch_rows(self, batch_rows: int) -> None:
        """Adjust the batch size for subsequent statements (per-request
        workload-class budget overrides)."""
        if batch_rows < 1:
            raise ValueError("batch_rows must be at least 1")
        self._batch_rows = batch_rows

    def _ensure_connection(self) -> DriverConnection:
        if self._connection is None:
            self._connection = self._driver.connect()
        return self._connection

    @property
    def connection(self) -> DriverConnection:
        return self._ensure_connection()

    def _notify(self, event: str, **detail) -> None:
        if self._observer is not None:
            self._observer(event, detail)

    def execute(self, sql: str) -> OdbcResult:
        """Submit one statement to the target database.

        Transient failures (injected at the ``odbc``/``executor`` sites or
        surfaced by a real driver) are retried with backoff up to the retry
        policy's budget; retries never reorder or duplicate effects because
        the injection checkpoints fire *before* the driver executes.

        Each statement gets an ``odbc_execute`` span with one ``attempt``
        child per try, so retries — and emulator child statements, which
        re-enter here per target statement — are visible in the request's
        span tree.
        """
        from repro.core.faults import apply_fault

        with trace_mod.span("odbc_execute", sql=sql[:120],
                            replica=self._replica) as span:
            self.statements_executed += 1
            attempt = 1
            while True:
                try:
                    with trace_mod.span("attempt", number=attempt):
                        if self._faults is not None:
                            apply_fault(self._faults.draw(
                                "odbc", op=sql, replica=self._replica))
                        raw = self._ensure_connection().execute(sql)
                    if span is not None:
                        span.annotate("kind", raw.kind)
                        span.annotate("attempts", attempt)
                    return OdbcResult(raw, self._batch_rows)
                except TransientBackendError as error:
                    if self._retry is None \
                            or attempt >= self._retry.max_attempts:
                        self._notify("retry_exhausted",
                                     attempts=attempt, site="odbc",
                                     replica=self._replica)
                        raise RetryExhaustedError(
                            f"transient backend failure persisted through "
                            f"{attempt} attempt(s): {error}") from error
                    self._notify("retry", attempt=attempt, site="odbc",
                                 replica=self._replica)
                    time.sleep(self._retry.delay(attempt))
                    attempt += 1

    def execute_script(self, statements: list[str]) -> list[OdbcResult]:
        """Submit a multi-statement request, returning one result each."""
        return [self.execute(sql) for sql in statements]

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
