"""Target database drivers for the ODBC Server.

A :class:`Driver` hides how the target is reached; :class:`InProcessDriver`
connects to the in-memory backend engine directly, which stands in for a
vendor ODBC driver + network hop. The interface is deliberately ODBC-shaped:
connect -> execute -> (description, rows) so a real pyodbc-backed driver
could slot in unchanged.
"""

from __future__ import annotations

from typing import Protocol

from repro.backend.engine import BackendSession, Database, QueryResult


class Driver(Protocol):
    """Minimal driver contract: one connection handle per Hyper-Q session."""

    def connect(self) -> "DriverConnection":  # pragma: no cover - protocol
        ...


class DriverConnection(Protocol):
    def execute(self, sql: str) -> QueryResult:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class InProcessDriver:
    """Driver for the bundled in-memory cloud data warehouse."""

    def __init__(self, database: Database):
        self._database = database

    def connect(self) -> "InProcessConnection":
        return InProcessConnection(self._database.create_session())


class InProcessConnection:
    def __init__(self, session: BackendSession):
        self._session = session

    @property
    def backend_session(self) -> BackendSession:
        return self._session

    def execute(self, sql: str) -> QueryResult:
        return self._session.execute(sql)

    def close(self) -> None:
        self._session.close()
