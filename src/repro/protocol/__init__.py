"""Source wire protocol: framing, binary row encoding, server, client."""

from repro.protocol.encoding import (ColumnMeta, RowCodec, decode_rows,
                                     effective_meta, encode_rows)

__all__ = ["ColumnMeta", "RowCodec", "effective_meta", "encode_rows",
           "decode_rows"]
