"""Source wire protocol: framing, binary row encoding, server, client."""

from repro.protocol.encoding import ColumnMeta, effective_meta, encode_rows, decode_rows

__all__ = ["ColumnMeta", "effective_meta", "encode_rows", "decode_rows"]
