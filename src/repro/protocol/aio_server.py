"""The asyncio wire path: every session of a worker on one event loop.

The threaded server (:mod:`repro.protocol.server`) dedicates an OS thread to
each connection; at the Section 7.3 stress scale — hundreds of mostly-idle
BI sessions — those threads spend their lives blocked in ``recv`` while the
GIL shuffles the few that are runnable. This module multiplexes all of a
worker's connections onto a single event loop:

* **Framing and writes live on the loop.** Frames are parsed with
  ``StreamReader.readexactly`` and written as separate header/payload views
  (no concatenation); ``await writer.drain()`` gives per-connection
  backpressure bounded by the transport's write-buffer high-water mark, so
  a slow client stalls only its own chunk pump, never the loop.
* **CPU-bound work hops to a bounded executor.** Translate/execute/convert
  run via ``loop.run_in_executor``; the PR 3 streaming pipeline is already
  pull-based, so the chunk pump awaits one ``next(iterator)`` per chunk on
  an executor thread, writes the chunk, drains, and pulls again — the
  backend never runs ahead of the client by more than the bounded lookahead.
* **Trace spans hand off explicitly.** The request's root span is activated
  inside every executor callable (:func:`repro.core.trace.activate`), so
  span trees look identical to the threaded path's.
* **Everything else is shared.** The managed admission path
  (:func:`repro.protocol.server.run_managed`), fault sites, drain
  semantics, and the compiled row codecs are the same objects the threaded
  server uses; replies are byte-identical (asserted by
  ``tests/integration/test_async_wire.py``).

The server is API-compatible with :class:`HyperQServer` where the gateway
and the test-suites touch it: ``process_request`` (SCM_RIGHTS socket
adoption), ``begin_drain``/``drained``, ``server_close``, ``address``,
``next_session_id``, ``draining``.
"""

from __future__ import annotations

import asyncio
import functools
import os
import socket
import struct
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.errors import (BackendTimeoutError, HyperQError, ProtocolError,
                          UnknownTenantError)
from repro.core import faults as flt
from repro.core import trace as trace_mod
from repro.core.engine import HQResult, HyperQ
from repro.protocol.encoding import encode_meta
from repro.protocol.messages import HEADER, MAGIC, MAX_PAYLOAD, MessageKind, \
    parse_header
from repro.protocol.server import RequestState, _discard_result, \
    await_straggler, run_managed

#: Default transport write-buffer high-water mark: above this many buffered
#: bytes ``drain()`` blocks the chunk pump until the client catches up.
WRITE_HIGH_WATER = 256 * 1024

#: Sentinel returned by the executor-side chunk pull at end of stream.
_DONE = object()


async def read_frame(reader: asyncio.StreamReader) -> tuple[MessageKind, bytes]:
    """Read one wire frame; validation matches the blocking reader."""
    header = await reader.readexactly(HEADER.size)
    kind, length = parse_header(header)
    payload = await reader.readexactly(length) if length else b""
    return kind, payload


def _silence(future) -> None:
    """Mark an abandoned future's exception as retrieved."""
    if not future.cancelled():
        future.exception()


class _AioConnection:
    """Loop-side state for one client connection."""

    __slots__ = ("reader", "writer", "busy", "state", "pending_pull",
                 "open_result")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.busy = False
        self.state = RequestState()
        #: Executor future of an in-flight chunk pull; cleanup must wait for
        #: it before closing the result (a generator must never be closed
        #: while another thread is inside ``next`` on it).
        self.pending_pull = None
        #: The result currently streaming to this client, closed on every
        #: exit path — including abrupt disconnect between frames.
        self.open_result = None


def _finish_connection(pending, result, straggler, session) -> None:
    """Executor-side teardown: wait out in-flight work, then release
    result buffers and the session, in dependency order."""
    if pending is not None:
        try:
            pending.result(timeout=30)
        except Exception:  # noqa: BLE001 — best-effort teardown
            pass
    if result is not None:
        try:
            result.close()
        except Exception:  # noqa: BLE001
            pass
    if straggler is not None:
        try:
            straggler.result()
        except Exception:  # noqa: BLE001 — its error already became a reply
            pass
    if session is not None:
        try:
            session.close()
        except Exception:  # noqa: BLE001
            pass


class AioHyperQServer:
    """Asyncio wire server wrapping one Hyper-Q engine.

    Owns a dedicated event-loop thread. ``bind=True`` listens on
    ``host:port``; ``bind=False`` serves only sockets handed over through
    :meth:`process_request` (the gateway worker shape).
    """

    def __init__(self, engine: HyperQ, host: str = "127.0.0.1", port: int = 0,
                 request_timeout: Optional[float] = None,
                 max_connections: int = 64, bind: bool = True,
                 executor_workers: Optional[int] = None,
                 write_high_water: int = WRITE_HIGH_WATER):
        self.engine = engine
        self.request_timeout = request_timeout
        self.max_connections = max_connections
        self.write_high_water = write_high_water
        self.draining = False
        if executor_workers is None:
            cpus = os.cpu_count() or 2
            # Enough threads to keep every core busy plus headroom for
            # requests blocked in the workload manager's queue; never more
            # than one per admissible connection.
            executor_workers = max(4, min(max_connections, cpus * 4))
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="hyperq-aio")
        self._host = host
        self._port = port
        self._bind = bind
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._aserver: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._conns: set[_AioConnection] = set()
        self._conns_lock = threading.Lock()
        self._session_counter = 0
        self._counter_lock = threading.Lock()
        self._sema: Optional[asyncio.Semaphore] = None
        self._closed = False
        #: High-water mark of transport write-buffer bytes observed across
        #: all connections — the backpressure test's bound.
        self.peak_write_buffer = 0
        #: Executor-side chunk pulls currently in flight (cancellation
        #: test hook: must fall to zero after a client disconnect).
        self.active_pulls = 0
        self._pull_lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Start the loop thread (and listener with ``bind=True``)."""
        self._thread = threading.Thread(target=self._run_loop,
                                        name="hyperq-aio-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("asyncio wire server failed to start")
        if self._startup_error is not None:
            raise self._startup_error
        return self.address

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._sema = asyncio.Semaphore(self.max_connections)
        try:
            if self._bind:
                self._aserver = loop.run_until_complete(asyncio.start_server(
                    self._serve_client, self._host, self._port, backlog=128))
        except BaseException as error:  # noqa: BLE001 — surface via start()
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            try:
                if self._aserver is not None:
                    self._aserver.close()
                    loop.run_until_complete(self._aserver.wait_closed())
                tasks = asyncio.all_tasks(loop)
                for task in tasks:
                    task.cancel()
                if tasks:
                    # Cancelled connection tasks still run their cleanup
                    # finallys (session close via the executor); bound the
                    # wait so a wedged task cannot hang shutdown.
                    loop.run_until_complete(
                        asyncio.wait(tasks, timeout=5))
            finally:
                loop.close()

    @property
    def address(self) -> tuple[str, int]:
        if self._aserver is None or not self._aserver.sockets:
            return self._host, 0
        host, port = self._aserver.sockets[0].getsockname()[:2]
        return str(host), int(port)

    def next_session_id(self) -> int:
        with self._counter_lock:
            self._session_counter += 1
            return self._session_counter

    # -- graceful drain ---------------------------------------------------------------

    def begin_drain(self) -> None:
        """Mirror of the threaded drain: no new sessions register, idle
        connections see EOF now, busy ones finish their current request
        (the client gets its full reply) before the serve loop exits."""
        loop = self._loop

        def _do() -> None:
            self.draining = True
            with self._conns_lock:
                conns = list(self._conns)
            for conn in conns:
                if not conn.busy:
                    # EOF queues *behind* already-buffered bytes, so a
                    # request that raced the drain still parses and gets
                    # served — same semantics as SHUT_RD on the threaded
                    # path.
                    conn.reader.feed_eof()

        if loop is None or loop.is_closed():
            self.draining = True
            return
        try:
            loop.call_soon_threadsafe(_do)
        except RuntimeError:
            self.draining = True

    def drained(self) -> bool:
        with self._conns_lock:
            return not self._conns

    def _register(self, conn: _AioConnection) -> bool:
        with self._conns_lock:
            if self.draining:
                return False
            self._conns.add(conn)
            return True

    def _unregister(self, conn: _AioConnection) -> None:
        with self._conns_lock:
            self._conns.discard(conn)

    # -- shutdown ---------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the event loop (compat with ``HyperQServer.shutdown``)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:
                pass

    def server_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.shutdown()
        if self._thread is not None \
                and self._thread is not threading.current_thread():
            self._thread.join(timeout=10)
        # Queued teardown tasks still run; shutdown only stops new submits.
        self._executor.shutdown(wait=False)

    # -- gateway socket adoption --------------------------------------------------------

    def process_request(self, sock: socket.socket, client_address) -> None:
        """Adopt an accepted socket (SCM_RIGHTS handoff from the gateway
        acceptor). Thread-safe; the loop takes ownership of *sock*."""
        loop = self._loop
        if loop is None or loop.is_closed():
            try:
                sock.close()
            except OSError:
                pass
            return
        asyncio.run_coroutine_threadsafe(self._serve_socket(sock), loop)

    async def _serve_socket(self, sock: socket.socket) -> None:
        try:
            reader, writer = await asyncio.open_connection(sock=sock)
        except OSError:
            try:
                sock.close()
            except OSError:
                pass
            return
        await self._serve_client(reader, writer)

    # -- connection serving -------------------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        async with self._sema:
            conn = _AioConnection(reader, writer)
            session = None
            registered = False
            try:
                sock = writer.get_extra_info("socket")
                if sock is not None:
                    try:
                        sock.setsockopt(socket.IPPROTO_TCP,
                                        socket.TCP_NODELAY, 1)
                    except OSError:
                        pass
                writer.transport.set_write_buffer_limits(
                    high=self.write_high_water)
                kind, payload = await read_frame(reader)
                if kind is not MessageKind.LOGON_REQUEST:
                    raise ProtocolError("expected LOGON_REQUEST")
                # LOGON payload: ``user\0password`` with an optional third
                # ``\0tenant`` field (absent for legacy clients).
                fields = payload.split(b"\0", 2)
                user = fields[0].decode("utf-8", "replace")
                tenant_field = (fields[2].decode("utf-8", "replace")
                                if len(fields) > 2 else "")
                engine = self.engine
                tenant = None
                if engine.tenancy is not None:
                    try:
                        tenant = engine.tenancy.resolve(tenant_field or None)
                    except UnknownTenantError as error:
                        await self._send(conn, MessageKind.FAILURE,
                                         str(error).encode("utf-8"))
                        return
                session = engine.create_session()
                session.session_params["USER"] = user.upper() or "HYPERQ"
                if engine.tenancy is not None:
                    session.session_params["TENANT"] = tenant
                await self._send(conn, MessageKind.LOGON_RESPONSE,
                                 struct.pack(">I", self.next_session_id()))
                registered = self._register(conn)
                if registered:
                    await self._serve(conn, session)
            except (ProtocolError, ConnectionError, OSError,
                    asyncio.IncompleteReadError):
                return
            except asyncio.CancelledError:
                # Loop shutdown cancels connection tasks; cleanup below
                # still runs, and swallowing here keeps the streams-module
                # connection_made callback from logging the cancellation.
                return
            except Exception:  # noqa: BLE001 — parity with handle_error()
                return
            finally:
                if registered:
                    self._unregister(conn)
                self._teardown(conn, session)

    def _teardown(self, conn: _AioConnection, session) -> None:
        """Close the writer now; push blocking teardown to the executor.

        Sessions close on *every* exit path — a client that vanishes
        mid-request must not leak its volatile-table overlay, its converter
        resources, or an open ``ResultStore``. Ordering matters: an
        in-flight chunk pull must land before the result closes (a
        generator cannot be closed while a thread is inside it), and a
        straggler must land before the session closes under it.
        """
        pending, conn.pending_pull = conn.pending_pull, None
        result, conn.open_result = conn.open_result, None
        straggler, conn.state.straggler = conn.state.straggler, None
        if (pending, result, straggler, session) != (None, None, None, None):
            try:
                self._executor.submit(_finish_connection, pending, result,
                                      straggler, session)
            except RuntimeError:
                # Executor already shut down (server closing): best-effort
                # inline.
                _finish_connection(pending, result, straggler, session)
        try:
            conn.writer.close()
        except Exception:  # noqa: BLE001
            pass

    async def _serve(self, conn: _AioConnection, session) -> None:
        while True:
            kind, payload = await read_frame(conn.reader)
            if kind is MessageKind.LOGOFF:
                return
            if kind is not MessageKind.RUN_QUERY:
                raise ProtocolError(f"unexpected message {kind.name}")
            # Busy for the span of the request: a drain never cuts a query
            # already being served (the loop runs `_do` between awaits, so
            # the flag is race-free).
            conn.busy = True
            try:
                alive = await self._handle_request(conn, session, payload)
            finally:
                conn.busy = False
            if not alive or self.draining:
                return

    async def _handle_request(self, conn: _AioConnection, session,
                              payload: bytes) -> bool:
        """Serve one RUN_QUERY under a request-scoped trace.

        Mirrors the threaded `_handle_request` decision-for-decision: same
        span names, same fault sites, same FAILURE texts — the parity suite
        diffs the reply bytes of the two paths.
        """
        engine = self.engine
        hub = engine.tracing
        trace = hub.start_trace("request") if hub.enabled else None
        state = conn.state
        state.wl_class = None
        root = trace.root if trace is not None else None
        with trace_mod.activate(root):
            outcome = "ok"
            try:
                with trace_mod.span("protocol_decode", bytes=len(payload)):
                    sql = payload.decode("utf-8")
                    fault = (engine.faults.draw("wire", op=sql)
                             if engine.faults is not None else None)
                if trace is not None:
                    trace.sql = sql
                    trace.root.annotate("sql", sql[:200])
                if fault is not None and fault.kind == flt.WIRE_DISCONNECT:
                    engine.resilience.note("wire_disconnect")
                    engine.faults.record("wire_disconnect", seq=fault.seq)
                    trace_mod.add_event("wire_disconnect", seq=fault.seq)
                    outcome = "wire_disconnect"
                    return False
                if engine.faults is not None \
                        and engine.worker_index is not None:
                    gw_fault = engine.faults.draw(
                        "gateway", op=sql, replica=engine.worker_index)
                    if gw_fault is not None \
                            and gw_fault.kind == flt.WORKER_CRASH:
                        os._exit(86)
                delay = fault.delay if fault is not None \
                    and fault.kind == flt.SLOW_RESULT else 0.0
                try:
                    result = await self._run_request(state, session, sql,
                                                     delay, root)
                except HyperQError as error:  # timeouts, sheds, queue expiry
                    outcome = f"error:{type(error).__name__}"
                    await self._send(conn, MessageKind.FAILURE,
                                     str(error).encode("utf-8"))
                    return True
                except Exception as error:  # noqa: BLE001 — reply, don't drop
                    outcome = f"error:{type(error).__name__}"
                    await self._send(conn, MessageKind.FAILURE,
                                     f"internal error: {error}"
                                     .encode("utf-8"))
                    return True
                await self._send_result(conn, result)
                return True
            except BaseException as error:  # connection died mid-reply
                outcome = f"error:{type(error).__name__}"
                raise
            finally:
                if trace is not None:
                    hub.finish_trace(trace, outcome, wl_class=state.wl_class)

    # -- request execution --------------------------------------------------------------

    async def _run_request(self, state: RequestState, session, sql: str,
                           delay: float, root) -> HQResult:
        loop = asyncio.get_running_loop()
        if self.engine.workload is not None:
            # The whole managed flow (straggler drain → classify → submit →
            # wait) is one blocking unit sharing run_managed with the
            # threaded path; it occupies one executor slot while queued,
            # exactly as it occupies one connection thread there.
            return await loop.run_in_executor(
                self._executor,
                functools.partial(self._managed_blocking, state, session,
                                  sql, delay, root))
        return await self._run_direct(state, session, sql, delay, root)

    def _managed_blocking(self, state, session, sql, delay, root) -> HQResult:
        with trace_mod.activate(root):
            return run_managed(self, state, session, sql, delay)

    async def _run_direct(self, state: RequestState, session, sql: str,
                          delay: float, root) -> HQResult:
        # A straggler from a timed-out request must land before the session
        # is touched again — the threaded path serializes via its 1-thread
        # executor; here the executor is shared, so serialize explicitly.
        straggler, state.straggler = state.straggler, None
        if straggler is not None:
            try:
                await asyncio.wrap_future(straggler)
            except Exception:  # noqa: BLE001 — already replied FAILURE
                pass

        import time as time_mod

        def work() -> HQResult:
            with trace_mod.activate(root):
                if delay > 0:
                    time_mod.sleep(delay)
                return session.execute(sql)

        loop = asyncio.get_running_loop()
        timeout = self.request_timeout
        if timeout is None:
            return await loop.run_in_executor(self._executor, work)
        future = self._executor.submit(work)
        wrapped = asyncio.ensure_future(asyncio.wrap_future(future))
        try:
            return await asyncio.wait_for(asyncio.shield(wrapped), timeout)
        except asyncio.TimeoutError:
            engine = self.engine
            engine.resilience.note("timeout")
            if engine.faults is not None:
                engine.faults.record("timeout", timeout=f"{timeout:g}")
            wrapped.add_done_callback(_silence)
            future.add_done_callback(_discard_result)
            if not future.done():
                state.straggler = future
            raise BackendTimeoutError(
                f"request timed out after {timeout:g}s") from None

    # -- reply streaming ----------------------------------------------------------------

    async def _send(self, conn: _AioConnection, kind: MessageKind,
                    payload: bytes = b"") -> None:
        """Write one frame as header + payload views and drain.

        ``drain()`` returns immediately below the transport's high-water
        mark and blocks above it — per-connection backpressure without a
        copy or a syscall per frame.
        """
        if len(payload) > MAX_PAYLOAD:
            raise ProtocolError(
                f"payload of {len(payload)} bytes exceeds limit")
        writer = conn.writer
        writer.write(HEADER.pack(MAGIC, int(kind), len(payload)))
        if payload:
            writer.write(payload)
        size = writer.transport.get_write_buffer_size()
        if size > self.peak_write_buffer:
            self.peak_write_buffer = size
        await writer.drain()

    def _pull_chunk(self, pull, parent):
        # The conversion generator opens its result_convert span at first
        # pull; activate the request's wire_encode span on this executor
        # thread so the span nests exactly as on the threaded path.
        with self._pull_lock:
            self.active_pulls += 1
        try:
            with trace_mod.activate(parent):
                return pull()
        finally:
            with self._pull_lock:
                self.active_pulls -= 1

    async def _send_result(self, conn: _AioConnection,
                           result: HQResult) -> None:
        """Ship one result, pumping chunks loop↔executor as they convert.

        Each chunk is one executor hop (the pull — decode, convert, encode
        all happen lazily inside ``next``) followed by an awaitable write;
        the drain between pulls is what turns a slow client into
        backpressure on the backend executor.
        """
        loop = asyncio.get_running_loop()
        with trace_mod.span("wire_encode") as span:
            conn.open_result = result
            try:
                if result.kind == "rows":
                    await self._send(conn, MessageKind.RESULT_META,
                                     encode_meta(result.metas))
                    sent = 0
                    chunks = result.iter_chunks()
                    pull = functools.partial(next, chunks, _DONE)
                    parent = trace_mod.current_span()
                    try:
                        while True:
                            future = self._executor.submit(
                                self._pull_chunk, pull, parent)
                            conn.pending_pull = future
                            chunk = await asyncio.wrap_future(future)
                            conn.pending_pull = None
                            if chunk is _DONE:
                                break
                            if chunk:
                                await self._send(conn,
                                                 MessageKind.RESULT_ROWS,
                                                 chunk)
                                sent += len(chunk)
                    except HyperQError as error:
                        # Mid-stream failure: some rows may already be on
                        # the wire; the FAILURE frame marks the result
                        # truncated.
                        await self._send(conn, MessageKind.FAILURE,
                                         str(error).encode("utf-8"))
                        if span is not None:
                            span.annotate("bytes", sent)
                            span.outcome = "truncated"
                        return
                    await self._send(conn, MessageKind.SUCCESS,
                                     struct.pack(">Q", result.rowcount))
                    if span is not None:
                        span.annotate("bytes", sent)
                        span.annotate("rows", result.rowcount)
                elif result.kind == "count":
                    await self._send(conn, MessageKind.RESULT_COUNT,
                                     struct.pack(">Q", result.rowcount))
                    await self._send(conn, MessageKind.SUCCESS,
                                     struct.pack(">Q", result.rowcount))
                    if span is not None:
                        span.annotate("rows", result.rowcount)
                else:
                    await self._send(conn, MessageKind.SUCCESS,
                                     struct.pack(">Q", 0))
            finally:
                conn.open_result = None
                pending, conn.pending_pull = conn.pending_pull, None
                if pending is not None and not pending.done():
                    # Disconnect/cancellation mid-pull: the result must not
                    # close under the executor thread still inside `next` —
                    # chain the close behind the pull, off-loop.
                    try:
                        self._executor.submit(_finish_connection, pending,
                                              result, None, None)
                    except RuntimeError:
                        _finish_connection(pending, result, None, None)
                else:
                    try:
                        result.close()
                    except Exception:  # noqa: BLE001
                        pass


class AioServerThread:
    """Runs an :class:`AioHyperQServer`; drop-in for :class:`ServerThread`.

    Usage::

        with AioServerThread(engine) as address:
            client = TdClient(*address)
    """

    def __init__(self, engine: HyperQ, host: str = "127.0.0.1", port: int = 0,
                 request_timeout: Optional[float] = None,
                 max_connections: int = 64):
        self.server = AioHyperQServer(engine, host, port,
                                      request_timeout=request_timeout,
                                      max_connections=max_connections)

    def start(self) -> tuple[str, int]:
        return self.server.start()

    def stop(self) -> None:
        self.server.server_close()

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
