"""A bteq-like client library speaking the source wire protocol.

Stands in for the unchanged application + vendor connector of Figure 1: it
submits source-dialect SQL over the binary protocol and decodes the binary
result records, oblivious to the fact that a completely different database
executed the query.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BackendError, ProtocolError
from repro.protocol.encoding import ColumnMeta, decode_meta, decode_rows
from repro.protocol.messages import MessageKind, read_message, send_message


@dataclass
class ClientResult:
    """Decoded outcome of one request."""

    kind: str  # "rows" | "count" | "ok"
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0


class RowStream:
    """Incremental view of one in-flight response.

    Iterating yields rows frame by frame as RESULT_ROWS messages land;
    :attr:`metas` fills once the RESULT_META frame arrives and
    :attr:`final` holds the terminal :class:`ClientResult` (without rows)
    after exhaustion. An optional :attr:`on_rows` callback fires per frame
    — test instrumentation hooks timestamps through it.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self.metas: list[ColumnMeta] = []
        self.final: Optional[ClientResult] = None
        self.on_rows = None  # callable(frame_rows: list[tuple]) or None

    @property
    def columns(self) -> list[str]:
        return [meta.name for meta in self.metas]

    def __iter__(self):
        count = 0
        saw_count = False
        while True:
            kind, payload = read_message(self._sock)
            if kind is MessageKind.RESULT_META:
                self.metas = decode_meta(payload)
            elif kind is MessageKind.RESULT_ROWS:
                frame = decode_rows(self.metas, payload)
                if self.on_rows is not None:
                    self.on_rows(frame)
                yield from frame
            elif kind is MessageKind.RESULT_COUNT:
                (count,) = struct.unpack(">Q", payload)
                saw_count = True
            elif kind is MessageKind.SUCCESS:
                (total,) = struct.unpack(">Q", payload)
                if self.metas:
                    self.final = ClientResult("rows", self.columns,
                                              rowcount=total)
                elif saw_count:
                    self.final = ClientResult("count", rowcount=count)
                else:
                    self.final = ClientResult("ok")
                return
            elif kind is MessageKind.FAILURE:
                raise BackendError(payload.decode("utf-8", "replace"))
            else:
                raise ProtocolError(f"unexpected message {kind.name}")


class TdClient:
    """A minimal interactive client (the reproduction's ``bteq``)."""

    def __init__(self, host: str, port: int, user: str = "dbc",
                 password: str = "dbc", timeout: float = 60.0,
                 sock: Optional[socket.socket] = None,
                 tenant: Optional[str] = None):
        # A caller-provided socket lets tests pick the client's source
        # port before connecting — the gateway routes on the client
        # address, so this pins a session to a chosen worker.
        if sock is None:
            sock = socket.create_connection((host, port), timeout=timeout)
        else:
            sock.settimeout(timeout)
            try:
                sock.getpeername()
            except OSError:  # bound but not yet connected
                sock.connect((host, port))
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.session_id: Optional[int] = None
        self._logon(user, password, tenant)

    def _logon(self, user: str, password: str,
               tenant: Optional[str]) -> None:
        payload = user.encode("utf-8") + b"\0" + password.encode("utf-8")
        if tenant is not None:
            # Optional third LOGON field; servers without tenancy treat
            # everything after the first NUL as the password, which the
            # reproduction's server never checks.
            payload += b"\0" + tenant.encode("utf-8")
        send_message(self._sock, MessageKind.LOGON_REQUEST, payload)
        kind, response = read_message(self._sock)
        if kind is MessageKind.FAILURE:
            self._sock.close()
            raise BackendError(response.decode("utf-8", "replace"))
        if kind is not MessageKind.LOGON_RESPONSE:
            raise ProtocolError(f"logon failed: got {kind.name}")
        (self.session_id,) = struct.unpack(">I", response)

    def execute(self, sql: str) -> ClientResult:
        """Submit one request and collect the full response."""
        stream = self.execute_stream(sql)
        rows = list(stream)
        final = stream.final
        if final.kind == "rows":
            final.rows = rows
        return final

    def execute_stream(self, sql: str) -> "RowStream":
        """Submit one request and iterate rows as frames arrive.

        The returned :class:`RowStream` yields decoded rows while the server
        is still producing — before the final response frame. It must be
        drained (or the connection closed) before the next request; partial
        iteration leaves response frames on the socket.
        """
        send_message(self._sock, MessageKind.RUN_QUERY, sql.encode("utf-8"))
        return RowStream(self._sock)

    # -- observability admin commands ------------------------------------------------

    def show_metrics(self) -> str:
        """The server's metrics dump (``SHOW HYPERQ METRICS``)."""
        result = self.execute("SHOW HYPERQ METRICS")
        return "\n".join(row[0] for row in result.rows)

    def show_trace(self, trace_id: int) -> str:
        """One request's rendered span tree (``SHOW HYPERQ TRACE <id>``)."""
        result = self.execute(f"SHOW HYPERQ TRACE {trace_id}")
        return "\n".join(row[0] for row in result.rows)

    def show_traces(self) -> str:
        """The ring buffer's trace index (``SHOW HYPERQ TRACES``)."""
        result = self.execute("SHOW HYPERQ TRACES")
        return "\n".join(row[0] for row in result.rows)

    def show_tenants(self) -> str:
        """The per-tenant control-plane report (``SHOW HYPERQ TENANTS``),
        aggregated across the whole worker fleet when served by a gateway."""
        result = self.execute("SHOW HYPERQ TENANTS")
        return "\n".join(row[0] for row in result.rows)

    def show_slow_queries(self) -> str:
        """The slow-query log records (``SHOW HYPERQ SLOW QUERIES``)."""
        result = self.execute("SHOW HYPERQ SLOW QUERIES")
        return "\n".join(row[0] for row in result.rows)

    def close(self) -> None:
        try:
            send_message(self._sock, MessageKind.LOGOFF)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "TdClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
