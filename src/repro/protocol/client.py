"""A bteq-like client library speaking the source wire protocol.

Stands in for the unchanged application + vendor connector of Figure 1: it
submits source-dialect SQL over the binary protocol and decodes the binary
result records, oblivious to the fact that a completely different database
executed the query.
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BackendError, ProtocolError
from repro.protocol.encoding import ColumnMeta, decode_meta, decode_rows
from repro.protocol.messages import MessageKind, read_message, send_message


@dataclass
class ClientResult:
    """Decoded outcome of one request."""

    kind: str  # "rows" | "count" | "ok"
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0


class TdClient:
    """A minimal interactive client (the reproduction's ``bteq``)."""

    def __init__(self, host: str, port: int, user: str = "dbc",
                 password: str = "dbc", timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.session_id: Optional[int] = None
        self._logon(user, password)

    def _logon(self, user: str, password: str) -> None:
        payload = user.encode("utf-8") + b"\0" + password.encode("utf-8")
        send_message(self._sock, MessageKind.LOGON_REQUEST, payload)
        kind, response = read_message(self._sock)
        if kind is not MessageKind.LOGON_RESPONSE:
            raise ProtocolError(f"logon failed: got {kind.name}")
        (self.session_id,) = struct.unpack(">I", response)

    def execute(self, sql: str) -> ClientResult:
        """Submit one request and collect the full response."""
        send_message(self._sock, MessageKind.RUN_QUERY, sql.encode("utf-8"))
        metas: list[ColumnMeta] = []
        rows: list[tuple] = []
        count = 0
        saw_count = False
        while True:
            kind, payload = read_message(self._sock)
            if kind is MessageKind.RESULT_META:
                metas = decode_meta(payload)
            elif kind is MessageKind.RESULT_ROWS:
                rows.extend(decode_rows(metas, payload))
            elif kind is MessageKind.RESULT_COUNT:
                (count,) = struct.unpack(">Q", payload)
                saw_count = True
            elif kind is MessageKind.SUCCESS:
                (total,) = struct.unpack(">Q", payload)
                if metas:
                    return ClientResult("rows", [m.name for m in metas], rows,
                                        total)
                if saw_count:
                    return ClientResult("count", rowcount=count)
                return ClientResult("ok")
            elif kind is MessageKind.FAILURE:
                raise BackendError(payload.decode("utf-8", "replace"))
            else:
                raise ProtocolError(f"unexpected message {kind.name}")

    def close(self) -> None:
        try:
            send_message(self._sock, MessageKind.LOGOFF)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "TdClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
