"""Source-database binary result encoding (Teradata-style records).

The Result Converter must hand the application "query results that are
bit-identical to the original database" (Section 4). This module defines that
target format for the reproduction: length-prefixed records with a NULL
indicator bitmap followed by per-column payloads in declared-type layout —
including Teradata's internal integer DATE encoding
``(year-1900)*10000 + month*100 + day``.

This is the hottest byte-bashing loop in the proxy (every result row of every
request funnels through :func:`encode_rows`), so the per-type ``struct`` calls
are precompiled into module-level :class:`struct.Struct` instances and row
encoding is batched: one growing buffer per chunk, record lengths patched in
place, and per-column encoder dispatch resolved once per batch instead of
once per value. Decoding reads through a :class:`memoryview` so bitmap and
payload access never copies the chunk.
"""

from __future__ import annotations

import datetime
import struct
from dataclasses import dataclass

from repro.errors import ConversionError
from repro.xtra import types as t
from repro.xtra.types import SQLType, TypeKind, date_to_teradata_int, teradata_int_to_date

# Column type codes on the wire.
CODE_SMALLINT = 1
CODE_INTEGER = 2
CODE_BIGINT = 3
CODE_FLOAT = 4
CODE_DECIMAL = 5
CODE_CHAR = 6
CODE_VARCHAR = 7
CODE_DATE = 8
CODE_TIMESTAMP = 9
CODE_BOOLEAN = 10
CODE_TIME = 11

_KIND_TO_CODE = {
    TypeKind.SMALLINT: CODE_SMALLINT,
    TypeKind.INTEGER: CODE_INTEGER,
    TypeKind.BIGINT: CODE_BIGINT,
    TypeKind.FLOAT: CODE_FLOAT,
    TypeKind.DECIMAL: CODE_DECIMAL,
    TypeKind.CHAR: CODE_CHAR,
    TypeKind.VARCHAR: CODE_VARCHAR,
    TypeKind.DATE: CODE_DATE,
    TypeKind.TIMESTAMP: CODE_TIMESTAMP,
    TypeKind.BOOLEAN: CODE_BOOLEAN,
    TypeKind.TIME: CODE_TIME,
}

# Precompiled wire layouts: parsing a format string per value is pure
# overhead on the row path.
_S_I16 = struct.Struct("<h")
_S_I32 = struct.Struct("<i")
_S_I64 = struct.Struct("<q")
_S_F64 = struct.Struct("<d")
_S_U16 = struct.Struct("<H")
_S_U32 = struct.Struct("<I")
_S_META = struct.Struct("<BHH")


@dataclass(frozen=True)
class ColumnMeta:
    """Wire-level column descriptor."""

    name: str
    code: int
    length: int = 0
    scale: int = 0


def column_code(declared: SQLType) -> int | None:
    return _KIND_TO_CODE.get(declared.kind)


def _infer_code(value: object) -> int:
    if isinstance(value, bool):
        return CODE_BOOLEAN
    if isinstance(value, int):
        return CODE_BIGINT
    if isinstance(value, float):
        return CODE_FLOAT
    if isinstance(value, str):
        return CODE_VARCHAR
    if isinstance(value, datetime.datetime):
        return CODE_TIMESTAMP
    if isinstance(value, datetime.date):
        return CODE_DATE
    if isinstance(value, datetime.time):
        return CODE_TIME
    raise ConversionError(f"cannot infer wire type for {type(value).__name__}")


def effective_meta(names: list[str], declared: list[SQLType],
                   rows: list[tuple]) -> list[ColumnMeta]:
    """Concretize column metadata, inferring UNKNOWN types from the data.

    A column whose declared type is UNKNOWN takes the wire type of its first
    non-NULL value; an all-NULL column degrades to VARCHAR.
    """
    metas: list[ColumnMeta] = []
    for index, name in enumerate(names):
        declared_type = declared[index] if index < len(declared) else t.UNKNOWN
        code = column_code(declared_type)
        if code is None:
            code = CODE_VARCHAR
            for row in rows:
                if row[index] is not None:
                    code = _infer_code(row[index])
                    break
        metas.append(ColumnMeta(
            name=name,
            code=code,
            length=declared_type.length or 0,
            scale=declared_type.scale or 0,
        ))
    return metas


# -- metadata framing -----------------------------------------------------------

def encode_meta(metas: list[ColumnMeta]) -> bytes:
    out = bytearray(_S_U16.pack(len(metas)))
    for meta in metas:
        payload = meta.name.encode("utf-8")
        out += _S_U16.pack(len(payload))
        out += payload
        out += _S_META.pack(meta.code, meta.length, meta.scale)
    return bytes(out)


def decode_meta(blob: bytes) -> list[ColumnMeta]:
    offset = 0
    count = _S_U16.unpack_from(blob, offset)[0]
    offset += 2
    metas = []
    for __ in range(count):
        length = _S_U16.unpack_from(blob, offset)[0]
        offset += 2
        name = blob[offset:offset + length].decode("utf-8")
        offset += length
        code, col_len, scale = _S_META.unpack_from(blob, offset)
        offset += 5
        metas.append(ColumnMeta(name, code, col_len, scale))
    return metas


# -- per-type value codecs ----------------------------------------------------------

def _enc_smallint(value: object, out: bytearray) -> None:
    out += _S_I16.pack(int(value))


def _enc_integer(value: object, out: bytearray) -> None:
    out += _S_I32.pack(int(value))


def _enc_bigint(value: object, out: bytearray) -> None:
    out += _S_I64.pack(int(value))


def _enc_float(value: object, out: bytearray) -> None:
    out += _S_F64.pack(float(value))


def _enc_string(value: object, out: bytearray) -> None:
    if not isinstance(value, str):
        value = str(value)
    payload = value.encode("utf-8")
    out += _S_U16.pack(len(payload))
    out += payload


def _enc_date(value: object, out: bytearray) -> None:
    if isinstance(value, datetime.datetime):
        value = value.date()
    if not isinstance(value, datetime.date):
        raise ConversionError(f"DATE column got {type(value).__name__}")
    out += _S_I32.pack(date_to_teradata_int(value))


def _enc_timestamp(value: object, out: bytearray) -> None:
    if isinstance(value, datetime.date) \
            and not isinstance(value, datetime.datetime):
        value = datetime.datetime(value.year, value.month, value.day)
    payload = value.isoformat(sep=" ").encode("ascii")
    out += _S_U16.pack(len(payload))
    out += payload


def _enc_boolean(value: object, out: bytearray) -> None:
    out.append(1 if value else 0)


def _enc_time(value: object, out: bytearray) -> None:
    payload = value.isoformat().encode("ascii")
    out += _S_U16.pack(len(payload))
    out += payload


_ENCODERS = {
    CODE_SMALLINT: _enc_smallint,
    CODE_INTEGER: _enc_integer,
    CODE_BIGINT: _enc_bigint,
    CODE_FLOAT: _enc_float,
    CODE_DECIMAL: _enc_float,
    CODE_CHAR: _enc_string,
    CODE_VARCHAR: _enc_string,
    CODE_DATE: _enc_date,
    CODE_TIMESTAMP: _enc_timestamp,
    CODE_BOOLEAN: _enc_boolean,
    CODE_TIME: _enc_time,
}


def _encode_value(code: int, value: object, out: bytearray) -> None:
    encoder = _ENCODERS.get(code)
    if encoder is None:
        raise ConversionError(f"unknown wire type code {code}")
    encoder(value, out)


def _dec_smallint(view, offset: int) -> tuple[object, int]:
    return _S_I16.unpack_from(view, offset)[0], offset + 2


def _dec_integer(view, offset: int) -> tuple[object, int]:
    return _S_I32.unpack_from(view, offset)[0], offset + 4


def _dec_bigint(view, offset: int) -> tuple[object, int]:
    return _S_I64.unpack_from(view, offset)[0], offset + 8


def _dec_float(view, offset: int) -> tuple[object, int]:
    return _S_F64.unpack_from(view, offset)[0], offset + 8


def _dec_string(view, offset: int) -> tuple[object, int]:
    length = _S_U16.unpack_from(view, offset)[0]
    offset += 2
    return str(view[offset:offset + length], "utf-8"), offset + length


def _dec_timestamp(view, offset: int) -> tuple[object, int]:
    text, offset = _dec_string(view, offset)
    return datetime.datetime.fromisoformat(text), offset


def _dec_time(view, offset: int) -> tuple[object, int]:
    text, offset = _dec_string(view, offset)
    return datetime.time.fromisoformat(text), offset


def _dec_date(view, offset: int) -> tuple[object, int]:
    return teradata_int_to_date(_S_I32.unpack_from(view, offset)[0]), offset + 4


def _dec_boolean(view, offset: int) -> tuple[object, int]:
    return bool(view[offset]), offset + 1


_DECODERS = {
    CODE_SMALLINT: _dec_smallint,
    CODE_INTEGER: _dec_integer,
    CODE_BIGINT: _dec_bigint,
    CODE_FLOAT: _dec_float,
    CODE_DECIMAL: _dec_float,
    CODE_CHAR: _dec_string,
    CODE_VARCHAR: _dec_string,
    CODE_DATE: _dec_date,
    CODE_TIMESTAMP: _dec_timestamp,
    CODE_BOOLEAN: _dec_boolean,
    CODE_TIME: _dec_time,
}


def _decode_value(code: int, blob, offset: int) -> tuple[object, int]:
    decoder = _DECODERS.get(code)
    if decoder is None:
        raise ConversionError(f"unknown wire type code {code}")
    return decoder(blob, offset)


# -- row records -------------------------------------------------------------------

def encode_rows_reference(metas: list[ColumnMeta], rows: list[tuple]) -> bytes:
    """Per-row reference encoder: the wire-format specification.

    This is the original interpretive loop — per-column encoder functions
    dispatched per value. The compiled :class:`RowCodec` below must produce
    byte-identical output (property-tested in
    ``tests/property/test_prop_encoding.py``); keep this in sync with the
    format, never with the codec internals.
    """
    encoders = []
    for meta in metas:
        encoder = _ENCODERS.get(meta.code)
        if encoder is None:
            raise ConversionError(f"unknown wire type code {meta.code}")
        encoders.append(encoder)
    bitmap_len = (len(metas) + 7) // 8
    prefix = bytes(4 + bitmap_len)  # length placeholder + zeroed bitmap
    pack_length = _S_U32.pack_into
    out = bytearray()
    for row in rows:
        header = len(out)
        out += prefix
        bitmap_at = header + 4
        for index, (encoder, value) in enumerate(zip(encoders, row)):
            if value is None:
                out[bitmap_at + (index >> 3)] |= 1 << (index & 7)
            else:
                encoder(value, out)
        pack_length(out, header, len(out) - bitmap_at)
    return bytes(out)


def decode_rows_reference(metas: list[ColumnMeta], blob: bytes) -> list[tuple]:
    """Per-row reference decoder matching :func:`encode_rows_reference`."""
    decoders = []
    for meta in metas:
        decoder = _DECODERS.get(meta.code)
        if decoder is None:
            raise ConversionError(f"unknown wire type code {meta.code}")
        decoders.append(decoder)
    rows = []
    view = memoryview(blob)
    offset = 0
    bitmap_len = (len(metas) + 7) // 8
    total = len(view)
    unpack_length = _S_U32.unpack_from
    while offset < total:
        record_len = unpack_length(view, offset)[0]
        offset += 4
        record_end = offset + record_len
        bitmap_at = offset
        cursor = offset + bitmap_len
        values = []
        for index, decoder in enumerate(decoders):
            if view[bitmap_at + (index >> 3)] & (1 << (index & 7)):
                values.append(None)
            else:
                value, cursor = decoder(view, cursor)
                values.append(value)
        if cursor != record_end:
            raise ConversionError("corrupt record: trailing bytes")
        rows.append(tuple(values))
        offset = record_end
    return rows


# -- compiled batch codecs ----------------------------------------------------------
#
# encode_rows()/decode_rows() funnel every result row of every request, so the
# interpretive per-value dispatch above is replaced on the hot path by
# per-schema functions generated once per column layout: straight-line code
# with the struct packers bound as locals, NULL bits accumulated in a plain
# int, and — for all-numeric schemas — a single whole-record struct.Struct
# fast path that packs length prefix, zero bitmap, and every column in one
# call. Decoding walks a memoryview and never copies fixed-width payloads.

def _date_wire(value: object) -> int:
    if isinstance(value, datetime.datetime):
        value = value.date()
    if not isinstance(value, datetime.date):
        raise ConversionError(f"DATE column got {type(value).__name__}")
    return date_to_teradata_int(value)


def _timestamp_wire(value: object) -> bytes:
    if isinstance(value, datetime.date) \
            and not isinstance(value, datetime.datetime):
        value = datetime.datetime(value.year, value.month, value.day)
    return value.isoformat(sep=" ").encode("ascii")


# Fixed-width numeric columns eligible for the whole-record struct fast path.
# BOOLEAN is excluded (the wire writes `1 if value else 0`, not the raw int)
# and DATE is excluded (needs the Teradata integer conversion).
_FIXED_CHAR = {
    CODE_SMALLINT: "h",
    CODE_INTEGER: "i",
    CODE_BIGINT: "q",
    CODE_FLOAT: "d",
    CODE_DECIMAL: "d",
}

_CODEGEN_GLOBALS = {
    "p16": _S_I16.pack, "p32": _S_I32.pack, "p64": _S_I64.pack,
    "pf": _S_F64.pack, "pu16": _S_U16.pack,
    "u16": _S_I16.unpack_from, "u32i": _S_I32.unpack_from,
    "u64": _S_I64.unpack_from, "uf": _S_F64.unpack_from,
    "uu16": _S_U16.unpack_from, "ulen": _S_U32.unpack_from,
    "pklen": _S_U32.pack_into,
    "dwire": _date_wire, "tswire": _timestamp_wire,
    "ts_parse": datetime.datetime.fromisoformat,
    "t_parse": datetime.time.fromisoformat,
    "d_from": teradata_int_to_date,
    "CErr": ConversionError,
    "_SE": struct.error, "TypeError": TypeError,
    "isinstance": isinstance, "str": str, "len": len,
    "int": int, "float": float, "bool": bool,
    "__builtins__": {},
}


def _enc_value_lines(code: int) -> list[str]:
    if code == CODE_SMALLINT:
        return ["out += p16(int(v))"]
    if code == CODE_INTEGER:
        return ["out += p32(int(v))"]
    if code == CODE_BIGINT:
        return ["out += p64(int(v))"]
    if code in (CODE_FLOAT, CODE_DECIMAL):
        return ["out += pf(float(v))"]
    if code in (CODE_CHAR, CODE_VARCHAR):
        return ["b = (v if isinstance(v, str) else str(v)).encode('utf-8')",
                "out += pu16(len(b))",
                "out += b"]
    if code == CODE_DATE:
        return ["out += p32(dwire(v))"]
    if code == CODE_TIMESTAMP:
        return ["b = tswire(v)", "out += pu16(len(b))", "out += b"]
    if code == CODE_BOOLEAN:
        return ["out.append(1 if v else 0)"]
    if code == CODE_TIME:
        return ["b = v.isoformat().encode('ascii')",
                "out += pu16(len(b))",
                "out += b"]
    raise ConversionError(f"unknown wire type code {code}")


def _dec_value_lines(code: int, i: int) -> list[str]:
    if code == CODE_SMALLINT:
        return [f"v{i} = u16(view, cur)[0]", "cur += 2"]
    if code == CODE_INTEGER:
        return [f"v{i} = u32i(view, cur)[0]", "cur += 4"]
    if code == CODE_BIGINT:
        return [f"v{i} = u64(view, cur)[0]", "cur += 8"]
    if code in (CODE_FLOAT, CODE_DECIMAL):
        return [f"v{i} = uf(view, cur)[0]", "cur += 8"]
    if code in (CODE_CHAR, CODE_VARCHAR):
        return ["n = uu16(view, cur)[0]", "cur += 2",
                f"v{i} = str(view[cur:cur + n], 'utf-8')", "cur += n"]
    if code == CODE_DATE:
        return [f"v{i} = d_from(u32i(view, cur)[0])", "cur += 4"]
    if code == CODE_TIMESTAMP:
        return ["n = uu16(view, cur)[0]", "cur += 2",
                f"v{i} = ts_parse(str(view[cur:cur + n], 'utf-8'))", "cur += n"]
    if code == CODE_BOOLEAN:
        return [f"v{i} = bool(view[cur])", "cur += 1"]
    if code == CODE_TIME:
        return ["n = uu16(view, cur)[0]", "cur += 2",
                f"v{i} = t_parse(str(view[cur:cur + n], 'utf-8'))", "cur += n"]
    raise ConversionError(f"unknown wire type code {code}")


def _compile_encode(codes: tuple[int, ...]):
    ncols = len(codes)
    bitmap_len = (ncols + 7) // 8
    chars = [_FIXED_CHAR.get(code) for code in codes]
    fast = ncols > 0 and all(chars)
    lines = ["def _encode_batch(rows, out):"]
    if fast:
        # All-numeric schema: one struct call packs length prefix, zeroed
        # bitmap ('x' pads), and every column. Rows with NULLs or values the
        # format rejects (float in an int column) fall back to the general
        # body below, which matches the reference encoder exactly.
        lines += [
            " for row in rows:",
            "  if None not in row:",
            "   try:",
            "    out += fpack(_RL, *row)",
            "    continue",
            "   except (_SE, TypeError):",
            "    pass",
        ]
    else:
        lines += [" for row in rows:"]
    b = "  "
    lines += [b + "base = len(out)", b + "out += _PREFIX", b + "m = 0"]
    for i, code in enumerate(codes):
        lines += [b + f"v = row[{i}]",
                  b + "if v is None:",
                  b + f" m |= {1 << i}",
                  b + "else:"]
        lines += [b + " " + line for line in _enc_value_lines(code)]
    if ncols:
        lines += [b + "if m:",
                  b + f" out[base + 4:base + {4 + bitmap_len}]"
                      f" = m.to_bytes({bitmap_len}, 'little')"]
    lines += [b + "pklen(out, base, len(out) - base - 4)"]
    namespace = dict(_CODEGEN_GLOBALS)
    namespace["_PREFIX"] = bytes(4 + bitmap_len)
    if fast:
        packer = struct.Struct("<I" + "x" * bitmap_len + "".join(chars))
        namespace["fpack"] = packer.pack
        namespace["_RL"] = packer.size - 4
    exec("\n".join(lines), namespace)
    return namespace["_encode_batch"]


def _compile_decode(codes: tuple[int, ...]):
    ncols = len(codes)
    bitmap_len = (ncols + 7) // 8
    chars = [_FIXED_CHAR.get(code) for code in codes]
    fast = ncols > 0 and all(chars)
    lines = ["def _decode_batch(view):",
             " rows = []",
             " append = rows.append",
             " off = 0",
             " total = len(view)",
             " while off < total:",
             "  reclen = ulen(view, off)[0]",
             "  off += 4",
             "  end = off + reclen"]
    if fast:
        # A full-length record of an all-numeric schema can only be
        # NULL-free (NULLs shrink the record), so one unpack yields the row.
        lines += [
            "  if reclen == _RL and end <= total:",
            "   vals = funpack(view, off - 4)",
            "   if vals[1] == _ZB:",
            "    append(vals[2:])",
            "    off = end",
            "    continue",
        ]
    if bitmap_len:
        lines += [f"  m = int.from_bytes(view[off:off + {bitmap_len}],"
                  " 'little')"]
    else:
        lines += ["  m = 0"]
    lines += [f"  cur = off + {bitmap_len}"]
    for i, code in enumerate(codes):
        lines += [f"  if m & {1 << i}:", f"   v{i} = None", "  else:"]
        lines += ["   " + line for line in _dec_value_lines(code, i)]
    row_items = ", ".join(f"v{i}" for i in range(ncols))
    trailing = "," if ncols == 1 else ""
    lines += ["  if cur != end:",
              "   raise CErr('corrupt record: trailing bytes')",
              f"  append(({row_items}{trailing}))",
              "  off = end",
              " return rows"]
    namespace = dict(_CODEGEN_GLOBALS)
    if fast:
        unpacker = struct.Struct("<I%ds%s" % (bitmap_len, "".join(chars)))
        namespace["funpack"] = unpacker.unpack_from
        namespace["_RL"] = unpacker.size - 4
        namespace["_ZB"] = bytes(bitmap_len)
    exec("\n".join(lines), namespace)
    return namespace["_decode_batch"]


class RowCodec:
    """Compiled encode/decode pair for one column layout.

    Keyed and cached by the tuple of wire type codes; converter streams
    grab one codec per result set and reuse it for every chunk.
    """

    __slots__ = ("codes", "encode_into", "decode_view")

    def __init__(self, codes: tuple[int, ...]):
        for code in codes:
            if code not in _ENCODERS:
                raise ConversionError(f"unknown wire type code {code}")
        self.codes = codes
        self.encode_into = _compile_encode(codes)
        self.decode_view = _compile_decode(codes)

    @classmethod
    def for_codes(cls, codes: tuple[int, ...]) -> "RowCodec":
        codec = _CODEC_CACHE.get(codes)
        if codec is None:
            if len(_CODEC_CACHE) >= _CODEC_CACHE_MAX:
                _CODEC_CACHE.clear()
            codec = cls(codes)
            _CODEC_CACHE[codes] = codec
        return codec

    @classmethod
    def for_metas(cls, metas: list[ColumnMeta]) -> "RowCodec":
        return cls.for_codes(tuple(meta.code for meta in metas))

    def encode(self, rows: list[tuple]) -> bytes:
        out = bytearray()
        self.encode_into(rows, out)
        return bytes(out)

    def decode(self, blob) -> list[tuple]:
        return self.decode_view(memoryview(blob))


_CODEC_CACHE: dict[tuple[int, ...], RowCodec] = {}
_CODEC_CACHE_MAX = 256


def encode_rows(metas: list[ColumnMeta], rows: list[tuple]) -> bytes:
    """Encode rows as length-prefixed records with NULL indicator bitmaps.

    Delegates to the compiled per-schema :class:`RowCodec`; output is
    byte-identical to :func:`encode_rows_reference`.
    """
    return RowCodec.for_metas(metas).encode(rows)


def decode_rows(metas: list[ColumnMeta], blob: bytes) -> list[tuple]:
    """Decode a stream of records produced by :func:`encode_rows`."""
    return RowCodec.for_metas(metas).decode(blob)
