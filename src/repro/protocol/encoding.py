"""Source-database binary result encoding (Teradata-style records).

The Result Converter must hand the application "query results that are
bit-identical to the original database" (Section 4). This module defines that
target format for the reproduction: length-prefixed records with a NULL
indicator bitmap followed by per-column payloads in declared-type layout —
including Teradata's internal integer DATE encoding
``(year-1900)*10000 + month*100 + day``.
"""

from __future__ import annotations

import datetime
import struct
from dataclasses import dataclass

from repro.errors import ConversionError
from repro.xtra import types as t
from repro.xtra.types import SQLType, TypeKind, date_to_teradata_int, teradata_int_to_date

# Column type codes on the wire.
CODE_SMALLINT = 1
CODE_INTEGER = 2
CODE_BIGINT = 3
CODE_FLOAT = 4
CODE_DECIMAL = 5
CODE_CHAR = 6
CODE_VARCHAR = 7
CODE_DATE = 8
CODE_TIMESTAMP = 9
CODE_BOOLEAN = 10
CODE_TIME = 11

_KIND_TO_CODE = {
    TypeKind.SMALLINT: CODE_SMALLINT,
    TypeKind.INTEGER: CODE_INTEGER,
    TypeKind.BIGINT: CODE_BIGINT,
    TypeKind.FLOAT: CODE_FLOAT,
    TypeKind.DECIMAL: CODE_DECIMAL,
    TypeKind.CHAR: CODE_CHAR,
    TypeKind.VARCHAR: CODE_VARCHAR,
    TypeKind.DATE: CODE_DATE,
    TypeKind.TIMESTAMP: CODE_TIMESTAMP,
    TypeKind.BOOLEAN: CODE_BOOLEAN,
    TypeKind.TIME: CODE_TIME,
}


@dataclass(frozen=True)
class ColumnMeta:
    """Wire-level column descriptor."""

    name: str
    code: int
    length: int = 0
    scale: int = 0


def column_code(declared: SQLType) -> int | None:
    return _KIND_TO_CODE.get(declared.kind)


def _infer_code(value: object) -> int:
    if isinstance(value, bool):
        return CODE_BOOLEAN
    if isinstance(value, int):
        return CODE_BIGINT
    if isinstance(value, float):
        return CODE_FLOAT
    if isinstance(value, str):
        return CODE_VARCHAR
    if isinstance(value, datetime.datetime):
        return CODE_TIMESTAMP
    if isinstance(value, datetime.date):
        return CODE_DATE
    if isinstance(value, datetime.time):
        return CODE_TIME
    raise ConversionError(f"cannot infer wire type for {type(value).__name__}")


def effective_meta(names: list[str], declared: list[SQLType],
                   rows: list[tuple]) -> list[ColumnMeta]:
    """Concretize column metadata, inferring UNKNOWN types from the data.

    A column whose declared type is UNKNOWN takes the wire type of its first
    non-NULL value; an all-NULL column degrades to VARCHAR.
    """
    metas: list[ColumnMeta] = []
    for index, name in enumerate(names):
        declared_type = declared[index] if index < len(declared) else t.UNKNOWN
        code = column_code(declared_type)
        if code is None:
            code = CODE_VARCHAR
            for row in rows:
                if row[index] is not None:
                    code = _infer_code(row[index])
                    break
        metas.append(ColumnMeta(
            name=name,
            code=code,
            length=declared_type.length or 0,
            scale=declared_type.scale or 0,
        ))
    return metas


# -- metadata framing -----------------------------------------------------------

def encode_meta(metas: list[ColumnMeta]) -> bytes:
    out = bytearray(struct.pack("<H", len(metas)))
    for meta in metas:
        payload = meta.name.encode("utf-8")
        out += struct.pack("<H", len(payload))
        out += payload
        out += struct.pack("<BHH", meta.code, meta.length, meta.scale)
    return bytes(out)


def decode_meta(blob: bytes) -> list[ColumnMeta]:
    offset = 0
    count = struct.unpack_from("<H", blob, offset)[0]
    offset += 2
    metas = []
    for __ in range(count):
        length = struct.unpack_from("<H", blob, offset)[0]
        offset += 2
        name = blob[offset:offset + length].decode("utf-8")
        offset += length
        code, col_len, scale = struct.unpack_from("<BHH", blob, offset)
        offset += 5
        metas.append(ColumnMeta(name, code, col_len, scale))
    return metas


# -- row records -------------------------------------------------------------------

def _encode_value(code: int, value: object, out: bytearray) -> None:
    if code == CODE_SMALLINT:
        out += struct.pack("<h", int(value))
    elif code == CODE_INTEGER:
        out += struct.pack("<i", int(value))
    elif code == CODE_BIGINT:
        out += struct.pack("<q", int(value))
    elif code in (CODE_FLOAT, CODE_DECIMAL):
        out += struct.pack("<d", float(value))
    elif code in (CODE_CHAR, CODE_VARCHAR):
        if not isinstance(value, str):
            value = str(value)
        payload = value.encode("utf-8")
        out += struct.pack("<H", len(payload))
        out += payload
    elif code == CODE_DATE:
        if isinstance(value, datetime.datetime):
            value = value.date()
        if not isinstance(value, datetime.date):
            raise ConversionError(f"DATE column got {type(value).__name__}")
        out += struct.pack("<i", date_to_teradata_int(value))
    elif code == CODE_TIMESTAMP:
        if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
            value = datetime.datetime(value.year, value.month, value.day)
        payload = value.isoformat(sep=" ").encode("ascii")
        out += struct.pack("<H", len(payload))
        out += payload
    elif code == CODE_BOOLEAN:
        out.append(1 if value else 0)
    elif code == CODE_TIME:
        payload = value.isoformat().encode("ascii")
        out += struct.pack("<H", len(payload))
        out += payload
    else:
        raise ConversionError(f"unknown wire type code {code}")


def _decode_value(code: int, blob: bytes, offset: int) -> tuple[object, int]:
    if code == CODE_SMALLINT:
        return struct.unpack_from("<h", blob, offset)[0], offset + 2
    if code == CODE_INTEGER:
        return struct.unpack_from("<i", blob, offset)[0], offset + 4
    if code == CODE_BIGINT:
        return struct.unpack_from("<q", blob, offset)[0], offset + 8
    if code in (CODE_FLOAT, CODE_DECIMAL):
        return struct.unpack_from("<d", blob, offset)[0], offset + 8
    if code in (CODE_CHAR, CODE_VARCHAR, CODE_TIMESTAMP, CODE_TIME):
        length = struct.unpack_from("<H", blob, offset)[0]
        offset += 2
        text = blob[offset:offset + length].decode("utf-8")
        offset += length
        if code == CODE_TIMESTAMP:
            return datetime.datetime.fromisoformat(text), offset
        if code == CODE_TIME:
            return datetime.time.fromisoformat(text), offset
        return text, offset
    if code == CODE_DATE:
        encoded = struct.unpack_from("<i", blob, offset)[0]
        return teradata_int_to_date(encoded), offset + 4
    if code == CODE_BOOLEAN:
        return bool(blob[offset]), offset + 1
    raise ConversionError(f"unknown wire type code {code}")


def encode_rows(metas: list[ColumnMeta], rows: list[tuple]) -> bytes:
    """Encode rows as length-prefixed records with NULL indicator bitmaps."""
    out = bytearray()
    bitmap_len = (len(metas) + 7) // 8
    for row in rows:
        record = bytearray(bitmap_len)
        for index, (meta, value) in enumerate(zip(metas, row)):
            if value is None:
                record[index // 8] |= 1 << (index % 8)
            else:
                _encode_value(meta.code, value, record)
        out += struct.pack("<I", len(record))
        out += record
    return bytes(out)


def decode_rows(metas: list[ColumnMeta], blob: bytes) -> list[tuple]:
    """Decode a stream of records produced by :func:`encode_rows`."""
    rows = []
    offset = 0
    bitmap_len = (len(metas) + 7) // 8
    total = len(blob)
    while offset < total:
        record_len = struct.unpack_from("<I", blob, offset)[0]
        offset += 4
        record_end = offset + record_len
        bitmap = blob[offset:offset + bitmap_len]
        cursor = offset + bitmap_len
        values = []
        for index, meta in enumerate(metas):
            if bitmap[index // 8] & (1 << (index % 8)):
                values.append(None)
            else:
                value, cursor = _decode_value(meta.code, blob, cursor)
                values.append(value)
        if cursor != record_end:
            raise ConversionError("corrupt record: trailing bytes")
        rows.append(tuple(values))
        offset = record_end
    return rows
