"""Wire message framing for the source protocol (WP-A).

Every message is ``magic(2) | kind(1) | length(4) | payload``. The message
vocabulary models the request/response flow of a Teradata-style client
protocol: logon handshake, query submission, result metadata, binary row
chunks, activity counts, success/failure envelopes, and logoff. Clients break
"with the slightest difference in behavior" (Section 4.1), so both ends
validate framing strictly.
"""

from __future__ import annotations

import enum
import socket
import struct

from repro.errors import ProtocolError

MAGIC = b"HQ"
HEADER = struct.Struct(">2sBI")
MAX_PAYLOAD = 64 * 1024 * 1024


class MessageKind(enum.IntEnum):
    LOGON_REQUEST = 1     # payload: user '\0' password
    LOGON_RESPONSE = 2    # payload: session id (u32)
    RUN_QUERY = 3         # payload: utf-8 SQL text
    RESULT_META = 4       # payload: encoded column metadata
    RESULT_ROWS = 5       # payload: binary row records chunk
    RESULT_COUNT = 6      # payload: u64 activity count (DML/DDL)
    SUCCESS = 7           # payload: u64 total row count (end of result)
    FAILURE = 8           # payload: utf-8 error text
    LOGOFF = 9            # payload: empty


def encode_message(kind: MessageKind, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds limit")
    return HEADER.pack(MAGIC, int(kind), len(payload)) + payload


def read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> tuple[MessageKind, bytes]:
    header = read_exact(sock, HEADER.size)
    magic, kind, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"declared payload of {length} bytes exceeds limit")
    try:
        message_kind = MessageKind(kind)
    except ValueError as exc:
        raise ProtocolError(f"unknown message kind {kind}") from exc
    payload = read_exact(sock, length) if length else b""
    return message_kind, payload


def send_message(sock: socket.socket, kind: MessageKind,
                 payload: bytes = b"") -> None:
    sock.sendall(encode_message(kind, payload))
