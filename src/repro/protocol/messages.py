"""Wire message framing for the source protocol (WP-A).

Every message is ``magic(2) | kind(1) | length(4) | payload``. The message
vocabulary models the request/response flow of a Teradata-style client
protocol: logon handshake, query submission, result metadata, binary row
chunks, activity counts, success/failure envelopes, and logoff. Clients break
"with the slightest difference in behavior" (Section 4.1), so both ends
validate framing strictly.
"""

from __future__ import annotations

import enum
import socket
import struct

from repro.errors import ProtocolError

MAGIC = b"HQ"
HEADER = struct.Struct(">2sBI")
MAX_PAYLOAD = 64 * 1024 * 1024


class MessageKind(enum.IntEnum):
    LOGON_REQUEST = 1     # payload: user '\0' password
    LOGON_RESPONSE = 2    # payload: session id (u32)
    RUN_QUERY = 3         # payload: utf-8 SQL text
    RESULT_META = 4       # payload: encoded column metadata
    RESULT_ROWS = 5       # payload: binary row records chunk
    RESULT_COUNT = 6      # payload: u64 activity count (DML/DDL)
    SUCCESS = 7           # payload: u64 total row count (end of result)
    FAILURE = 8           # payload: utf-8 error text
    LOGOFF = 9            # payload: empty


def encode_message(kind: MessageKind, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds limit")
    return HEADER.pack(MAGIC, int(kind), len(payload)) + payload


def parse_header(header: bytes) -> tuple[MessageKind, int]:
    """Validate a 7-byte frame header and return ``(kind, payload_length)``.

    Shared by the blocking and asyncio readers so both wire paths reject
    malformed frames identically (magic, declared length, kind — all
    checked before a single payload byte is read).
    """
    magic, kind, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"declared payload of {length} bytes exceeds limit")
    try:
        message_kind = MessageKind(kind)
    except ValueError as exc:
        raise ProtocolError(f"unknown message kind {kind}") from exc
    return message_kind, length


def read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> tuple[MessageKind, bytes]:
    header = read_exact(sock, HEADER.size)
    message_kind, length = parse_header(header)
    payload = read_exact(sock, length) if length else b""
    return message_kind, payload


_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


def _sendmsg_all(sock: socket.socket, header: bytes, payload: bytes) -> None:
    # writev-style gathered send: header and payload go out as two iovecs
    # with no intermediate concatenation. Partial sends advance through
    # memoryview slices, never copying the chunk.
    views = [memoryview(header), memoryview(payload)]
    while views:
        sent = sock.sendmsg(views)
        while views and sent >= len(views[0]):
            sent -= len(views[0])
            del views[0]
        if views and sent:
            views[0] = views[0][sent:]


def send_message(sock: socket.socket, kind: MessageKind,
                 payload: bytes = b"") -> None:
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds limit")
    header = HEADER.pack(MAGIC, int(kind), len(payload))
    if payload and _HAS_SENDMSG:
        _sendmsg_all(sock, header, payload)
    else:
        sock.sendall(header + payload)
