"""The Protocol Handler: a TCP server speaking the source wire protocol.

Section 4.1: intercepts the application's network message flow, extracts
credentials and request payloads, hands them to the Hyper-Q engine, and
packages responses back into the binary message format the application
expects. One engine session per connection; a thread per connection gives
the horizontal-scalability shape of the stress test (Section 7.3).
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
from typing import Optional

from repro.errors import HyperQError, ProtocolError
from repro.core.engine import HQResult, HyperQ
from repro.protocol.encoding import encode_meta
from repro.protocol.messages import MessageKind, read_message, send_message


class _ConnectionHandler(socketserver.BaseRequestHandler):
    server: "HyperQServer"

    def handle(self) -> None:
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            kind, payload = read_message(sock)
            if kind is not MessageKind.LOGON_REQUEST:
                raise ProtocolError("expected LOGON_REQUEST")
            user = payload.split(b"\0", 1)[0].decode("utf-8", "replace")
            session = self.server.engine.create_session()
            session.session_params["USER"] = user.upper() or "HYPERQ"
            session_id = self.server.next_session_id()
            send_message(sock, MessageKind.LOGON_RESPONSE,
                         struct.pack(">I", session_id))
            self._serve(sock, session)
        except (ProtocolError, ConnectionError, OSError):
            return

    def _serve(self, sock: socket.socket, session) -> None:
        while True:
            kind, payload = read_message(sock)
            if kind is MessageKind.LOGOFF:
                session.close()
                return
            if kind is not MessageKind.RUN_QUERY:
                raise ProtocolError(f"unexpected message {kind.name}")
            sql = payload.decode("utf-8")
            try:
                result = session.execute(sql)
            except HyperQError as error:
                send_message(sock, MessageKind.FAILURE,
                             str(error).encode("utf-8"))
                continue
            self._send_result(sock, result)

    def _send_result(self, sock: socket.socket, result: HQResult) -> None:
        if result.kind == "rows":
            send_message(sock, MessageKind.RESULT_META,
                         encode_meta(result.metas))
            if result.converted is not None:
                for chunk in result.converted.iter_chunks():
                    if chunk:
                        send_message(sock, MessageKind.RESULT_ROWS, chunk)
            send_message(sock, MessageKind.SUCCESS,
                         struct.pack(">Q", result.rowcount))
        elif result.kind == "count":
            send_message(sock, MessageKind.RESULT_COUNT,
                         struct.pack(">Q", result.rowcount))
            send_message(sock, MessageKind.SUCCESS,
                         struct.pack(">Q", result.rowcount))
        else:
            send_message(sock, MessageKind.SUCCESS, struct.pack(">Q", 0))
        result.close()


class HyperQServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping one Hyper-Q engine.

    Sessions created here share the engine's translation cache, so a hot
    statement warmed by one connection is a cache hit for every other —
    which is why ADV overhead *shrinks* under concurrency (Figure 9b).

    ``daemon_threads`` keeps a stuck client from hanging shutdown (the
    Figure 9b stress bench opens dozens of connections and must always be
    able to tear the server down); ``request_queue_size`` bounds the listen
    backlog so connection storms queue in the kernel instead of failing.
    """

    allow_reuse_address = True
    daemon_threads = True
    request_queue_size = 128

    def __init__(self, engine: HyperQ, host: str = "127.0.0.1", port: int = 0):
        self.engine = engine
        self._session_counter = 0
        self._counter_lock = threading.Lock()
        super().__init__((host, port), _ConnectionHandler)

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return str(host), int(port)

    def next_session_id(self) -> int:
        with self._counter_lock:
            self._session_counter += 1
            return self._session_counter


class ServerThread:
    """Runs a :class:`HyperQServer` on a background thread.

    Usage::

        with ServerThread(engine) as address:
            client = TdClient(*address)
    """

    def __init__(self, engine: HyperQ, host: str = "127.0.0.1", port: int = 0):
        self.server = HyperQServer(engine, host, port)
        self._thread: Optional[threading.Thread] = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        name="hyperq-server", daemon=True)
        self._thread.start()
        return self.server.address

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
