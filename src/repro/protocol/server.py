"""The Protocol Handler: a TCP server speaking the source wire protocol.

Section 4.1: intercepts the application's network message flow, extracts
credentials and request payloads, hands them to the Hyper-Q engine, and
packages responses back into the binary message format the application
expects. One engine session per connection; a thread per connection gives
the horizontal-scalability shape of the stress test (Section 7.3).

Resilience duties of this layer:

* every session is closed when its connection ends, cleanly or not — an
  abrupt disconnect must not orphan the session's volatile-table overlay;
* with ``request_timeout`` set, a request that overruns its deadline gets a
  timely FAILURE reply instead of hanging the connection (the straggler
  finishes on a single worker behind the scenes, so the session is never
  driven concurrently);
* unexpected internal errors become FAILURE replies, not dropped
  connections;
* the engine's fault schedule is consulted per request (site ``"wire"``):
  :data:`~repro.core.faults.WIRE_DISCONNECT` cuts the connection with no
  reply — the deterministic stand-in for a client yanked mid-conversation —
  and :data:`~repro.core.faults.SLOW_RESULT` stalls the request inside the
  timed region.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Optional

from repro.errors import BackendTimeoutError, HyperQError, ProtocolError
from repro.core import faults as flt
from repro.core.engine import HQResult, HyperQ
from repro.protocol.encoding import encode_meta
from repro.protocol.messages import MessageKind, read_message, send_message


class _ConnectionHandler(socketserver.BaseRequestHandler):
    server: "HyperQServer"

    def handle(self) -> None:
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        session = None
        self._executor: Optional[ThreadPoolExecutor] = None
        try:
            kind, payload = read_message(sock)
            if kind is not MessageKind.LOGON_REQUEST:
                raise ProtocolError("expected LOGON_REQUEST")
            user = payload.split(b"\0", 1)[0].decode("utf-8", "replace")
            session = self.server.engine.create_session()
            session.session_params["USER"] = user.upper() or "HYPERQ"
            session_id = self.server.next_session_id()
            send_message(sock, MessageKind.LOGON_RESPONSE,
                         struct.pack(">I", session_id))
            self._serve(sock, session)
        except (ProtocolError, ConnectionError, OSError):
            return
        finally:
            # Sessions close on *every* exit path: a client that vanishes
            # mid-request must not leak its volatile-table overlay or its
            # converter resources.
            if session is not None:
                session.close()
            if self._executor is not None:
                self._executor.shutdown(wait=False)

    def _serve(self, sock: socket.socket, session) -> None:
        engine = self.server.engine
        while True:
            kind, payload = read_message(sock)
            if kind is MessageKind.LOGOFF:
                return
            if kind is not MessageKind.RUN_QUERY:
                raise ProtocolError(f"unexpected message {kind.name}")
            sql = payload.decode("utf-8")
            fault = (engine.faults.draw("wire", op=sql)
                     if engine.faults is not None else None)
            if fault is not None and fault.kind == flt.WIRE_DISCONNECT:
                engine.resilience.note("wire_disconnect")
                if engine.faults is not None:
                    engine.faults.record("wire_disconnect", seq=fault.seq)
                # Abrupt: no FAILURE envelope, no LOGOFF — the client sees
                # the connection die exactly as with a real network cut.
                return
            delay = fault.delay if fault is not None \
                and fault.kind == flt.SLOW_RESULT else 0.0
            try:
                result = self._run_request(session, sql, delay)
            except HyperQError as error:  # includes request timeouts
                send_message(sock, MessageKind.FAILURE,
                             str(error).encode("utf-8"))
                continue
            except Exception as error:  # noqa: BLE001 — reply, don't drop
                send_message(
                    sock, MessageKind.FAILURE,
                    f"internal error: {error}".encode("utf-8"))
                continue
            self._send_result(sock, result)

    def _run_request(self, session, sql: str, delay: float) -> HQResult:
        """Execute one request, enforcing the server's per-request deadline.

        The request runs on this connection's single worker thread; on
        deadline overrun the client gets a FAILURE now and the straggler's
        result is discarded (and closed) when it eventually lands. Because
        the worker pool has exactly one thread, a straggler and the next
        request can never touch the session concurrently.
        """
        def work() -> HQResult:
            if delay > 0:
                time.sleep(delay)
            return session.execute(sql)

        timeout = self.server.request_timeout
        if timeout is None:
            return work()
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="hyperq-request")
        future = self._executor.submit(work)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            engine = self.server.engine
            engine.resilience.note("timeout")
            if engine.faults is not None:
                engine.faults.record("timeout", timeout=f"{timeout:g}")
            future.add_done_callback(_discard_result)
            raise BackendTimeoutError(
                f"request timed out after {timeout:g}s") from None

    def _send_result(self, sock: socket.socket, result: HQResult) -> None:
        """Ship one result, streaming row chunks as they convert.

        Chunks go onto the wire as the converter produces them, so a slow
        client exerts backpressure all the way into the backend executor
        (``sendall`` blocks, the chunk generator stops pulling). The final
        SUCCESS frame carries the row total accumulated by the stream.
        """
        try:
            if result.kind == "rows":
                send_message(sock, MessageKind.RESULT_META,
                             encode_meta(result.metas))
                try:
                    for chunk in result.iter_chunks():
                        if chunk:
                            send_message(sock, MessageKind.RESULT_ROWS, chunk)
                except HyperQError as error:
                    # Mid-stream failure: some rows may already be on the
                    # wire; the FAILURE frame marks the result truncated.
                    send_message(sock, MessageKind.FAILURE,
                                 str(error).encode("utf-8"))
                    return
                send_message(sock, MessageKind.SUCCESS,
                             struct.pack(">Q", result.rowcount))
            elif result.kind == "count":
                send_message(sock, MessageKind.RESULT_COUNT,
                             struct.pack(">Q", result.rowcount))
                send_message(sock, MessageKind.SUCCESS,
                             struct.pack(">Q", result.rowcount))
            else:
                send_message(sock, MessageKind.SUCCESS, struct.pack(">Q", 0))
        finally:
            # Release converted buffers as soon as the last frame ships (or
            # the attempt aborts) — nothing row-sized survives per session.
            result.close()


def _discard_result(future) -> None:
    """Release whatever a timed-out straggler eventually produced."""
    try:
        result = future.result()
    except Exception:
        return
    if result is not None:
        result.close()


class HyperQServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server wrapping one Hyper-Q engine.

    Sessions created here share the engine's translation cache, so a hot
    statement warmed by one connection is a cache hit for every other —
    which is why ADV overhead *shrinks* under concurrency (Figure 9b).

    ``daemon_threads`` keeps a stuck client from hanging shutdown (the
    Figure 9b stress bench opens dozens of connections and must always be
    able to tear the server down); ``request_queue_size`` bounds the listen
    backlog so connection storms queue in the kernel instead of failing.
    ``request_timeout`` (seconds, None = unlimited) is the per-request
    deadline after which the client receives a FAILURE reply.
    """

    allow_reuse_address = True
    daemon_threads = True
    request_queue_size = 128

    def __init__(self, engine: HyperQ, host: str = "127.0.0.1", port: int = 0,
                 request_timeout: Optional[float] = None):
        self.engine = engine
        self.request_timeout = request_timeout
        self._session_counter = 0
        self._counter_lock = threading.Lock()
        super().__init__((host, port), _ConnectionHandler)

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return str(host), int(port)

    def next_session_id(self) -> int:
        with self._counter_lock:
            self._session_counter += 1
            return self._session_counter


class ServerThread:
    """Runs a :class:`HyperQServer` on a background thread.

    Usage::

        with ServerThread(engine) as address:
            client = TdClient(*address)
    """

    def __init__(self, engine: HyperQ, host: str = "127.0.0.1", port: int = 0,
                 request_timeout: Optional[float] = None):
        self.server = HyperQServer(engine, host, port,
                                   request_timeout=request_timeout)
        self._thread: Optional[threading.Thread] = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        name="hyperq-server", daemon=True)
        self._thread.start()
        return self.server.address

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
